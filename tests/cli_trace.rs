//! End-to-end tests for the telemetry flags (`--trace`, `--profile`,
//! `--telemetry`) and the stdout/stderr stream contract: machine-readable
//! documents are the only stdout payloads, everything human-facing goes to
//! stderr, and trace files always satisfy the Chrome trace-event contract.

use std::path::PathBuf;
use std::process::{Command, Output};

use rudoop::validate_chrome_trace;

fn rudoop(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop")
}

fn rudoop_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

/// A scratch path that is unique per test (parallel test threads must not
/// clobber each other's files).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rudoop-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn plain_run_keeps_stdout_empty_and_reports_on_stderr() {
    let out = rudoop(&["@antlr", "--analysis", "insens"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        out.stdout.is_empty(),
        "plain run without reports must keep stdout empty: {:?}",
        stdout(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("analysis insens: completed"), "{err}");
    assert!(err.contains("precision:"), "{err}");
}

#[test]
fn stats_report_is_the_stdout_payload() {
    let out = rudoop(&["@antlr", "--analysis", "insens", "--stats"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("var-points-to sizes:"), "{text}");
    assert!(
        !text.contains("analysis insens"),
        "progress text leaked to stdout: {text}"
    );
}

#[test]
fn trace_file_validates_and_covers_the_parallel_run() {
    let trace = scratch("parallel.trace.json");
    let out = rudoop(&[
        "@antlr",
        "--analysis",
        "2objH",
        "--threads",
        "2",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_file(&trace);
    let check = validate_chrome_trace(&text).expect("trace passes the schema checker");
    assert!(check.spans > 0, "balanced spans present");
    for name in ["parse", "parallel-solve", "epoch", "drain"] {
        assert!(
            check.span_names.contains(name),
            "missing {name} span in {:?}",
            check.span_names
        );
    }
    assert!(check.samples > 0, "derivation counter track present");
}

#[test]
fn profile_json_has_stable_schema_and_telemetry_summary_is_stderr() {
    let profile = scratch("run.profile.json");
    let out = rudoop(&[
        "@antlr",
        "--analysis",
        "insens",
        "--profile",
        profile.to_str().unwrap(),
        "--telemetry",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "telemetry must not touch stdout");
    let err = stderr(&out);
    assert!(err.contains("telemetry summary"), "{err}");
    assert!(err.contains("solve"), "{err}");
    let text = std::fs::read_to_string(&profile).expect("profile written");
    let _ = std::fs::remove_file(&profile);
    assert!(text.contains("\"schema\": \"rudoop-profile-v1\""), "{text}");
    assert!(text.contains("insens.derivations"), "{text}");
}

#[test]
fn degraded_ladder_trace_has_one_rung_span_per_attempt() {
    let trace = scratch("ladder.trace.json");
    let out = rudoop(&[
        "@hsqldb",
        "--ladder",
        "default",
        "--budget",
        "2000000",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let attempts = stderr(&out)
        .lines()
        .filter(|l| l.trim_start().starts_with('[') || l.trim_start().starts_with("* ["))
        .count();
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let check = validate_chrome_trace(&text).expect("degraded-run trace validates");
    assert!(check.span_names.contains("rung"));
    let rung_begins = text
        .matches("\"name\":\"rung\",\"cat\":\"rudoop\",\"ph\":\"B\"")
        .count();
    assert_eq!(rung_begins, attempts, "one rung span per ladder line");
}

#[test]
fn lint_json_stdout_is_a_single_document() {
    let out = rudoop_lint(&["examples/programs/lint_showcase.rud", "--format", "json"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.starts_with('['), "{text}");
    assert!(text.trim_end().ends_with(']'), "{text}");
    assert!(
        !text.contains("error(s)"),
        "summary line leaked to stdout: {text}"
    );
}

#[test]
fn lint_trace_validates_and_covers_lints() {
    let trace = scratch("lint.trace.json");
    let out = rudoop_lint(&[
        "examples/programs/lint_showcase.rud",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let check = validate_chrome_trace(&text).expect("lint trace validates");
    for name in ["parse", "solve", "lint-pass", "lint"] {
        assert!(
            check.span_names.contains(name),
            "missing {name} span in {:?}",
            check.span_names
        );
    }
}

/// `--check-trace` accepts a freshly written trace (exit 0) and rejects
/// the same file with one record corrupted into malformed JSON — exit 1
/// with a per-record error naming the damaged record, not just schema
/// violations.
#[test]
fn check_trace_rejects_malformed_json_with_a_per_record_error() {
    let trace = scratch("checkme.trace.json");
    let out = rudoop(&[
        "@antlr",
        "--analysis",
        "insens",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let out = rudoop(&["--check-trace", trace.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "valid trace must pass: {out:?}");
    assert!(stderr(&out).contains("valid"), "{out:?}");

    // Corrupt one event record: drop the tail of its line so the record
    // is no longer a JSON object (but the document still *looks* like a
    // trace file).
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let victim = text
        .lines()
        .find(|l| l.trim_start().starts_with("{\"name\""))
        .expect("trace has at least one event record");
    let truncated = &victim[..victim.len() / 2];
    let corrupted = text.replacen(victim, truncated, 1);
    std::fs::write(&trace, corrupted).unwrap();

    let out = rudoop(&["--check-trace", trace.to_str().unwrap()]);
    let _ = std::fs::remove_file(&trace);
    assert_eq!(
        out.status.code(),
        Some(1),
        "malformed JSON must fail the check: {out:?}"
    );
    let err = stderr(&out);
    assert!(err.contains("invalid trace"), "{err}");
    assert!(err.contains("record"), "{err}");
    assert!(err.contains("not valid JSON"), "{err}");
}

/// The committed golden fixture stays loadable: it must keep passing the
/// same schema checker CI runs against freshly generated traces.
#[test]
fn golden_trace_fixture_validates() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace.json"
    );
    let text = std::fs::read_to_string(path).expect("golden fixture present");
    let check = validate_chrome_trace(&text).expect("golden fixture validates");
    assert!(check.spans > 0);
    for name in ["parse", "parallel-solve", "epoch", "drain", "barrier"] {
        assert!(
            check.span_names.contains(name),
            "golden fixture lost the {name} phase"
        );
    }
}
