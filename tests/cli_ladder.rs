//! End-to-end tests for the `rudoop` binary's degradation ladder: the
//! exit-code contract (0 complete / 3 degraded / 4 all rungs exhausted)
//! and the rendered attempt history.

use std::process::{Command, Output};

fn rudoop(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

// The ladder table and verdict are progress reporting, so they land on
// stderr; stdout is reserved for machine-readable payloads.

#[test]
fn completed_ladder_exits_zero() {
    let out = rudoop(&["@hsqldb", "--ladder", "insens"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stderr(&out);
    assert!(text.contains("verdict: complete"), "{text}");
    assert!(text.contains("* [0] insens"), "{text}");
    assert!(
        out.stdout.is_empty(),
        "ladder without reports keeps stdout empty"
    );
}

#[test]
fn degraded_ladder_exits_three() {
    // 2objH blows a 2M-derivation budget on hsqldb; introspective-A
    // completes (the paper's rescue story).
    let out = rudoop(&["@hsqldb", "--ladder", "default", "--budget", "2000000"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let text = stderr(&out);
    assert!(text.contains("verdict: degraded"), "{text}");
    assert!(
        text.contains("[0] 2objH              stopped: derivation budget exhausted"),
        "{text}"
    );
    assert!(
        text.contains("(computed shared insensitive first pass)"),
        "{text}"
    );
    // Degraded output still reports precision metrics of the fallback.
    assert!(text.contains("precision ("), "{text}");
}

#[test]
fn exhausted_ladder_exits_four_and_salvages() {
    // Too small even for the insensitive rung.
    let out = rudoop(&["@hsqldb", "--ladder", "2objH,insens", "--budget", "100000"]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let text = stderr(&out);
    assert!(text.contains("verdict: exhausted"), "{text}");
    assert!(text.contains("best partial result kept"), "{text}");
}

#[test]
fn lone_introspective_rung_expands_to_canonical_ladder() {
    let out = rudoop(&[
        "@hsqldb",
        "--ladder",
        "introspectiveB:2objH",
        "--budget",
        "100000",
    ]);
    let text = stderr(&out);
    assert!(text.contains("[0] 2objH"), "{text}");
    assert!(text.contains("[1] introB:2objH"), "{text}");
    assert!(text.contains("[2] insens"), "{text}");
}

#[test]
fn bad_ladder_spec_is_a_usage_error() {
    let out = rudoop(&["@hsqldb", "--ladder", "introC:2objH"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains("bad ladder"), "{err}");
}

#[test]
fn lint_timeout_skips_tier2_and_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_rudoop-lint"))
        .args(["@hsqldb", "--analysis", "2objH", "--timeout", "0.02"])
        .output()
        .expect("failed to run rudoop-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(
        err.contains("analysis degraded (2objH), tier-2 lints skipped"),
        "{err}"
    );
}
