//! Scaled-down assertions of the paper's evaluation shapes, fast enough
//! for the debug-profile test suite. Each test is one qualitative claim
//! from the paper, checked on miniature versions of the workload
//! machinery (the full-size claims are checked by the release harness and
//! recorded in EXPERIMENTS.md).

use rudoop::analysis::driver::{analyze_flavor, analyze_introspective_from, Flavor};
use rudoop::analysis::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop::analysis::solver::SolverConfig;
use rudoop::analysis::{analyze, Insensitive, PrecisionMetrics};
use rudoop::ir::ClassHierarchy;
use rudoop::workloads::WorkloadSpec;

/// hsqldb-in-miniature: concentrated blowup (big volumes per method).
fn concentrated() -> rudoop::Program {
    WorkloadSpec {
        name: "mini-hsqldb".into(),
        pool_values: 150,
        pool_readers: 110,
        cross_link: true,
        wrapper_classes: 2,
        creator_classes: 2,
        creator_instances: 40,
        wrapper_sites_per_class: 12,
        process_steps: 10,
        util_consumers: 10,
        util_dists: 6,
        util_moves: 4,
        medium_pool: 110,
        probes_clean: 6,
        probes_type_friendly: 2,
        probes_medium: 3,
        app_classes: 40,
        ..WorkloadSpec::default()
    }
    .build()
}

/// jython-in-miniature: diffuse blowup (many small methods, stateless
/// wrappers) that Heuristic B cannot catch.
fn diffuse() -> rudoop::Program {
    WorkloadSpec {
        name: "mini-jython".into(),
        // Above Heuristic A's M=200 cutoff (the heuristics use the paper's
        // absolute constants, so mini workloads must still cross them).
        pool_values: 260,
        pool_readers: 110,
        cross_link: true,
        stateful_wrappers: false,
        wrapper_classes: 4,
        creator_classes: 12,
        creator_instances: 120,
        wrapper_sites_per_class: 3,
        process_steps: 3,
        util_consumers: 10,
        util_dists: 6,
        util_moves: 2,
        medium_pool: 0,
        probes_clean: 6,
        probes_type_friendly: 2,
        probes_medium: 0,
        app_classes: 30,
        ..WorkloadSpec::default()
    }
    .build()
}

fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b as f64
}

#[test]
fn bimodality_2objh_explodes_where_insens_does_not() {
    for (name, program) in [("concentrated", concentrated()), ("diffuse", diffuse())] {
        let h = ClassHierarchy::new(&program);
        let cfg = SolverConfig::default();
        let insens = analyze(&program, &h, &Insensitive, &cfg);
        let full = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
        assert!(
            ratio(full.stats.derivations, insens.stats.derivations) > 4.0,
            "{name}: 2objH must be disproportionately expensive ({} vs {})",
            full.stats.derivations,
            insens.stats.derivations
        );
    }
}

#[test]
fn heuristic_a_rescues_both_blowup_profiles() {
    for (name, program) in [("concentrated", concentrated()), ("diffuse", diffuse())] {
        let h = ClassHierarchy::new(&program);
        let cfg = SolverConfig::default();
        let insens = analyze(&program, &h, &Insensitive, &cfg);
        let full = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
        let run = analyze_introspective_from(
            &program,
            &h,
            Flavor::OBJ2H,
            &HeuristicA::default(),
            &cfg,
            insens.clone(),
        );
        assert!(
            run.result.stats.derivations * 2 < full.stats.derivations,
            "{name}: IntroA must stay near the insensitive cost ({} vs full {})",
            run.result.stats.derivations,
            full.stats.derivations
        );
    }
}

#[test]
fn heuristic_b_rescues_concentrated_but_not_diffuse() {
    let cfg = SolverConfig::default();

    let program = concentrated();
    let h = ClassHierarchy::new(&program);
    let insens = analyze(&program, &h, &Insensitive, &cfg);
    let full = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
    let run = analyze_introspective_from(
        &program,
        &h,
        Flavor::OBJ2H,
        &HeuristicB { p: 2_000, q: 2_000 }, // scaled cutoffs for the mini size
        &cfg,
        insens,
    );
    assert!(
        run.result.stats.derivations * 2 < full.stats.derivations,
        "concentrated: B's volume cutoffs catch the hot methods ({} vs {})",
        run.result.stats.derivations,
        full.stats.derivations
    );

    let program = diffuse();
    let h = ClassHierarchy::new(&program);
    let insens = analyze(&program, &h, &Insensitive, &cfg);
    let full = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
    let run = analyze_introspective_from(
        &program,
        &h,
        Flavor::OBJ2H,
        &HeuristicB { p: 2_000, q: 2_000 },
        &cfg,
        insens,
    );
    assert!(
        ratio(run.result.stats.derivations, full.stats.derivations) > 0.5,
        "diffuse: no method crosses B's cutoffs, so IntroB pays nearly the full \
         price ({} vs {})",
        run.result.stats.derivations,
        full.stats.derivations
    );
}

#[test]
fn precision_order_insens_introa_introb_full() {
    let program = concentrated();
    let h = ClassHierarchy::new(&program);
    let cfg = SolverConfig::default();
    let insens = analyze(&program, &h, &Insensitive, &cfg);
    let full = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
    let a = analyze_introspective_from(
        &program,
        &h,
        Flavor::OBJ2H,
        &HeuristicA::default(),
        &cfg,
        insens.clone(),
    );
    let b = analyze_introspective_from(
        &program,
        &h,
        Flavor::OBJ2H,
        &HeuristicB::default(),
        &cfg,
        insens.clone(),
    );
    let pm = |r: &rudoop::PointsToResult| PrecisionMetrics::compute(&program, &h, r);
    let (pi, pa, pb, pf) = (pm(&insens), pm(&a.result), pm(&b.result), pm(&full));
    assert!(pf.polymorphic_call_sites <= pb.polymorphic_call_sites);
    assert!(pb.polymorphic_call_sites <= pa.polymorphic_call_sites);
    assert!(pa.polymorphic_call_sites < pi.polymorphic_call_sites);
    assert!(pf.casts_may_fail <= pb.casts_may_fail);
    assert!(pb.casts_may_fail <= pa.casts_may_fail);
    assert!(pa.casts_may_fail < pi.casts_may_fail);
    assert!(pf.reachable_methods <= pa.reachable_methods);
    assert!(pa.reachable_methods < pi.reachable_methods);
}

#[test]
fn type_sensitivity_is_cheaper_than_object_sensitivity() {
    let program = concentrated();
    let h = ClassHierarchy::new(&program);
    let cfg = SolverConfig::default();
    let obj = analyze_flavor(&program, &h, Flavor::OBJ2H, &cfg);
    let ty = analyze_flavor(&program, &h, Flavor::TYPE2H, &cfg);
    assert!(
        ty.stats.derivations < obj.stats.derivations,
        "2typeH coarsens contexts: {} vs {}",
        ty.stats.derivations,
        obj.stats.derivations
    );
    // ...at a precision price.
    let pm_o = PrecisionMetrics::compute(&program, &h, &obj);
    let pm_t = PrecisionMetrics::compute(&program, &h, &ty);
    assert!(pm_o.polymorphic_call_sites <= pm_t.polymorphic_call_sites);
}

#[test]
fn selection_shares_the_first_pass() {
    // The §4 overhead argument: both heuristics reuse one insensitive pass.
    let program = concentrated();
    let h = ClassHierarchy::new(&program);
    let cfg = SolverConfig::default();
    let insens = analyze(&program, &h, &Insensitive, &cfg);
    let heuristics: Vec<Box<dyn RefinementHeuristic>> = vec![
        Box::new(HeuristicA::default()),
        Box::new(HeuristicB::default()),
    ];
    for heuristic in &heuristics {
        let run = analyze_introspective_from(
            &program,
            &h,
            Flavor::OBJ2H,
            heuristic.as_ref(),
            &cfg,
            insens.clone(),
        );
        assert_eq!(run.first_pass.stats.derivations, insens.stats.derivations);
        assert!(run.result.outcome.is_complete());
    }
}
