//! End-to-end tests for `rudoop taint --format json`: the machine-readable
//! leak report against a committed golden fixture, and its byte-stability
//! across the sequential and sharded solver engines.

use std::process::{Command, Output};

fn rudoop(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop")
}

const FIXTURE: &str = "tests/fixtures/taint_pipeline.rdp";
const SPEC: &str = "tests/fixtures/taint_pipeline.taint";

#[test]
fn json_report_matches_golden_fixture() {
    let out = rudoop(&["taint", FIXTURE, "--spec", SPEC, "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/taint_pipeline.json"
    ))
    .expect("golden fixture present");
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        golden,
        "taint --format json drifted from the committed golden fixture; \
         if the change is intentional, regenerate tests/fixtures/taint_pipeline.json"
    );
}

#[test]
fn json_report_is_identical_across_engines() {
    let sequential = rudoop(&["taint", FIXTURE, "--spec", SPEC, "--format", "json"]);
    assert_eq!(sequential.status.code(), Some(0), "{sequential:?}");
    for threads in ["2", "4"] {
        let sharded = rudoop(&[
            "taint",
            FIXTURE,
            "--spec",
            SPEC,
            "--format",
            "json",
            "--threads",
            threads,
        ]);
        assert_eq!(sharded.status.code(), Some(0), "{sharded:?}");
        assert_eq!(
            sequential.stdout, sharded.stdout,
            "taint JSON differs at --threads {threads}"
        );
    }
}

#[test]
fn json_mode_keeps_stdout_a_single_document() {
    let out = rudoop(&["taint", FIXTURE, "--spec", SPEC, "--format", "json"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\n"), "{stdout}");
    assert!(stdout.ends_with("}\n"), "{stdout}");
    // The human ladder table goes to stderr instead.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("degradation ladder:"), "{stderr}");
    assert!(!stdout.contains("degradation ladder:"), "{stdout}");
}

#[test]
fn exhausted_ladder_reports_skipped_taint_in_json() {
    let out = rudoop(&[
        "taint", FIXTURE, "--spec", SPEC, "--format", "json", "--ladder", "insens", "--budget", "1",
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"analysis\": null"), "{stdout}");
    assert!(stdout.contains("\"skipped\": \""), "{stdout}");
    assert!(stdout.contains("\"leaks\": []"), "{stdout}");
}

#[test]
fn format_json_outside_taint_is_a_usage_error() {
    let out = rudoop(&[FIXTURE, "--format", "json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
