//! End-to-end tests for the `rudoop races` subcommand: golden text and
//! JSON fixtures on a built-in benchmark (the same pair the CI trace-smoke
//! job diffs against fresh runs), engine invariance, the stream contract,
//! and the supervisor's skip-on-exhaustion behavior.

use std::process::{Command, Output};

fn rudoop(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn text_report_matches_golden_fixture() {
    let out = rudoop(&["races", "@antlr", "--analysis", "2objH"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        golden("races_antlr.txt"),
        "races text output drifted from the committed golden fixture; if the \
         change is intentional, regenerate tests/fixtures/races_antlr.txt"
    );
}

#[test]
fn json_report_matches_golden_fixture() {
    let out = rudoop(&["races", "@antlr", "--analysis", "2objH", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        golden("races_antlr.json"),
        "races --format json drifted from the committed golden fixture; if the \
         change is intentional, regenerate tests/fixtures/races_antlr.json"
    );
}

#[test]
fn json_report_is_identical_across_engines() {
    let sequential = rudoop(&["races", "@antlr", "--analysis", "2objH", "--format", "json"]);
    assert_eq!(sequential.status.code(), Some(0), "{sequential:?}");
    for threads in ["2", "4"] {
        let sharded = rudoop(&[
            "races",
            "@antlr",
            "--analysis",
            "2objH",
            "--format",
            "json",
            "--threads",
            threads,
        ]);
        assert_eq!(sharded.status.code(), Some(0), "{sharded:?}");
        assert_eq!(
            sequential.stdout, sharded.stdout,
            "races JSON differs at --threads {threads}"
        );
    }
}

#[test]
fn json_mode_keeps_stdout_a_single_document() {
    let out = rudoop(&[
        "races",
        "@antlr",
        "--analysis",
        "insens",
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\n"), "{stdout}");
    assert!(stdout.ends_with("}\n"), "{stdout}");
    // The human ladder table goes to stderr instead.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("degradation ladder:"), "{stderr}");
    assert!(!stdout.contains("degradation ladder:"), "{stdout}");
}

#[test]
fn exhausted_ladder_reports_skipped_races() {
    let out = rudoop(&[
        "races", "@antlr", "--ladder", "insens", "--budget", "1", "--format", "json",
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"analysis\": null"), "{stdout}");
    assert!(stdout.contains("\"skipped\": \""), "{stdout}");
    assert!(stdout.contains("\"races\": []"), "{stdout}");

    let out = rudoop(&["races", "@antlr", "--ladder", "insens", "--budget", "1"]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("races: SKIPPED"), "{stdout}");
}

#[test]
fn insens_reports_the_false_races_that_2objh_eliminates() {
    // The across-the-board claim at the CLI surface: same benchmark, same
    // battery, strictly more races under the insensitive analysis.
    let insens = rudoop(&["races", "@antlr", "--analysis", "insens"]);
    assert_eq!(insens.status.code(), Some(0), "{insens:?}");
    let text = String::from_utf8(insens.stdout).unwrap();
    let insens_races = text.lines().filter(|l| l.starts_with("race: ")).count();
    let obj = rudoop(&["races", "@antlr", "--analysis", "2objH"]);
    let text = String::from_utf8(obj.stdout).unwrap();
    let obj_races = text.lines().filter(|l| l.starts_with("race: ")).count();
    assert!(obj_races >= 1, "the shared-counter race must survive 2objH");
    assert!(
        obj_races < insens_races,
        "expected 2objH ({obj_races}) to report strictly fewer races than \
         insens ({insens_races})"
    );
}
