//! Cross-crate integration tests: the textual frontend, the solver, the
//! clients and the introspective driver working together through the
//! facade crate.

use rudoop::analysis::driver::{analyze_flavor, analyze_introspective, Flavor};
use rudoop::analysis::heuristics::{HeuristicA, HeuristicB};
use rudoop::analysis::solver::{Budget, SolverConfig};
use rudoop::analysis::PrecisionMetrics;
use rudoop::ir::{parse_program, print_program, validate, ClassHierarchy};
use rudoop::workloads::WorkloadSpec;

/// A small program exercising every IL construct, as text.
const KITCHEN_SINK: &str = r#"
class Object
class Container extends Object
class Item extends Object
class SpecialItem extends Item
field Container.content

method Container.put(x) {
  this.content = x
}
method Container.take() {
  r = this.content
  return r
}
method Item.tag() {
  t = new Item
  return t
}
method SpecialItem.tag() {
  t = new SpecialItem
  return t
}
method Object.route(c, v) static {
  c.put(v)
  out = c.take()
  return out
}

method Object.main() static {
  c1 = new Container
  c2 = new Container
  i = new Item
  s = new SpecialItem
  r1 = static Object.route(c1, i)
  r2 = static Object.route(c2, s)
  r1.tag()
  chk = cast SpecialItem r2
}

entry Object.main
"#;

#[test]
fn text_to_precision_pipeline() {
    let program = parse_program(KITCHEN_SINK).unwrap();
    validate(&program).unwrap();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();

    let insens = analyze_flavor(&program, &hierarchy, Flavor::Insensitive, &config);
    // Call-site-sensitivity separates the two static route() calls.
    // (Object-sensitivity would not: route is static, so its formals keep
    // the caller's context and the two items still meet there.)
    let obj = analyze_flavor(&program, &hierarchy, Flavor::CALL2H, &config);
    let pm_i = PrecisionMetrics::compute(&program, &hierarchy, &insens);
    let pm_o = PrecisionMetrics::compute(&program, &hierarchy, &obj);

    // Insensitively route() conflates both containers and both items: the
    // tag() call is polymorphic and the cast may fail. 2callH fixes both.
    assert_eq!(pm_i.polymorphic_call_sites, 1);
    assert_eq!(pm_i.casts_may_fail, 1);
    assert_eq!(pm_o.polymorphic_call_sites, 0);
    assert_eq!(pm_o.casts_may_fail, 0);
    // And the spurious SpecialItem.tag reachability disappears.
    assert!(pm_o.reachable_methods < pm_i.reachable_methods);
}

#[test]
fn printed_program_analyzes_identically() {
    let program = parse_program(KITCHEN_SINK).unwrap();
    let reparsed = parse_program(&print_program(&program)).unwrap();
    let h1 = ClassHierarchy::new(&program);
    let h2 = ClassHierarchy::new(&reparsed);
    let config = SolverConfig::default();
    let r1 = analyze_flavor(&program, &h1, Flavor::CALL2H, &config);
    let r2 = analyze_flavor(&reparsed, &h2, Flavor::CALL2H, &config);
    assert_eq!(r1.stats.derivations, r2.stats.derivations);
    assert_eq!(
        PrecisionMetrics::compute(&program, &h1, &r1),
        PrecisionMetrics::compute(&reparsed, &h2, &r2)
    );
}

/// A miniature benchmark with the same skeleton as the DaCapo-shaped specs,
/// small enough for debug-profile testing.
fn mini_benchmark() -> rudoop::Program {
    WorkloadSpec {
        name: "mini".into(),
        pool_values: 120,
        pool_value_classes: 3,
        pool_readers: 110,
        wrapper_classes: 2,
        creator_classes: 2,
        creator_instances: 30,
        wrapper_sites_per_class: 10,
        process_steps: 6,
        util_consumers: 15,
        util_dists: 10,
        util_moves: 4,
        medium_pool: 110,
        probes_clean: 8,
        probes_type_friendly: 3,
        probes_medium: 4,
        app_classes: 70,
        ..WorkloadSpec::default()
    }
    .build()
}

#[test]
fn introspection_rescues_a_blowup() {
    let program = mini_benchmark();
    validate(&program).unwrap();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();

    let insens = analyze_flavor(&program, &hierarchy, Flavor::Insensitive, &config);
    let full = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert!(
        full.stats.derivations > 4 * insens.stats.derivations,
        "the amplifier must make 2objH disproportionately expensive: {} vs {}",
        full.stats.derivations,
        insens.stats.derivations
    );

    let intro = analyze_introspective(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &HeuristicA::default(),
        &config,
    );
    assert!(intro.result.outcome.is_complete());
    assert!(
        intro.result.stats.derivations < full.stats.derivations / 2,
        "introspection must avoid most of the blowup: {} vs {}",
        intro.result.stats.derivations,
        full.stats.derivations
    );

    // Precision ordering: insens ≥ IntroA ≥ IntroB ≥ full (lower = better).
    let pm_insens = PrecisionMetrics::compute(&program, &hierarchy, &insens);
    let pm_full = PrecisionMetrics::compute(&program, &hierarchy, &full);
    let pm_a = PrecisionMetrics::compute(&program, &hierarchy, &intro.result);
    let intro_b = analyze_introspective(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &HeuristicB::default(),
        &config,
    );
    let pm_b = PrecisionMetrics::compute(&program, &hierarchy, &intro_b.result);

    assert!(pm_full.polymorphic_call_sites <= pm_b.polymorphic_call_sites);
    assert!(pm_b.polymorphic_call_sites <= pm_a.polymorphic_call_sites);
    assert!(pm_a.polymorphic_call_sites <= pm_insens.polymorphic_call_sites);
    assert!(
        pm_a.polymorphic_call_sites < pm_insens.polymorphic_call_sites,
        "IntroA must still gain precision over insens"
    );
    assert!(pm_full.casts_may_fail <= pm_b.casts_may_fail);
    assert!(pm_b.casts_may_fail <= pm_a.casts_may_fail);
}

#[test]
fn budget_models_the_timeout() {
    let program = mini_benchmark();
    let hierarchy = ClassHierarchy::new(&program);
    let insens = analyze_flavor(
        &program,
        &hierarchy,
        Flavor::Insensitive,
        &SolverConfig::default(),
    );
    // A budget with headroom over the insensitive cost but far below the
    // full 2objH cost: insens completes, 2objH exhausts — the bimodality.
    let tight = SolverConfig {
        budget: Budget::derivations(insens.stats.derivations * 3 / 2),
        ..SolverConfig::default()
    };
    let full = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &tight);
    assert!(
        !full.outcome.is_complete(),
        "tight budget must exhaust on the amplifier"
    );
    let insens_again = analyze_flavor(&program, &hierarchy, Flavor::Insensitive, &tight);
    assert!(
        insens_again.outcome.is_complete(),
        "insens fits in the same budget"
    );
}

#[test]
fn heuristic_selection_is_a_small_minority() {
    let program = mini_benchmark();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();
    let run = analyze_introspective(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &HeuristicA::default(),
        &config,
    );
    let stats = run.refinement_stats;
    assert!(stats.call_sites_total > 0 && stats.objects_total > 0);
    // "the program elements that are refined are the overwhelming majority"
    assert!(stats.call_site_pct() < 50.0, "call sites: {stats:?}");
    assert!(stats.object_pct() < 50.0, "objects: {stats:?}");
}
