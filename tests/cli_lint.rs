//! End-to-end tests for the `rudoop-lint` binary: exit codes, level flags,
//! and stable rendering on the shipped example programs.

use std::path::Path;
use std::process::{Command, Output};

fn rudoop_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

#[test]
fn clean_example_exits_zero_with_notes_only() {
    let out = rudoop_lint(&["examples/programs/clean.rud"]);
    assert!(out.status.success(), "{out:?}");
    // Rendered diagnostics are the stdout payload; the summary tally is
    // progress reporting on stderr.
    assert!(stderr(&out).contains("0 error(s), 0 warning(s)"), "{out:?}");
    assert!(stdout(&out).contains("note[I005]"), "{out:?}");
}

#[test]
fn showcase_example_reports_every_tier() {
    let out = rudoop_lint(&["examples/programs/lint_showcase.rud"]);
    assert!(
        out.status.success(),
        "warnings alone must not fail: {out:?}"
    );
    let text = stdout(&out);
    for code in [
        "L001", "L002", "L003", "L004", "L005", "I001", "I002", "I003", "I004", "I005",
    ] {
        assert!(
            text.contains(&format!("[{code}]")),
            "missing {code} in:\n{text}"
        );
    }
}

#[test]
fn deny_escalates_to_failure_exit() {
    let out = rudoop_lint(&["examples/programs/lint_showcase.rud", "--deny", "L005"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("error[L005]"));
}

#[test]
fn allow_suppresses_findings() {
    let out = rudoop_lint(&["examples/programs/lint_showcase.rud", "--allow", "L003"]);
    assert!(out.status.success());
    assert!(!stdout(&out).contains("[L003]"));
}

#[test]
fn no_points_to_skips_tier2() {
    let out = rudoop_lint(&["examples/programs/lint_showcase.rud", "--no-points-to"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[L005]"), "{text}");
    assert!(
        !text.contains("[I0"),
        "tier-2 finding without analysis: {text}"
    );
}

#[test]
fn unknown_code_and_missing_file_exit_two() {
    let out = rudoop_lint(&["examples/programs/clean.rud", "--deny", "Z999"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = rudoop_lint(&["no/such/file.rud"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_prints_all_codes() {
    let out = rudoop_lint(&["--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for code in [
        "L001", "L002", "L003", "L004", "L005", "I001", "I002", "I003", "I004", "I005",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(code)),
            "missing {code} in:\n{text}"
        );
    }
}

#[test]
fn benchmark_input_is_linted() {
    let out = rudoop_lint(&["@antlr"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stderr(&out).contains("@antlr:"));
}

#[test]
fn every_shipped_example_program_lints_without_hard_errors() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rud") {
            found += 1;
            let out = rudoop_lint(&[path.to_str().unwrap()]);
            assert!(out.status.success(), "{} failed: {out:?}", path.display());
        }
    }
    assert!(
        found >= 2,
        "expected the shipped .rud examples, found {found}"
    );
}
