//! End-to-end tests for the resident daemon (`rudoopd`) and its client
//! (`rudoop query`): real processes, real sockets, real fault injection.
//!
//! The contract under test: a daemon-served document is byte-identical
//! to the batch CLI's stdout for the same query — including when the
//! request was shed under load and retried, and at every solver thread
//! count — and the daemon's Chrome trace carries the per-connection
//! service lanes (`accept`/`queue`/`rung`/`respond`).

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use rudoop::validate_chrome_trace;

fn rudoop(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rudoop"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to run rudoop")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rudoop-test-{}-{name}", std::process::id()));
    p
}

/// A running `rudoopd` process, killed on drop. The bound address comes
/// from `--port-file` (the daemon picks a free port).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(tag: &str, args: &[&str]) -> Daemon {
        let port_file = scratch(&format!("portfile-{tag}"));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_rudoopd"))
            .args(args)
            .args(["--port-file", port_file.to_str().unwrap()])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn rudoopd");
        let deadline = Instant::now() + Duration::from_secs(120);
        let addr = loop {
            match std::fs::read_to_string(&port_file) {
                Ok(s) if !s.is_empty() => break s,
                _ => {}
            }
            assert!(
                Instant::now() < deadline,
                "rudoopd never wrote its port file"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        let _ = std::fs::remove_file(&port_file);
        Daemon { child, addr }
    }

    /// Orderly stop: `rudoop query --shutdown`, then wait for exit (the
    /// daemon writes `--trace` output on the way down).
    fn shutdown_and_wait(&mut self) {
        let out = rudoop(&["query", "--addr", &self.addr, "--shutdown"]);
        assert_eq!(out.status.code(), Some(0), "shutdown failed: {out:?}");
        let status = self.child.wait().expect("daemon exit status");
        assert!(status.success(), "daemon exited with {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Writes one raw request frame (4-byte big-endian length + payload).
fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

#[test]
fn ping_round_trips() {
    let daemon = Daemon::start("ping", &["@antlr"]);
    let out = rudoop(&["query", "--addr", &daemon.addr, "--ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stderr(&out).contains("ok"), "{out:?}");
    assert!(out.stdout.is_empty(), "ping must not write stdout");
}

/// The headline byte-identity contract, at solver thread counts 1/2/4:
/// the daemon's taint JSON document equals the batch CLI's stdout.
#[test]
fn daemon_taint_json_matches_batch_at_every_thread_count() {
    for threads in ["1", "2", "4"] {
        let batch = rudoop(&[
            "taint",
            "@pmd",
            "--spec",
            "builtin",
            "--format",
            "json",
            "--threads",
            threads,
        ]);
        assert_eq!(batch.status.code(), Some(0), "{batch:?}");
        let reference = stdout(&batch);
        assert!(!reference.is_empty());

        let daemon = Daemon::start(
            &format!("taint-t{threads}"),
            &["@pmd", "--taint-spec", "builtin", "--threads", threads],
        );
        let out = rudoop(&[
            "query",
            "--addr",
            &daemon.addr,
            "--kind",
            "taint",
            "--format",
            "json",
        ]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        assert_eq!(
            stdout(&out),
            reference,
            "threads={threads}: daemon taint document diverged from batch stdout"
        );
        assert!(stderr(&out).contains("status: complete"), "{out:?}");
    }
}

#[test]
fn daemon_dump_with_ladder_override_matches_batch() {
    let batch = rudoop(&["@antlr", "--analysis", "2objH", "--dump"]);
    assert_eq!(batch.status.code(), Some(0), "{batch:?}");
    let reference = stdout(&batch);
    assert!(!reference.is_empty());

    let daemon = Daemon::start("dump", &["@antlr"]);
    let out = rudoop(&[
        "query",
        "--addr",
        &daemon.addr,
        "--kind",
        "dump",
        "--ladder",
        "2objH",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(
        stdout(&out),
        reference,
        "daemon dump diverged from batch stdout"
    );
}

/// Overload shedding end to end, at every thread count: while a stalled
/// request holds the only worker slot, a no-retry client is shed with
/// exit 5, and a retrying client backs off, gets in, and prints a
/// document byte-identical to the batch CLI's.
#[test]
fn shed_then_retried_query_matches_batch_at_every_thread_count() {
    for threads in ["1", "2", "4"] {
        let batch = rudoop(&[
            "@antlr",
            "--analysis",
            "insens",
            "--dump",
            "--threads",
            threads,
        ]);
        assert_eq!(batch.status.code(), Some(0), "{batch:?}");
        let reference = stdout(&batch);

        let daemon = Daemon::start(
            &format!("shed-t{threads}"),
            &[
                "@antlr",
                "--workers",
                "1",
                "--queue",
                "0",
                "--threads",
                threads,
                "--inject",
                "stall-ms=700@req=1",
            ],
        );

        // Occupy the only slot: the stalled request holds it for 700ms.
        let mut blocker = TcpStream::connect(&daemon.addr).expect("connect blocker");
        write_raw_frame(
            &mut blocker,
            br#"{"op":"query","kind":"stats","ladder":"insens"}"#,
        );
        std::thread::sleep(Duration::from_millis(150));

        // A client with no retry budget is shed: typed exit code 5.
        let out = rudoop(&[
            "query",
            "--addr",
            &daemon.addr,
            "--kind",
            "dump",
            "--ladder",
            "insens",
            "--retries",
            "0",
        ]);
        assert_eq!(
            out.status.code(),
            Some(5),
            "threads={threads}: no-retry client must exit 5: {out:?}"
        );
        assert!(
            stderr(&out).contains("shed by admission control"),
            "{out:?}"
        );

        // A retrying client gets in after backoff — and its document is
        // byte-identical to the uncontended batch run.
        let out = rudoop(&[
            "query",
            "--addr",
            &daemon.addr,
            "--kind",
            "dump",
            "--ladder",
            "insens",
            "--retries",
            "5",
            "--retry-base-ms",
            "700",
            "--retry-seed",
            "7",
        ]);
        assert_eq!(out.status.code(), Some(0), "threads={threads}: {out:?}");
        assert!(
            stderr(&out).contains("retried"),
            "threads={threads}: the client must actually have retried: {out:?}"
        );
        assert_eq!(
            stdout(&out),
            reference,
            "threads={threads}: shed-then-retried document diverged from batch stdout"
        );
    }
}

/// A per-request wall-clock budget degrades down the ladder over the
/// wire: `2objH` on hsqldb blows the timeout, the insensitive rung
/// completes, and the client exits with the degraded code 3.
#[test]
fn per_request_timeout_degrades_down_the_ladder() {
    let daemon = Daemon::start("timeout", &["@hsqldb"]);
    let out = rudoop(&[
        "query",
        "--addr",
        &daemon.addr,
        "--kind",
        "stats",
        "--ladder",
        "2objH,insens",
        "--timeout-ms",
        "10000",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        stderr(&out).contains("status: degraded (insens)"),
        "{out:?}"
    );
    assert!(
        !stdout(&out).is_empty(),
        "the degraded document still renders"
    );
}

/// The daemon's Chrome trace: per-connection lanes with sequential
/// `accept`/`queue`/`rung`/`respond` spans, valid under the strict trace
/// checker, and accepted by `rudoop --check-trace`.
#[test]
fn daemon_trace_has_connection_lanes_and_validates() {
    let trace = scratch("daemon.trace.json");
    let _ = std::fs::remove_file(&trace);
    let mut daemon = Daemon::start("trace", &["@antlr", "--trace", trace.to_str().unwrap()]);
    for kind in ["stats", "dump"] {
        let out = rudoop(&[
            "query",
            "--addr",
            &daemon.addr,
            "--kind",
            kind,
            "--ladder",
            "insens",
        ]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
    }
    daemon.shutdown_and_wait();

    let text = std::fs::read_to_string(&trace).expect("daemon trace written");
    let check = validate_chrome_trace(&text).expect("daemon trace validates");
    for name in ["accept", "queue", "rung", "respond"] {
        assert!(
            check.span_names.contains(name),
            "missing {name} span in {:?}",
            check.span_names
        );
    }
    // One labelled lane per connection: two queries + the shutdown.
    for conn in ["conn-1", "conn-2", "conn-3"] {
        assert!(text.contains(conn), "trace is missing the {conn} lane");
    }
    assert!(check.samples > 0, "queue-depth samples present");

    let out = rudoop(&["--check-trace", trace.to_str().unwrap()]);
    let _ = std::fs::remove_file(&trace);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--check-trace rejected it: {out:?}"
    );
}

/// The committed golden daemon trace keeps validating: the service-lane
/// schema (accept/queue/rung/respond on `conn-N` lanes) is a contract,
/// not an implementation detail.
#[test]
fn golden_daemon_trace_fixture_validates() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_daemon_trace.json"
    );
    let text = std::fs::read_to_string(path).expect("golden daemon fixture present");
    let check = validate_chrome_trace(&text).expect("golden daemon fixture validates");
    for name in ["accept", "queue", "rung", "respond"] {
        assert!(
            check.span_names.contains(name),
            "golden daemon fixture lost the {name} span"
        );
    }
    assert!(
        text.contains("conn-1"),
        "golden daemon fixture lost its connection lane"
    );
}
