//! Ablation: sensitivity of introspective analysis to the heuristic
//! constants — the paper's §3 claim that "even relatively large variations
//! of these numbers make scarcely any difference in the total picture".
//!
//! Sweeps Heuristic A's K/L/M and Heuristic B's P/Q by ×¼ … ×4 around the
//! paper values on two representative hard benchmarks and prints outcome,
//! cost and precision per setting.
//!
//! Usage: `cargo run --release -p rudoop-bench --bin sweep [bench ...]`

use rudoop_bench::measure::{insens_pass, STANDARD_BUDGET};
use rudoop_bench::table;
use rudoop_core::driver::{analyze_introspective_from, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::solver::{Budget, SolverConfig};
use rudoop_core::PrecisionMetrics;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> =
        if args.is_empty() { vec!["hsqldb", "chart"] } else { args.iter().map(String::as_str).collect() };
    let config = SolverConfig {
        budget: Budget::derivations(STANDARD_BUDGET),
        ..SolverConfig::default()
    };

    let mut rows = Vec::new();
    for name in names {
        let spec = dacapo::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, STANDARD_BUDGET);

        let mut heuristics: Vec<(String, Box<dyn RefinementHeuristic>)> = Vec::new();
        for scale in [1u32, 2, 4] {
            heuristics.push((
                format!("A(K={},L={},M={})", 100 / scale, 100 / scale, 200 / scale),
                Box::new(HeuristicA { k: 100 / scale, l: 100 / scale, m: 200 / scale }),
            ));
            if scale > 1 {
                heuristics.push((
                    format!("A(K={},L={},M={})", 100 * scale, 100 * scale, 200 * scale),
                    Box::new(HeuristicA { k: 100 * scale, l: 100 * scale, m: 200 * scale }),
                ));
            }
            heuristics.push((
                format!("B(P=Q={})", 10_000 / scale),
                Box::new(HeuristicB { p: 10_000 / scale, q: 10_000 / scale }),
            ));
            if scale > 1 {
                heuristics.push((
                    format!("B(P=Q={})", 10_000 * scale),
                    Box::new(HeuristicB { p: 10_000 * scale, q: 10_000 * scale }),
                ));
            }
        }

        for (label, heuristic) in &heuristics {
            let run = analyze_introspective_from(
                &program,
                &hierarchy,
                Flavor::OBJ2H,
                heuristic.as_ref(),
                &config,
                insens.clone(),
            );
            let pm = PrecisionMetrics::compute(&program, &hierarchy, &run.result);
            rows.push(vec![
                name.to_owned(),
                label.clone(),
                if run.result.outcome.is_complete() { "ok".into() } else { "BUDGET".into() },
                table::mega(run.result.stats.derivations),
                if run.result.outcome.is_complete() {
                    pm.polymorphic_call_sites.to_string()
                } else {
                    "-".into()
                },
                if run.result.outcome.is_complete() {
                    pm.casts_may_fail.to_string()
                } else {
                    "-".into()
                },
            ]);
        }
    }
    println!("Constant-sweep ablation (2objH, introspective):");
    println!();
    println!(
        "{}",
        table::render(&["bench", "heuristic", "outcome", "derivs", "poly", "casts"], &rows)
    );
    println!("The qualitative picture (which heuristic scales, roughly what precision)");
    println!("should be stable across the sweep — the paper's §3 robustness claim.");
}
