//! Calibration tool: prints the full measurement grid (benchmark × analysis
//! variant) with derivation counts, for tuning workload specs against the
//! standard budget. Not one of the paper's figures — a development aid.
//!
//! Usage: `cargo run --release -p rudoop-bench --bin tune [bench ...]`

use rudoop_bench::measure::{insens_pass, run_variant, AnalysisVariant, STANDARD_BUDGET};
use rudoop_bench::table;
use rudoop_core::driver::Flavor;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = if args.is_empty() {
        dacapo::all_nine()
    } else {
        args.iter().map(|n| dacapo::by_name(n).unwrap_or_else(|| panic!("unknown: {n}"))).collect()
    };
    let mut rows = Vec::new();
    for spec in specs {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, STANDARD_BUDGET);
        eprintln!(
            "{}: {} instructions, insens {} derivs in {:?}",
            spec.name,
            program.instruction_count(),
            insens.stats.derivations,
            insens.stats.duration
        );
        let variants = [
            AnalysisVariant::Insens,
            AnalysisVariant::Base(Flavor::OBJ2H),
            AnalysisVariant::IntroA(Flavor::OBJ2H),
            AnalysisVariant::IntroB(Flavor::OBJ2H),
            AnalysisVariant::Base(Flavor::TYPE2H),
            AnalysisVariant::IntroA(Flavor::TYPE2H),
            AnalysisVariant::IntroB(Flavor::TYPE2H),
            AnalysisVariant::Base(Flavor::CALL2H),
            AnalysisVariant::IntroA(Flavor::CALL2H),
            AnalysisVariant::IntroB(Flavor::CALL2H),
        ];
        for v in variants {
            let run = run_variant(&spec.name, &program, &hierarchy, v, STANDARD_BUDGET, &insens);
            rows.push(vec![
                run.benchmark.clone(),
                run.analysis.clone(),
                if run.complete() { "ok".into() } else { "BUDGET".into() },
                table::mega(run.derivations),
                table::secs(run.duration),
                run.precision.polymorphic_call_sites.to_string(),
                run.precision.reachable_methods.to_string(),
                run.precision.casts_may_fail.to_string(),
            ]);
            eprintln!("  done {}", rows.last().unwrap().join("  "));
        }
    }
    println!(
        "{}",
        table::render(
            &["bench", "analysis", "outcome", "derivs", "secs", "poly", "reach", "casts"],
            &rows
        )
    );
}
