//! **Figure 1**: running cost of a context-insensitive analysis vs
//! 2-object-sensitive with context-sensitive heap (`2objH`), across the
//! nine DaCapo benchmarks.
//!
//! The paper's chart shows the bimodality motivating the whole work:
//! `insens` varies little across benchmarks, `2objH` explodes on some
//! (hsqldb and jython never terminate within the 90-minute timeout). Here
//! the timeout is the standard derivation budget; exhausted runs print as
//! `>BUDGET` (the paper's truncated full-height bars).

use rudoop_bench::measure::{insens_pass, run_variant, AnalysisVariant, STANDARD_BUDGET};
use rudoop_bench::table;
use rudoop_core::driver::Flavor;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn main() {
    println!("Figure 1: insens vs 2objH running cost (budget = {})", table::mega(STANDARD_BUDGET));
    println!();
    let mut rows = Vec::new();
    for spec in dacapo::all_nine() {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, STANDARD_BUDGET);
        let base = run_variant(
            &spec.name,
            &program,
            &hierarchy,
            AnalysisVariant::Insens,
            STANDARD_BUDGET,
            &insens,
        );
        let obj = run_variant(
            &spec.name,
            &program,
            &hierarchy,
            AnalysisVariant::Base(Flavor::OBJ2H),
            STANDARD_BUDGET,
            &insens,
        );
        rows.push(vec![
            spec.name.clone(),
            table::cost_cell(&base, STANDARD_BUDGET),
            table::secs(base.duration),
            table::cost_cell(&obj, STANDARD_BUDGET),
            if obj.complete() { table::secs(obj.duration) } else { "timeout".into() },
        ]);
    }
    println!(
        "{}",
        table::render(
            &["benchmark", "insens(derivs)", "insens(s)", "2objH(derivs)", "2objH(s)"],
            &rows
        )
    );
    println!("CSV:");
    println!(
        "{}",
        table::csv(&["benchmark", "insens_derivs", "insens_s", "objH_derivs", "objH_s"], &rows)
    );
}
