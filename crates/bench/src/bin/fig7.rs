//! **Figure 7**: performance and precision for introspective variants of a
//! 2callH analysis, compared with the 2callH and insensitive baselines, over the
//! six scalability-challenged benchmarks.

use rudoop_bench::family::{print_family, run_family};
use rudoop_bench::measure::STANDARD_BUDGET;
use rudoop_core::driver::Flavor;

fn main() {
    let results = run_family(Flavor::CALL2H, STANDARD_BUDGET);
    print_family("Figure 7", &results);
}
