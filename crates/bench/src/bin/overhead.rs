//! **§4 Discussion**: the overheads excluded from the paper's timings —
//! the first (context-insensitive) pass and the metric/selection
//! computation, reported per benchmark. The paper calls these "relatively
//! constant at about 100sec"; here we report them next to the second-pass
//! time so the claim can be checked in relative terms.

use rudoop_bench::measure::{insens_pass, run_variant, AnalysisVariant, STANDARD_BUDGET};
use rudoop_bench::table;
use rudoop_core::driver::Flavor;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn main() {
    println!("Introspection overhead accounting (2objH-IntroA)");
    println!();
    let mut rows = Vec::new();
    for spec in dacapo::hard_six() {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, STANDARD_BUDGET);
        let run = run_variant(
            &spec.name,
            &program,
            &hierarchy,
            AnalysisVariant::IntroA(Flavor::OBJ2H),
            STANDARD_BUDGET,
            &insens,
        );
        let overhead = run.overhead.expect("introspective run");
        rows.push(vec![
            spec.name.clone(),
            table::secs(insens.stats.duration),
            table::secs(overhead - insens.stats.duration.min(overhead)),
            table::secs(run.duration),
            format!("{:.0}%", 100.0 * overhead.as_secs_f64() / run.duration.as_secs_f64().max(1e-9)),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["benchmark", "pass1 (s)", "selection (s)", "pass2 (s)", "overhead/pass2"],
            &rows
        )
    );
    println!("(The paper factors these out of Figures 5-7; they are shared across");
    println!(" all introspective variants of a benchmark and amortize to once per");
    println!(" benchmark with minor engineering, as §4 notes.)");
}
