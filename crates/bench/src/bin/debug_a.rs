//! Debug aid: prints Heuristic-A exclusion causes for one benchmark.
use rudoop_bench::measure::{insens_pass, STANDARD_BUDGET};
use rudoop_core::heuristics::{HeuristicA, RefinementHeuristic};
use rudoop_core::IntrospectionMetrics;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;
use std::collections::HashMap;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jython".into());
    let spec = dacapo::by_name(&name).unwrap();
    let program = spec.build();
    let h = ClassHierarchy::new(&program);
    let insens = insens_pass(&program, &h, STANDARD_BUDGET);
    let metrics = IntrospectionMetrics::compute(&program, &insens);
    let set = HeuristicA::default().select(&program, &metrics, &insens);
    // Count excluded sites by reason and by target method.
    let mut by_target: HashMap<String, usize> = HashMap::new();
    let mut by_inflow = 0usize;
    let mut total = 0usize;
    for (iid, invoke) in program.invokes.iter() {
        if !insens.reachable_methods.contains(invoke.method) { continue; }
        total += 1;
        if set.no_refine_invokes.contains(iid) { by_inflow += 1; continue; }
        if let Some(targets) = insens.call_targets.get(&iid) {
            if !targets.is_empty() && targets.iter().all(|&t| set.no_refine_methods.contains(t)) {
                let label = targets.iter().map(|&t| program.method_display(t)).collect::<Vec<_>>().join("|");
                let label = if label.len() > 60 { format!("{}...", &label[..60]) } else { label };
                *by_target.entry(label).or_default() += 1;
            }
        }
    }
    println!("total sites {total}, excluded by in-flow {by_inflow}");
    let mut v: Vec<_> = by_target.into_iter().collect();
    v.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (t, c) in v.iter().take(25) {
        println!("{c:>6}  {t}");
    }
}
