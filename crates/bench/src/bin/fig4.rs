//! **Figure 4** (table): percentage of call sites and objects selected
//! to *not* be refined by each introspective variant.
//!
//! The paper's table shows Heuristic A is aggressive (average ≈ 22% of
//! call sites, ≈ 14% of objects not refined) while Heuristic B is very
//! selective (≈ 1% of call sites, ≈ 9% of objects) — in both cases the
//! refined elements are the overwhelming majority.

use rudoop_bench::measure::{insens_pass, STANDARD_BUDGET};
use rudoop_bench::table;
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic, RefinementStats};
use rudoop_core::IntrospectionMetrics;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn main() {
    println!("Figure 4: % of call sites / objects NOT refined (paper-constant heuristics)");
    println!();
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    let specs = dacapo::figure4_seven();
    let n = specs.len() as f64;
    for spec in specs {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, STANDARD_BUDGET);
        let metrics = IntrospectionMetrics::compute(&program, &insens);
        let a = HeuristicA::default().select(&program, &metrics, &insens);
        let b = HeuristicB::default().select(&program, &metrics, &insens);
        let sa = RefinementStats::compute(&program, &insens, &a);
        let sb = RefinementStats::compute(&program, &insens, &b);
        let cells = [sa.call_site_pct(), sb.call_site_pct(), sa.object_pct(), sb.object_pct()];
        for (s, c) in sums.iter_mut().zip(cells) {
            *s += c;
        }
        rows.push(vec![
            spec.name.clone(),
            format!("{:.1} %", cells[0]),
            format!("{:.1} %", cells[1]),
            format!("{:.1} %", cells[2]),
            format!("{:.1} %", cells[3]),
        ]);
    }
    rows.push(vec![
        "average".into(),
        format!("{:.2} %", sums[0] / n),
        format!("{:.2} %", sums[1] / n),
        format!("{:.2} %", sums[2] / n),
        format!("{:.2} %", sums[3] / n),
    ]);
    println!(
        "{}",
        table::render(
            &["benchmark", "CallSites A", "CallSites B", "Objects A", "Objects B"],
            &rows
        )
    );
}
