//! Sequential-vs-sharded scaling table for the parallel propagation
//! engine: per workload × flavor × thread count, wall-clock time, total
//! derivations (engine-invariant by construction), the max/mean shard
//! imbalance ratio, p50/p95 per-epoch durations, and the fraction of
//! epoch time spent in coordinator barriers (from telemetry spans).
//!
//! The root crate's `examples/bench_parallel.rs` is the no-network twin of
//! this bin and is what regenerates the committed `BENCH_parallel.json`;
//! this variant renders the same measurements as a table and takes the
//! workload list on the command line.
//!
//! Usage: `cargo run --release -p rudoop-bench --bin parallel [bench ...]`

use std::sync::Arc;
use std::time::Instant;

use rudoop_bench::table;
use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::solver::{Budget, SolverConfig};
use rudoop_core::{Parallelism, Telemetry, TelemetryHandle};
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

/// `(p50, p95, barrier fraction)` over the run's epoch spans; `None` when
/// the run was sequential (no epochs recorded).
fn epoch_profile(tele: &TelemetryHandle) -> Option<(u64, u64, f64)> {
    let spans = tele.as_deref()?.spans();
    let mut epochs: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "epoch")
        .map(|s| s.dur_us())
        .collect();
    if epochs.is_empty() {
        return None;
    }
    epochs.sort_unstable();
    let pct = |q: f64| epochs[((epochs.len() - 1) as f64 * q).round() as usize];
    let barrier: u64 = spans
        .iter()
        .filter(|s| s.name == "barrier")
        .map(|s| s.dur_us())
        .sum();
    let total: u64 = epochs.iter().sum();
    let frac = if total > 0 {
        barrier as f64 / total as f64
    } else {
        0.0
    };
    Some((pct(0.5), pct(0.95), frac))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["antlr", "lusearch", "pmd"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for name in &names {
        let spec = dacapo::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, label) in [(Flavor::Insensitive, "insens"), (Flavor::OBJ2H, "2objH")] {
            let mut seq_stats = None;
            let mut seq_time = 0.0;
            for threads in [1usize, 2, 4, 8] {
                let tele: TelemetryHandle = (threads > 1).then(|| Arc::new(Telemetry::new()));
                let config = SolverConfig {
                    budget: Budget::unlimited(),
                    parallelism: Parallelism::threads(threads),
                    telemetry: tele.clone(),
                    ..SolverConfig::default()
                };
                let start = Instant::now();
                let result = analyze_flavor(&program, &hierarchy, flavor, &config);
                let seconds = start.elapsed().as_secs_f64();
                assert!(result.outcome.is_complete(), "{name}/{label} must complete");
                match &seq_stats {
                    None => {
                        seq_stats = Some(result.stats.canonical());
                        seq_time = seconds;
                    }
                    Some(reference) => assert_eq!(
                        reference,
                        &result.stats.canonical(),
                        "{name}/{label}/t{threads}: engines disagree"
                    ),
                }
                let imbalance = result
                    .shard_work
                    .as_ref()
                    .map(|work| {
                        let max = *work.iter().max().unwrap_or(&0) as f64;
                        let mean = work.iter().sum::<u64>() as f64 / work.len().max(1) as f64;
                        if mean > 0.0 {
                            format!("{:.2}x", max / mean)
                        } else {
                            "1.00x".into()
                        }
                    })
                    .unwrap_or_else(|| "-".into());
                let (p50, p95, barrier) = match epoch_profile(&tele) {
                    Some((p50, p95, frac)) => (
                        format!("{p50}us"),
                        format!("{p95}us"),
                        format!("{:.1}%", frac * 100.0),
                    ),
                    None => ("-".into(), "-".into(), "-".into()),
                };
                rows.push(vec![
                    (*name).to_owned(),
                    label.to_owned(),
                    threads.to_string(),
                    format!("{seconds:.3}s"),
                    table::mega(result.stats.derivations),
                    imbalance,
                    p50,
                    p95,
                    barrier,
                    format!("{:.2}x", seq_time / seconds),
                ]);
            }
        }
    }
    println!("Parallel propagation scaling ({host_cpus} host CPUs):");
    println!();
    println!(
        "{}",
        table::render(
            &[
                "bench",
                "flavor",
                "threads",
                "time",
                "derivs",
                "imbalance",
                "ep50",
                "ep95",
                "barrier",
                "speedup"
            ],
            &rows
        )
    );
    println!("Derivation counts and results are engine-invariant (asserted above);");
    println!("only wall-clock varies, and speedup above 1x needs more than one CPU.");
}
