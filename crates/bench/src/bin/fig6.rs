//! **Figure 6**: performance and precision for introspective variants of a
//! 2typeH analysis, compared with the 2typeH and insensitive baselines, over the
//! six scalability-challenged benchmarks.

use rudoop_bench::family::{print_family, run_family};
use rudoop_bench::measure::STANDARD_BUDGET;
use rudoop_core::driver::Flavor;

fn main() {
    let results = run_family(Flavor::TYPE2H, STANDARD_BUDGET);
    print_family("Figure 6", &results);
}
