//! Shared measurement plumbing for the per-figure harness binaries.

use std::time::Duration;

use rudoop_core::driver::{analyze_flavor, analyze_introspective_from, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic, RefinementStats};
use rudoop_core::solver::{Budget, Outcome, PointsToResult, SolverConfig};
use rudoop_core::{analyze, Insensitive, PrecisionMetrics};
use rudoop_ir::{ClassHierarchy, Program};

/// The standard derivation budget, playing the role of the paper's
/// 90-minute timeout on a 24 GB machine. All figures use it.
pub const STANDARD_BUDGET: u64 = 30_000_000;

/// One analysis configuration of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisVariant {
    /// Context-insensitive baseline.
    Insens,
    /// A full context-sensitive analysis.
    Base(Flavor),
    /// Introspective with Heuristic A (paper constants).
    IntroA(Flavor),
    /// Introspective with Heuristic B (paper constants).
    IntroB(Flavor),
}

impl AnalysisVariant {
    /// Doop-style display name, e.g. `2objH-IntroA`.
    pub fn name(&self, program: &Program) -> String {
        match self {
            AnalysisVariant::Insens => "insens".to_owned(),
            AnalysisVariant::Base(f) => f.name(program),
            AnalysisVariant::IntroA(f) => format!("{}-IntroA", f.name(program)),
            AnalysisVariant::IntroB(f) => format!("{}-IntroB", f.name(program)),
        }
    }
}

/// One measured cell of an evaluation figure.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Analysis name (`insens`, `2objH`, `2objH-IntroA`, …).
    pub analysis: String,
    /// Completion status under the budget.
    pub outcome: Outcome,
    /// Derivations performed (the deterministic cost measure).
    pub derivations: u64,
    /// Wall-clock duration of the final (second, for introspective) pass.
    pub duration: Duration,
    /// The paper's three precision metrics (meaningless when the analysis
    /// exceeded the budget; the paper leaves those bars out, and so do we).
    pub precision: PrecisionMetrics,
    /// Refinement selection statistics (introspective variants only).
    pub refinement: Option<RefinementStats>,
    /// Time of the first (insensitive) pass plus metric/selection time
    /// (introspective variants only) — §4's "constant overheads".
    pub overhead: Option<Duration>,
}

impl MeasuredRun {
    /// Whether this run completed within the budget.
    pub fn complete(&self) -> bool {
        self.outcome.is_complete()
    }
}

fn config(budget: u64) -> SolverConfig {
    SolverConfig { budget: Budget::derivations(budget), ..SolverConfig::default() }
}

/// Runs one analysis variant of `program` under the derivation budget.
///
/// Introspective variants reuse `insens_pass` (the shared first pass), as
/// the paper's §4 discussion describes.
pub fn run_variant(
    benchmark: &str,
    program: &Program,
    hierarchy: &ClassHierarchy,
    variant: AnalysisVariant,
    budget: u64,
    insens_pass: &PointsToResult,
) -> MeasuredRun {
    let name = variant.name(program);
    match variant {
        AnalysisVariant::Insens => {
            let r = analyze(program, hierarchy, &Insensitive, &config(budget));
            let precision = PrecisionMetrics::compute(program, hierarchy, &r);
            MeasuredRun {
                benchmark: benchmark.to_owned(),
                analysis: name,
                outcome: r.outcome,
                derivations: r.stats.derivations,
                duration: r.stats.duration,
                precision,
                refinement: None,
                overhead: None,
            }
        }
        AnalysisVariant::Base(flavor) => {
            let r = analyze_flavor(program, hierarchy, flavor, &config(budget));
            let precision = PrecisionMetrics::compute(program, hierarchy, &r);
            MeasuredRun {
                benchmark: benchmark.to_owned(),
                analysis: name,
                outcome: r.outcome,
                derivations: r.stats.derivations,
                duration: r.stats.duration,
                precision,
                refinement: None,
                overhead: None,
            }
        }
        AnalysisVariant::IntroA(flavor) | AnalysisVariant::IntroB(flavor) => {
            let heuristic: Box<dyn RefinementHeuristic> = match variant {
                AnalysisVariant::IntroA(_) => Box::new(HeuristicA::default()),
                _ => Box::new(HeuristicB::default()),
            };
            let run = analyze_introspective_from(
                program,
                hierarchy,
                flavor,
                heuristic.as_ref(),
                &config(budget),
                insens_pass.clone(),
            );
            let precision = PrecisionMetrics::compute(program, hierarchy, &run.result);
            MeasuredRun {
                benchmark: benchmark.to_owned(),
                analysis: name,
                outcome: run.result.outcome,
                derivations: run.result.stats.derivations,
                duration: run.result.stats.duration,
                precision,
                refinement: Some(run.refinement_stats),
                overhead: Some(run.first_pass.stats.duration + run.selection_time),
            }
        }
    }
}

/// Runs the insensitive pass once for reuse across introspective variants.
pub fn insens_pass(program: &Program, hierarchy: &ClassHierarchy, budget: u64) -> PointsToResult {
    analyze(program, hierarchy, &Insensitive, &config(budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_workloads::dacapo;

    #[test]
    fn variant_names_match_paper_convention() {
        let p = dacapo::antlr().build();
        assert_eq!(AnalysisVariant::Insens.name(&p), "insens");
        assert_eq!(AnalysisVariant::Base(Flavor::OBJ2H).name(&p), "2objH");
        assert_eq!(AnalysisVariant::IntroA(Flavor::OBJ2H).name(&p), "2objH-IntroA");
        assert_eq!(AnalysisVariant::IntroB(Flavor::CALL2H).name(&p), "2callH-IntroB");
    }

    #[test]
    fn run_variant_produces_consistent_rows() {
        let p = dacapo::lusearch().build();
        let h = ClassHierarchy::new(&p);
        let insens = insens_pass(&p, &h, STANDARD_BUDGET);
        let row = run_variant("lusearch", &p, &h, AnalysisVariant::Insens, STANDARD_BUDGET, &insens);
        assert!(row.complete());
        assert!(row.derivations > 0);
        let row = run_variant(
            "lusearch",
            &p,
            &h,
            AnalysisVariant::IntroA(Flavor::OBJ2H),
            STANDARD_BUDGET,
            &insens,
        );
        assert!(row.refinement.is_some());
        assert!(row.overhead.is_some());
    }
}
