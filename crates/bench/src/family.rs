//! Shared implementation of Figures 5, 6 and 7: for one context flavor,
//! the 4-analysis grid (insens, IntroA, IntroB, full) over the six hard
//! benchmarks, reporting cost plus the three precision metrics.

use rudoop_core::driver::Flavor;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

use crate::measure::{insens_pass, run_variant, AnalysisVariant, MeasuredRun, STANDARD_BUDGET};
use crate::table;

/// All measured cells of one figure.
#[derive(Debug)]
pub struct FamilyResults {
    /// Flavor under evaluation (`2objH`, `2typeH` or `2callH`).
    pub flavor: Flavor,
    /// Rows: benchmark × 4 variants, in grid order.
    pub runs: Vec<MeasuredRun>,
}

/// Runs the full grid for `flavor` over the hard six benchmarks.
pub fn run_family(flavor: Flavor, budget: u64) -> FamilyResults {
    let mut runs = Vec::new();
    for spec in dacapo::hard_six() {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let insens = insens_pass(&program, &hierarchy, budget);
        for variant in [
            AnalysisVariant::Insens,
            AnalysisVariant::IntroA(flavor),
            AnalysisVariant::IntroB(flavor),
            AnalysisVariant::Base(flavor),
        ] {
            runs.push(run_variant(&spec.name, &program, &hierarchy, variant, budget, &insens));
        }
    }
    FamilyResults { flavor, runs }
}

/// Prints the figure: a cost table and three precision tables, exactly the
/// four charts of the paper's Figures 5–7.
pub fn print_family(figure: &str, results: &FamilyResults) {
    println!(
        "{figure}: {} family (budget = {})",
        results.runs[1].analysis.trim_end_matches("-IntroA"),
        table::mega(STANDARD_BUDGET)
    );
    println!();

    let grouped: Vec<&[MeasuredRun]> = results.runs.chunks(4).collect();
    let headers: Vec<&str> = {
        let mut h = vec!["benchmark"];
        h.extend(grouped[0].iter().map(|r| r.analysis.as_str()));
        h
    };

    let section = |title: &str, cell: &dyn Fn(&MeasuredRun) -> String| {
        let rows: Vec<Vec<String>> = grouped
            .iter()
            .map(|g| {
                let mut row = vec![g[0].benchmark.clone()];
                row.extend(g.iter().map(|r| cell(r)));
                row
            })
            .collect();
        println!("{title}");
        println!("{}", table::render(&headers, &rows));
    };

    section("Cost (derivations; > budget = did not terminate):", &|r| {
        table::cost_cell(r, STANDARD_BUDGET)
    });
    section("Wall-clock (s, final pass):", &|r| {
        if r.complete() {
            table::secs(r.duration)
        } else {
            "timeout".into()
        }
    });
    section("Calls that cannot be devirtualized (lower is better):", &|r| {
        table::precision_cell(r, r.precision.polymorphic_call_sites)
    });
    section("Reachable methods (lower is better):", &|r| {
        table::precision_cell(r, r.precision.reachable_methods)
    });
    section("Reachable casts that may fail (lower is better):", &|r| {
        table::precision_cell(r, r.precision.casts_may_fail)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_benchmark_major() {
        // Run with a tiny budget so the test is fast; we only check
        // structure, not outcomes.
        let results = run_family(Flavor::TYPE2H, 50_000);
        assert_eq!(results.runs.len(), 6 * 4);
        assert_eq!(results.runs[0].analysis, "insens");
        assert_eq!(results.runs[3].analysis, "2typeH");
        assert_eq!(results.runs[0].benchmark, "bloat");
        assert_eq!(results.runs[4].benchmark, "chart");
    }
}
