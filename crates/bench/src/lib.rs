//! # rudoop-bench
//!
//! The evaluation harness: regenerates every table and figure of the
//! PLDI'14 introspective-analysis paper against the synthetic DaCapo-shaped
//! workloads.
//!
//! Binaries (run with `cargo run --release -p rudoop-bench --bin <name>`):
//!
//! - `fig1` — context-insensitive vs `2objH` running cost, 9 benchmarks,
//! - `fig4` — % of call sites / objects *not* refined per heuristic,
//! - `fig5` / `fig6` / `fig7` — time + 3 precision metrics for the
//!   `2objH` / `2typeH` / `2callH` families,
//! - `overhead` — the two-pass overhead accounting of §4's discussion,
//! - `reproduce` — runs everything and rewrites `EXPERIMENTS.md`.
//!
//! Wall-clock numbers vary by machine, so the harness reports a
//! deterministic cost measure alongside time: solver *derivations* (tuple
//! insertions), with the budget playing the role of the paper's 90-minute
//! timeout. Shapes — who completes, who exceeds the budget, ratios — are
//! what the reproduction asserts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod family;
pub mod measure;
pub mod table;

pub use measure::{run_variant, AnalysisVariant, MeasuredRun, STANDARD_BUDGET};
