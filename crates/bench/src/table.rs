//! Plain-text table and CSV rendering for the harness binaries.

use std::fmt::Write as _;

use crate::measure::MeasuredRun;

/// Formats a duration in seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats derivations in millions with one decimal.
pub fn mega(n: u64) -> String {
    format!("{:.1}M", n as f64 / 1e6)
}

/// The cost cell for a run: the paper renders budget-exhausted analyses as
/// full bars; we render them as `>BUDGET`.
pub fn cost_cell(run: &MeasuredRun, budget: u64) -> String {
    if run.complete() {
        mega(run.derivations)
    } else {
        format!(">{}", mega(budget))
    }
}

/// The precision cell: absent for budget-exhausted runs, like the paper's
/// missing precision bars.
pub fn precision_cell(run: &MeasuredRun, value: usize) -> String {
    if run.complete() {
        value.to_string()
    } else {
        "-".to_owned()
    }
}

/// Renders rows of `(label, cells…)` as an aligned table.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.min(120)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (comma-separated, no quoting — cells are simple).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let rows = vec![
            vec!["antlr".into(), "1.0M".into()],
            vec!["hsqldb".into(), ">30.0M".into()],
        ];
        let s = render(&["bench", "cost"], &rows);
        assert!(s.contains("antlr"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        // The cost column starts at the same offset on both data rows.
        let off1 = lines[2].find("1.0M").unwrap();
        let off2 = lines[3].find(">30.0M").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn csv_is_flat() {
        let rows = vec![vec!["a".into(), "b".into()]];
        assert_eq!(csv(&["x", "y"], &rows), "x,y\na,b\n");
    }

    #[test]
    fn mega_and_secs_format() {
        assert_eq!(mega(1_500_000), "1.5M");
        assert_eq!(secs(std::time::Duration::from_millis(2500)), "2.50");
    }
}
