//! Criterion microbenchmarks for the context machinery: interning
//! throughput and policy constructor costs.

use criterion::{criterion_group, criterion_main, Criterion};
use rudoop_core::context::{ContextElem, CtxTables};
use rudoop_core::policy::{CallSiteSensitive, ContextPolicy, ObjectSensitive};
use rudoop_core::{CtxId, HCtxId};
use rudoop_ir::{AllocId, InvokeId, MethodId};

fn bench_interning(c: &mut Criterion) {
    c.bench_function("context/intern-hit", |b| {
        let mut tables = CtxTables::new();
        let elems = [ContextElem::Site(InvokeId(7)), ContextElem::Site(InvokeId(3))];
        tables.intern_ctx(&elems);
        b.iter(|| tables.intern_ctx(std::hint::black_box(&elems)));
    });
    c.bench_function("context/intern-miss", |b| {
        let mut tables = CtxTables::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            tables.intern_ctx(&[ContextElem::Site(InvokeId(i))])
        });
    });
}

fn bench_policies(c: &mut Criterion) {
    c.bench_function("policy/2callH-merge", |b| {
        let mut tables = CtxTables::new();
        let policy = CallSiteSensitive::new(2, 1);
        let caller = policy.merge_static(&mut tables, InvokeId(1), MethodId(0), CtxId::EMPTY);
        b.iter(|| {
            policy.merge(
                &mut tables,
                AllocId(0),
                HCtxId::EMPTY,
                std::hint::black_box(InvokeId(2)),
                MethodId(0),
                caller,
            )
        });
    });
    c.bench_function("policy/2objH-merge", |b| {
        let mut tables = CtxTables::new();
        let policy = ObjectSensitive::new(2, 1);
        let hctx = tables.intern_hctx(&[ContextElem::Heap(AllocId(9))]);
        b.iter(|| {
            policy.merge(
                &mut tables,
                std::hint::black_box(AllocId(4)),
                hctx,
                InvokeId(2),
                MethodId(0),
                CtxId::EMPTY,
            )
        });
    });
}

criterion_group!(benches, bench_interning, bench_policies);
criterion_main!(benches);
