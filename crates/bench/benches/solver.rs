//! Criterion microbenchmarks for the solver core: end-to-end analysis
//! throughput per context flavor on a fixed mid-size workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::solver::SolverConfig;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn bench_flavors(c: &mut Criterion) {
    let program = dacapo::pmd().build();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();
    let mut group = c.benchmark_group("solver/pmd");
    group.sample_size(10);
    for (name, flavor) in [
        ("insens", Flavor::Insensitive),
        ("2objH", Flavor::OBJ2H),
        ("2typeH", Flavor::TYPE2H),
        ("2callH", Flavor::CALL2H),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flavor, |b, &flavor| {
            b.iter(|| analyze_flavor(&program, &hierarchy, flavor, &config));
        });
    }
    group.finish();
}

fn bench_program_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/insens-scaling");
    group.sample_size(10);
    for name in ["antlr", "pmd", "chart"] {
        let program = dacapo::by_name(name).unwrap().build();
        let hierarchy = ClassHierarchy::new(&program);
        let config = SolverConfig::default();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| analyze_flavor(&program, &hierarchy, Flavor::Insensitive, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flavors, bench_program_sizes);
criterion_main!(benches);
