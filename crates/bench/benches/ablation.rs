//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - heuristic choice (A vs B) on a benchmark where the full analysis is
//!   expensive but bounded,
//! - heuristic constant sweeps (the paper's "even relatively large
//!   variations of these numbers make scarcely any difference" claim),
//! - the cost of computing the introspection metrics themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rudoop_core::driver::{analyze_introspective_from, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::solver::SolverConfig;
use rudoop_core::{analyze, Insensitive, IntrospectionMetrics};
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

fn bench_heuristics(c: &mut Criterion) {
    let program = dacapo::chart().build();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();
    let insens = analyze(&program, &hierarchy, &Insensitive, &config);
    let mut group = c.benchmark_group("ablation/heuristic-chart-2objH");
    group.sample_size(10);
    let heuristics: Vec<(&str, Box<dyn RefinementHeuristic>)> = vec![
        ("A-paper", Box::new(HeuristicA::default())),
        ("B-paper", Box::new(HeuristicB::default())),
    ];
    for (name, h) in &heuristics {
        group.bench_with_input(BenchmarkId::from_parameter(name), h, |b, h| {
            b.iter(|| {
                analyze_introspective_from(
                    &program,
                    &hierarchy,
                    Flavor::OBJ2H,
                    h.as_ref(),
                    &config,
                    insens.clone(),
                )
            });
        });
    }
    group.finish();
}

fn bench_constant_sweep(c: &mut Criterion) {
    let program = dacapo::chart().build();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();
    let insens = analyze(&program, &hierarchy, &Insensitive, &config);
    let mut group = c.benchmark_group("ablation/heuristicA-K-sweep");
    group.sample_size(10);
    for k in [50u32, 100, 200, 400] {
        let h = HeuristicA { k, l: 100, m: 200 };
        group.bench_with_input(BenchmarkId::from_parameter(k), &h, |b, h| {
            b.iter(|| {
                analyze_introspective_from(
                    &program,
                    &hierarchy,
                    Flavor::OBJ2H,
                    h,
                    &config,
                    insens.clone(),
                )
            });
        });
    }
    group.finish();
}

fn bench_metric_computation(c: &mut Criterion) {
    let program = dacapo::eclipse().build();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();
    let insens = analyze(&program, &hierarchy, &Insensitive, &config);
    c.bench_function("ablation/metrics-eclipse", |b| {
        b.iter(|| IntrospectionMetrics::compute(&program, &insens));
    });
}

criterion_group!(benches, bench_heuristics, bench_constant_sweep, bench_metric_computation);
criterion_main!(benches);
