//! Seeded random generation of well-formed programs for property-style
//! testing.
//!
//! [`generate`] produces structurally valid programs: class hierarchies are
//! acyclic by construction (a class may only extend an earlier class), every
//! instruction uses variables of its own method, call arities match, and an
//! entry point exists. The generator is deliberately biased toward the
//! interactions that stress a points-to analysis: shared fields, virtual
//! calls with overriding, value-returning helpers, and casts.
//!
//! The generator is a pure function of `(shape, seed)` — it draws from the
//! in-tree [`crate::rng::SplitMix64`] stream, so test failures reproduce
//! from the failing seed alone and the suite needs no external
//! property-testing dependency (the workspace must build offline).

use crate::builder::ProgramBuilder;
use crate::program::Program;
use crate::rng::SplitMix64;
use crate::taint::TaintSpec;

/// Size bounds for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct ProgramShape {
    /// Maximum classes beyond the root (≥ 1).
    pub max_classes: usize,
    /// Maximum fields.
    pub max_fields: usize,
    /// Maximum static (global) fields.
    pub max_globals: usize,
    /// Maximum methods beyond `main`.
    pub max_methods: usize,
    /// Maximum instructions per method body.
    pub max_body: usize,
}

impl Default for ProgramShape {
    fn default() -> Self {
        ProgramShape {
            max_classes: 6,
            max_fields: 3,
            max_globals: 2,
            max_methods: 6,
            max_body: 10,
        }
    }
}

/// A recipe for one instruction, resolved against the declared entities.
#[derive(Debug, Clone)]
enum InstrSeed {
    Alloc {
        var: usize,
        class: usize,
    },
    Move {
        to: usize,
        from: usize,
    },
    Cast {
        to: usize,
        from: usize,
        class: usize,
    },
    Load {
        to: usize,
        base: usize,
        field: usize,
    },
    Store {
        base: usize,
        field: usize,
        from: usize,
    },
    VCall {
        result: usize,
        base: usize,
        sig: usize,
        arg: usize,
    },
    LoadGlobal {
        to: usize,
        global: usize,
    },
    StoreGlobal {
        global: usize,
        from: usize,
    },
    SCall {
        result: usize,
        target: usize,
        arg: usize,
    },
    Return {
        var: usize,
    },
}

fn draw_instr(rng: &mut SplitMix64, max_vars: usize) -> InstrSeed {
    let v = |rng: &mut SplitMix64| rng.below(max_vars);
    let raw = |rng: &mut SplitMix64| rng.next_u64() as usize;
    match rng.below(10) {
        0 => InstrSeed::Alloc {
            var: v(rng),
            class: raw(rng),
        },
        1 => InstrSeed::Move {
            to: v(rng),
            from: v(rng),
        },
        2 => InstrSeed::Cast {
            to: v(rng),
            from: v(rng),
            class: raw(rng),
        },
        3 => InstrSeed::Load {
            to: v(rng),
            base: v(rng),
            field: raw(rng),
        },
        4 => InstrSeed::Store {
            base: v(rng),
            field: raw(rng),
            from: v(rng),
        },
        5 => InstrSeed::VCall {
            result: v(rng),
            base: v(rng),
            sig: raw(rng),
            arg: v(rng),
        },
        6 => InstrSeed::SCall {
            result: v(rng),
            target: raw(rng),
            arg: v(rng),
        },
        7 => InstrSeed::LoadGlobal {
            to: v(rng),
            global: raw(rng),
        },
        8 => InstrSeed::StoreGlobal {
            global: raw(rng),
            from: v(rng),
        },
        _ => InstrSeed::Return { var: v(rng) },
    }
}

fn draw_instrs(rng: &mut SplitMix64, max_vars: usize, lo: usize, hi: usize) -> Vec<InstrSeed> {
    let n = rng.range(lo, hi + 1);
    (0..n).map(|_| draw_instr(rng, max_vars)).collect()
}

/// Generates a random well-formed [`Program`], a pure function of
/// `(shape, seed)`.
pub fn generate(shape: &ProgramShape, seed: u64) -> Program {
    generate_with_taint(shape, seed, 0).0
}

/// Like [`generate`], but additionally emits `taint_sites` annotated taint
/// flows and returns the matching [`TaintSpec`].
///
/// The program gains a `Taint` class with three static methods — `src`
/// (source), `san` (sanitizer, returns its argument), `snk` (sink on
/// argument 0) — and `main` gains one seeded flow per site: direct
/// source→sink, sanitized, through a static field, through a heap field of
/// a fresh object, or through one of the randomly generated helper methods.
/// Each flow also labels one random generated method as an extra source and
/// one as an extra sink, so taint threads through arbitrary bodies, not
/// just the scripted epilogue. With `taint_sites = 0` the output program is
/// byte-identical to [`generate`]'s and the spec is empty.
///
/// Everything is a pure function of `(shape, seed, taint_sites)`.
pub fn generate_with_taint(
    shape: &ProgramShape,
    seed: u64,
    taint_sites: usize,
) -> (Program, TaintSpec) {
    let mut rng = SplitMix64::new(seed);
    let max_vars = 6usize;
    let n_classes = rng.range(1, shape.max_classes.max(1) + 1);
    let n_fields = rng.range(0, shape.max_fields + 1);
    let n_globals = rng.range(0, shape.max_globals + 1);
    let n_methods = rng.range(1, shape.max_methods.max(1) + 1);

    // Superclass choice per class: index into earlier classes.
    let supers: Vec<usize> = (0..n_classes).map(|_| rng.next_u64() as usize).collect();
    let field_seeds: Vec<usize> = (0..n_fields).map(|_| rng.next_u64() as usize).collect();
    let global_seeds: Vec<usize> = (0..n_globals).map(|_| rng.next_u64() as usize).collect();
    // Per-method: (class, is_static, named sig index, body seeds).
    let method_seeds: Vec<MethodSeed> = (0..n_methods)
        .map(|_| {
            (
                rng.next_u64() as usize,
                rng.ratio(1, 2),
                rng.below(3),
                draw_instrs(&mut rng, max_vars, 0, shape.max_body),
            )
        })
        .collect();
    let main_body = draw_instrs(&mut rng, max_vars, 1, shape.max_body);
    // Taint draws come last so a zero-site run consumes the exact same
    // stream as `generate` always has.
    let taint_seeds: Vec<TaintFlowSeed> = (0..taint_sites)
        .map(|_| TaintFlowSeed {
            kind: rng.below(5),
            a: rng.next_u64() as usize,
            b: rng.next_u64() as usize,
            extra_source: rng.next_u64() as usize,
            extra_sink: rng.next_u64() as usize,
        })
        .collect();

    build_program(
        n_classes,
        &supers,
        &field_seeds,
        &global_seeds,
        &method_seeds,
        &main_body,
        max_vars,
        &taint_seeds,
    )
}

type MethodSeed = (usize, bool, usize, Vec<InstrSeed>);

/// One seeded taint flow appended to `main` (plus two organic labels).
#[derive(Debug, Clone)]
struct TaintFlowSeed {
    /// Flow shape: 0 direct, 1 sanitized, 2 via global, 3 via heap field,
    /// 4 via a generated helper method.
    kind: usize,
    /// Auxiliary index (global / field / helper choice).
    a: usize,
    /// Auxiliary index (box class choice).
    b: usize,
    /// Generated method additionally labeled as a source.
    extra_source: usize,
    /// Generated method additionally labeled as a sink.
    extra_sink: usize,
}

#[allow(clippy::too_many_arguments)]
fn build_program(
    n_classes: usize,
    supers: &[usize],
    field_seeds: &[usize],
    global_seeds: &[usize],
    method_seeds: &[MethodSeed],
    main_body: &[InstrSeed],
    max_vars: usize,
    taint_seeds: &[TaintFlowSeed],
) -> (Program, TaintSpec) {
    let mut b = ProgramBuilder::new();
    let root = b.class("Object", None);
    let mut classes = vec![root];
    for (i, &sup) in supers.iter().enumerate().take(n_classes) {
        let parent = classes[sup % classes.len()];
        classes.push(b.class(&format!("C{i}"), Some(parent)));
    }
    let mut fields = Vec::new();
    for (i, &c) in field_seeds.iter().enumerate() {
        fields.push(b.field(classes[c % classes.len()], &format!("f{i}")));
    }
    let mut globals = Vec::new();
    for (i, &c) in global_seeds.iter().enumerate() {
        globals.push(b.global(classes[c % classes.len()], &format!("g{i}")));
    }

    // Declare methods first (headers), then bodies, so static calls can
    // target any method.
    let sig_names = ["ma", "mb", "mc"];
    let mut methods = Vec::new();
    for (i, &(class, is_static, sig, _)) in method_seeds.iter().enumerate() {
        let class = classes[class % classes.len()];
        // Same-name same-arity methods in one class are invalid; suffix by
        // index when needed. Use the shared names for overriding potential.
        let name = format!("{}{}", sig_names[sig % sig_names.len()], i % 2);
        let already = b.peek().classes[class]
            .methods
            .iter()
            .any(|&m| b.peek().methods[m].name == name && b.peek().methods[m].params.len() == 1);
        let name = if already { format!("{name}_{i}") } else { name };
        methods.push(b.method(class, &name, &["p"], is_static));
    }
    let main_cls = classes[0];
    let main = b.method(main_cls, "main", &[], true);
    b.entry(main);

    let emit_body = |b: &mut ProgramBuilder, mid: crate::ids::MethodId, seeds: &[InstrSeed]| {
        // Local variable pool: params + this (when present) + fresh locals.
        let mut vars = Vec::new();
        if let Some(t) = b.peek().methods[mid].this {
            vars.push(t);
        }
        vars.extend(b.peek().methods[mid].params.clone());
        while vars.len() < max_vars {
            let v = b.var(mid, &format!("v{}", vars.len()));
            vars.push(v);
        }
        for seed in seeds {
            match *seed {
                InstrSeed::Alloc { var, class } => {
                    b.alloc(mid, vars[var % vars.len()], classes[class % classes.len()]);
                }
                InstrSeed::Move { to, from } => {
                    b.mov(mid, vars[to % vars.len()], vars[from % vars.len()]);
                }
                InstrSeed::Cast { to, from, class } => {
                    b.cast(
                        mid,
                        vars[to % vars.len()],
                        vars[from % vars.len()],
                        classes[class % classes.len()],
                    );
                }
                InstrSeed::Load { to, base, field } => {
                    if !fields.is_empty() {
                        b.load(
                            mid,
                            vars[to % vars.len()],
                            vars[base % vars.len()],
                            fields[field % fields.len()],
                        );
                    }
                }
                InstrSeed::Store { base, field, from } => {
                    if !fields.is_empty() {
                        b.store(
                            mid,
                            vars[base % vars.len()],
                            fields[field % fields.len()],
                            vars[from % vars.len()],
                        );
                    }
                }
                InstrSeed::VCall {
                    result,
                    base,
                    sig,
                    arg,
                } => {
                    b.vcall(
                        mid,
                        Some(vars[result % vars.len()]),
                        vars[base % vars.len()],
                        sig_names[sig % sig_names.len()],
                        &[vars[arg % vars.len()]],
                    );
                }
                InstrSeed::SCall {
                    result,
                    target,
                    arg,
                } => {
                    if !methods.is_empty() {
                        let target = methods[target % methods.len()];
                        if b.peek().methods[target].is_static {
                            b.scall(
                                mid,
                                Some(vars[result % vars.len()]),
                                target,
                                &[vars[arg % vars.len()]],
                            );
                        } else {
                            b.specialcall(
                                mid,
                                Some(vars[result % vars.len()]),
                                vars[base_of(seed) % vars.len()],
                                target,
                                &[vars[arg % vars.len()]],
                            );
                        }
                    }
                }
                InstrSeed::LoadGlobal { to, global } => {
                    if !globals.is_empty() {
                        b.load_global(mid, vars[to % vars.len()], globals[global % globals.len()]);
                    }
                }
                InstrSeed::StoreGlobal { global, from } => {
                    if !globals.is_empty() {
                        b.store_global(
                            mid,
                            globals[global % globals.len()],
                            vars[from % vars.len()],
                        );
                    }
                }
                InstrSeed::Return { var } => {
                    b.ret(mid, vars[var % vars.len()]);
                }
            }
        }
    };

    for (i, (_, _, _, seeds)) in method_seeds.iter().enumerate() {
        emit_body(&mut b, methods[i], seeds);
    }
    emit_body(&mut b, main, main_body);

    let mut spec = TaintSpec::new();
    if !taint_seeds.is_empty() {
        let taint_cls = b.class("Taint", Some(root));
        let src = b.method(taint_cls, "src", &[], true);
        let sv = b.var(src, "d");
        b.alloc(src, sv, taint_cls);
        b.ret(src, sv);
        let san = b.method(taint_cls, "san", &["x"], true);
        let sanp = b.param(san, 0);
        b.ret(san, sanp);
        let snk = b.method(taint_cls, "snk", &["x"], true);
        let _ = snk;
        spec.add_source(src);
        spec.add_sanitizer(san);
        spec.add_sink(snk, Some(0));

        for (k, seed) in taint_seeds.iter().enumerate() {
            let t = b.var(main, &format!("taint{k}"));
            b.scall(main, Some(t), src, &[]);
            match seed.kind {
                1 => {
                    let c = b.var(main, &format!("clean{k}"));
                    b.scall(main, Some(c), san, &[t]);
                    b.scall(main, None, snk, &[c]);
                }
                2 if !globals.is_empty() => {
                    let g = globals[seed.a % globals.len()];
                    let u = b.var(main, &format!("gload{k}"));
                    b.store_global(main, g, t);
                    b.load_global(main, u, g);
                    b.scall(main, None, snk, &[u]);
                }
                3 if !fields.is_empty() => {
                    let bx = b.var(main, &format!("box{k}"));
                    let u = b.var(main, &format!("fload{k}"));
                    let fld = fields[seed.a % fields.len()];
                    b.alloc(main, bx, classes[seed.b % classes.len()]);
                    b.store(main, bx, fld, t);
                    b.load(main, u, bx, fld);
                    b.scall(main, None, snk, &[u]);
                }
                4 if !methods.is_empty() => {
                    let helper = methods[seed.a % methods.len()];
                    let r = b.var(main, &format!("helped{k}"));
                    if b.peek().methods[helper].is_static {
                        b.scall(main, Some(r), helper, &[t]);
                    } else {
                        b.specialcall(main, Some(r), t, helper, &[t]);
                    }
                    b.scall(main, None, snk, &[r]);
                }
                _ => {
                    b.scall(main, None, snk, &[t]);
                }
            }
            if !methods.is_empty() {
                spec.add_source(methods[seed.extra_source % methods.len()]);
                spec.add_sink(methods[seed.extra_sink % methods.len()], None);
            }
        }
    }

    (b.finish(), spec)
}

/// A deterministic receiver choice for special calls derived from a seed.
fn base_of(seed: &InstrSeed) -> usize {
    match seed {
        InstrSeed::SCall { result, .. } => *result,
        _ => 0,
    }
}

// Virtual calls are generated with exactly one argument and methods are
// declared with one parameter, so the shared dispatch names always intern
// to `name/1` and overriding happens across the hierarchy.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..64 {
            let p = generate(&ProgramShape::default(), seed);
            assert_eq!(validate(&p), Ok(()), "seed {seed}");
            assert!(!p.entry_points.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&ProgramShape::default(), 11);
        let b = generate(&ProgramShape::default(), 11);
        assert_eq!(a.instruction_count(), b.instruction_count());
        assert_eq!(
            crate::text::print_program(&a),
            crate::text::print_program(&b)
        );
    }

    #[test]
    fn zero_taint_sites_matches_plain_generate() {
        for seed in 0..16 {
            let plain = generate(&ProgramShape::default(), seed);
            let (tainted, spec) = generate_with_taint(&ProgramShape::default(), seed, 0);
            assert_eq!(
                crate::text::print_program(&plain),
                crate::text::print_program(&tainted),
                "seed {seed}"
            );
            assert!(spec.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn taint_programs_are_well_formed_and_deterministic() {
        for seed in 0..32 {
            let (p, spec) = generate_with_taint(&ProgramShape::default(), seed, 3);
            assert_eq!(validate(&p), Ok(()), "seed {seed}");
            assert!(!spec.sources().is_empty(), "seed {seed}");
            assert!(!spec.sinks().is_empty(), "seed {seed}");
            assert!(!spec.sanitizers().is_empty(), "seed {seed}");
            let (q, spec2) = generate_with_taint(&ProgramShape::default(), seed, 3);
            assert_eq!(
                crate::text::print_program(&p),
                crate::text::print_program(&q),
                "seed {seed}"
            );
            assert_eq!(spec.render(&p), spec2.render(&q), "seed {seed}");
        }
    }
}
