//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace must build and test without network access, so it cannot
//! depend on the `rand` crate. This module provides the only randomness the
//! workspace needs: a seeded, deterministic stream of integers for workload
//! generation ([`rudoop_workloads`](../../rudoop_workloads/index.html)) and
//! for the random-program property tests ([`crate::arbitrary`]).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) — the
//! same algorithm `rand` uses to seed its own generators. It passes BigCrush
//! at 64-bit output size, is trivially seedable from a single `u64`, and
//! every value is a pure function of the seed and the draw index, which
//! keeps workloads byte-for-byte reproducible across platforms.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use rudoop_ir::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "SplitMix64::below called with bound 0");
        // Multiply-shift reduction (Lemire); the bias for bounds this far
        // below 2^64 is immeasurably small and irrelevant for test inputs.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(
            lo < hi,
            "SplitMix64::range called with empty range {lo}..{hi}"
        );
        lo + self.below(hi - lo)
    }

    /// A coin flip that is `true` with probability `num / den`.
    pub fn ratio(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_answer_vector() {
        // First output for seed 0 from the published SplitMix64 reference
        // implementation; guards against silent constant typos.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn below_stays_in_bounds_and_hits_everything() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_both_ends() {
        let mut r = SplitMix64::new(3);
        for _ in 0..200 {
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}
