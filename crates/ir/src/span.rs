//! Source locations for diagnostics.
//!
//! The textual frontend ([`crate::text`]) records, for every parsed
//! instruction and method header, the 1-based line and column of its first
//! token. Programs built programmatically (builder, generators, workloads)
//! carry [`Span::NONE`] everywhere; diagnostics renderers fall back to
//! instruction indices in that case.

use std::fmt;

/// A 1-based line/column source position. `(0, 0)` means "unknown".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line; 0 when unknown.
    pub line: u32,
    /// 1-based column of the first token; 0 when unknown.
    pub col: u32,
}

impl Span {
    /// The unknown span.
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// A known position.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// Whether this span carries a real source position.
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unknown_and_orders_first() {
        assert!(!Span::NONE.is_known());
        assert!(Span::new(1, 1).is_known());
        assert!(Span::NONE < Span::new(1, 1));
        assert_eq!(Span::NONE.to_string(), "?:?");
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }
}
