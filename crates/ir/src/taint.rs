//! Taint specifications: which methods are sources, sinks, and sanitizers.
//!
//! A [`TaintSpec`] is the input contract of the taint client in
//! `rudoop-core`: *sources* are methods whose return value is attacker
//! controlled, *sinks* are methods whose (selected) arguments must never
//! receive tainted values, and *sanitizers* are methods whose return value
//! is considered clean regardless of what flowed in. The spec lives in this
//! crate because it names program elements ([`MethodId`]s) and is consumed
//! by every layer above: the optimized taint analysis, the Datalog
//! reference model, the workload generators and the lint suite.
//!
//! # Textual format
//!
//! One directive per line; `#` starts a comment:
//!
//! ```text
//! # qualified method references, optionally arity-disambiguated
//! source    TaintKit.source
//! sanitizer TaintKit.sanitize/1
//! sink      TaintKit.sink 0      # only argument 0 is checked
//! sink      Logger.log           # no index: every argument is checked
//! ```
//!
//! A method reference `Class.method` without `/arity` matches every method
//! of that class with that name; with `/arity` it matches exactly one
//! declared arity. Parsing resolves references against a [`Program`] and
//! fails on references that match nothing, so a stale spec surfaces
//! immediately instead of silently checking nothing.

use std::fmt;

use crate::ids::MethodId;
use crate::program::Program;

/// A resolved taint specification over one program.
///
/// All member lists are sorted and deduplicated, so equality and rendering
/// are deterministic regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSpec {
    sources: Vec<MethodId>,
    sanitizers: Vec<MethodId>,
    sinks: Vec<(MethodId, Option<u32>)>,
}

impl TaintSpec {
    /// An empty specification (no sources, sinks, or sanitizers).
    pub fn new() -> Self {
        TaintSpec::default()
    }

    /// Marks `method` as a source: its return value is tainted at every
    /// call site.
    pub fn add_source(&mut self, method: MethodId) {
        if let Err(at) = self.sources.binary_search(&method) {
            self.sources.insert(at, method);
        }
    }

    /// Marks `method` as a sanitizer: its return value is clean even when
    /// tainted values flow in.
    pub fn add_sanitizer(&mut self, method: MethodId) {
        if let Err(at) = self.sanitizers.binary_search(&method) {
            self.sanitizers.insert(at, method);
        }
    }

    /// Marks `method` as a sink. With `arg = Some(i)` only argument `i` is
    /// checked; with `None` every argument is.
    pub fn add_sink(&mut self, method: MethodId, arg: Option<u32>) {
        let entry = (method, arg);
        if let Err(at) = self.sinks.binary_search(&entry) {
            self.sinks.insert(at, entry);
        }
    }

    /// Whether the spec constrains nothing (no leak can ever be reported).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty() && self.sinks.is_empty() && self.sanitizers.is_empty()
    }

    /// Whether `method` is a source.
    pub fn is_source(&self, method: MethodId) -> bool {
        self.sources.binary_search(&method).is_ok()
    }

    /// Whether `method` is a sanitizer.
    pub fn is_sanitizer(&self, method: MethodId) -> bool {
        self.sanitizers.binary_search(&method).is_ok()
    }

    /// Whether `method` appears in any sink entry.
    pub fn is_sink(&self, method: MethodId) -> bool {
        self.sinks.iter().any(|&(m, _)| m == method)
    }

    /// The checked argument indices of sink `method`, given its declared
    /// arity — sorted, deduplicated, and clamped to `0..arity`. Empty when
    /// `method` is not a sink.
    pub fn sink_args(&self, method: MethodId, arity: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for &(m, arg) in &self.sinks {
            if m != method {
                continue;
            }
            match arg {
                Some(i) if (i as usize) < arity => out.push(i),
                Some(_) => {}
                None => out.extend(0..arity as u32),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The source methods, sorted.
    pub fn sources(&self) -> &[MethodId] {
        &self.sources
    }

    /// The sanitizer methods, sorted.
    pub fn sanitizers(&self) -> &[MethodId] {
        &self.sanitizers
    }

    /// The sink entries `(method, checked argument)`, sorted.
    pub fn sinks(&self) -> &[(MethodId, Option<u32>)] {
        &self.sinks
    }

    /// Parses the textual spec format against `program` (see the module
    /// docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`TaintSpecError`] on unknown directives, malformed method
    /// references or argument indices, and references matching no method.
    pub fn parse(text: &str, program: &Program) -> Result<TaintSpec, TaintSpecError> {
        let mut spec = TaintSpec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let directive = parts.next().expect("non-empty line");
            let reference = parts
                .next()
                .ok_or(TaintSpecError::MissingReference { line })?;
            let methods = resolve(program, reference)
                .map_err(|reason| TaintSpecError::BadReference { line, reason })?;
            if methods.is_empty() {
                return Err(TaintSpecError::UnknownMethod {
                    line,
                    reference: reference.to_owned(),
                });
            }
            match directive {
                "source" => {
                    reject_extra(parts.next(), line)?;
                    methods.into_iter().for_each(|m| spec.add_source(m));
                }
                "sanitizer" => {
                    reject_extra(parts.next(), line)?;
                    methods.into_iter().for_each(|m| spec.add_sanitizer(m));
                }
                "sink" => {
                    let arg =
                        match parts.next() {
                            None => None,
                            Some(word) => Some(word.parse::<u32>().map_err(|_| {
                                TaintSpecError::BadArgIndex {
                                    line,
                                    found: word.to_owned(),
                                }
                            })?),
                        };
                    reject_extra(parts.next(), line)?;
                    methods.into_iter().for_each(|m| spec.add_sink(m, arg));
                }
                other => {
                    return Err(TaintSpecError::UnknownDirective {
                        line,
                        directive: other.to_owned(),
                    })
                }
            }
        }
        Ok(spec)
    }

    /// Renders the spec back into the textual format (round-trips through
    /// [`TaintSpec::parse`] for specs whose references are unambiguous).
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for &m in &self.sources {
            out.push_str(&format!("source {}\n", reference_of(program, m)));
        }
        for &m in &self.sanitizers {
            out.push_str(&format!("sanitizer {}\n", reference_of(program, m)));
        }
        for &(m, arg) in &self.sinks {
            match arg {
                Some(i) => out.push_str(&format!("sink {} {i}\n", reference_of(program, m))),
                None => out.push_str(&format!("sink {}\n", reference_of(program, m))),
            }
        }
        out
    }
}

fn reject_extra(extra: Option<&str>, line: usize) -> Result<(), TaintSpecError> {
    match extra {
        None => Ok(()),
        Some(word) => Err(TaintSpecError::TrailingInput {
            line,
            found: word.to_owned(),
        }),
    }
}

/// The arity-disambiguated reference of a method, e.g. `List.add/1`.
fn reference_of(program: &Program, method: MethodId) -> String {
    let m = &program.methods[method];
    format!(
        "{}.{}/{}",
        program.classes[m.class].name, m.name, program.sigs[m.sig].arity
    )
}

/// Resolves `Class.method` or `Class.method/arity` to all matching methods.
fn resolve(program: &Program, reference: &str) -> Result<Vec<MethodId>, String> {
    let (qualified, arity) = match reference.rsplit_once('/') {
        Some((head, tail)) => {
            let arity: usize = tail
                .parse()
                .map_err(|_| format!("bad arity {tail:?} in {reference:?}"))?;
            (head, Some(arity))
        }
        None => (reference, None),
    };
    let (class, name) = qualified
        .rsplit_once('.')
        .ok_or_else(|| format!("expected Class.method, found {reference:?}"))?;
    if class.is_empty() || name.is_empty() {
        return Err(format!("expected Class.method, found {reference:?}"));
    }
    Ok(program
        .methods
        .iter()
        .filter(|(_, m)| {
            program.classes[m.class].name == class
                && m.name == name
                && arity.is_none_or(|a| program.sigs[m.sig].arity == a)
        })
        .map(|(mid, _)| mid)
        .collect())
}

/// Why a textual taint spec failed to parse or resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintSpecError {
    /// A directive line without a method reference.
    MissingReference {
        /// 1-based line number.
        line: usize,
    },
    /// The first word of a line is not `source`/`sink`/`sanitizer`.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The unrecognized directive.
        directive: String,
    },
    /// A method reference that is not `Class.method[/arity]`.
    BadReference {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A sink argument index that is not a number.
    BadArgIndex {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        found: String,
    },
    /// Unexpected trailing tokens after a directive.
    TrailingInput {
        /// 1-based line number.
        line: usize,
        /// The first unexpected token.
        found: String,
    },
    /// A well-formed reference matching no method of the program.
    UnknownMethod {
        /// 1-based line number.
        line: usize,
        /// The unresolved reference.
        reference: String,
    },
}

impl fmt::Display for TaintSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaintSpecError::MissingReference { line } => {
                write!(f, "line {line}: directive without a method reference")
            }
            TaintSpecError::UnknownDirective { line, directive } => {
                write!(
                    f,
                    "line {line}: unknown directive {directive:?} (expected source, sink, \
                     or sanitizer)"
                )
            }
            TaintSpecError::BadReference { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            TaintSpecError::BadArgIndex { line, found } => {
                write!(f, "line {line}: bad sink argument index {found:?}")
            }
            TaintSpecError::TrailingInput { line, found } => {
                write!(f, "line {line}: unexpected trailing input {found:?}")
            }
            TaintSpecError::UnknownMethod { line, reference } => {
                write!(f, "line {line}: no method matches {reference:?}")
            }
        }
    }
}

impl std::error::Error for TaintSpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn kit_program() -> (Program, MethodId, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let san = b.method(kit, "clean", &["x"], true);
        let sp = b.param(san, 0);
        b.ret(san, sp);
        let snk = b.method(kit, "exec", &["a", "b"], true);
        let main = b.method(obj, "main", &[], true);
        b.entry(main);
        (b.finish(), src, san, snk)
    }

    #[test]
    fn parse_resolves_and_classifies() {
        let (p, src, san, snk) = kit_program();
        let spec = TaintSpec::parse(
            "# demo spec\n\
             source Kit.input\n\
             sanitizer Kit.clean/1\n\
             sink Kit.exec 1\n",
            &p,
        )
        .unwrap();
        assert!(spec.is_source(src));
        assert!(spec.is_sanitizer(san));
        assert!(spec.is_sink(snk));
        assert_eq!(spec.sink_args(snk, 2), vec![1]);
        assert_eq!(spec.sink_args(src, 2), Vec::<u32>::new());
    }

    #[test]
    fn sink_without_index_checks_every_argument() {
        let (p, _, _, snk) = kit_program();
        let spec = TaintSpec::parse("source Kit.input\nsink Kit.exec\n", &p).unwrap();
        assert_eq!(spec.sink_args(snk, 2), vec![0, 1]);
    }

    #[test]
    fn unknown_method_is_an_error() {
        let (p, ..) = kit_program();
        let err = TaintSpec::parse("source Kit.nope\n", &p).unwrap_err();
        assert!(matches!(err, TaintSpecError::UnknownMethod { line: 1, .. }));
    }

    #[test]
    fn malformed_lines_are_errors() {
        let (p, ..) = kit_program();
        assert!(matches!(
            TaintSpec::parse("source\n", &p),
            Err(TaintSpecError::MissingReference { line: 1 })
        ));
        assert!(matches!(
            TaintSpec::parse("taint Kit.input\n", &p),
            Err(TaintSpecError::UnknownDirective { line: 1, .. })
        ));
        assert!(matches!(
            TaintSpec::parse("sink Kit.exec x\n", &p),
            Err(TaintSpecError::BadArgIndex { line: 1, .. })
        ));
        assert!(matches!(
            TaintSpec::parse("source KitInput\n", &p),
            Err(TaintSpecError::BadReference { line: 1, .. })
        ));
    }

    #[test]
    fn render_round_trips() {
        let (p, src, san, snk) = kit_program();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sanitizer(san);
        spec.add_sink(snk, Some(0));
        let text = spec.render(&p);
        let reparsed = TaintSpec::parse(&text, &p).unwrap();
        assert_eq!(spec, reparsed);
    }
}
