//! The program representation: a simplified Jimple-like intermediate
//! language, directly mirroring the input relations of the paper's Figure 2.
//!
//! A [`Program`] is a set of interned tables (classes, methods, variables,
//! fields, allocation sites, invocation sites, signatures) plus instruction
//! lists inside methods. The instruction set is exactly the paper's:
//! `new` ([`Instruction::Alloc`]), `move` ([`Instruction::Move`]), heap
//! `load`/`store`, and `virtual method call` ([`InvokeKind::Virtual`]) —
//! extended with the static and special (constructor-style) calls and the
//! `cast` instruction that Doop's Jimple input also has and that the paper's
//! evaluation clients (cast-may-fail) require.

use crate::ids::{AllocId, ClassId, FieldId, GlobalId, IdxVec, InvokeId, MethodId, SigId, VarId};
use crate::span::Span;

/// A class type (element of domain `T`). Single inheritance, as in Jimple's
/// class hierarchy backbone; `superclass == None` only for the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    /// Fully qualified name, unique within the program.
    pub name: String,
    /// Direct superclass; `None` exactly for the root class.
    pub superclass: Option<ClassId>,
    /// Methods declared directly in this class (not inherited).
    pub methods: Vec<MethodId>,
    /// Whether the class can be instantiated (abstract classes cannot).
    pub is_abstract: bool,
}

/// A method signature: dispatch key shared by overriding methods
/// (element of domain `S`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Method name.
    pub name: String,
    /// Number of declared parameters, excluding `this`.
    pub arity: usize,
}

/// A method definition (element of domain `M`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Name, for display; dispatch uses `sig`.
    pub name: String,
    /// The signature this method implements (the LOOKUP key).
    pub sig: SigId,
    /// Declaring class.
    pub class: ClassId,
    /// Receiver variable; `None` for static methods (THISVAR relation).
    pub this: Option<VarId>,
    /// Formal parameters in order (FORMALARG relation).
    pub params: Vec<VarId>,
    /// Formal return variable (FORMALRETURN relation); `None` if the method
    /// never returns a reference value.
    pub ret: Option<VarId>,
    /// Instruction list (flow-insensitive: order is irrelevant to the
    /// analysis, kept for readability of dumps).
    pub body: Vec<Instruction>,
    /// True for static methods (no receiver, resolved at the call site).
    pub is_static: bool,
    /// Source position of the method header ([`Span::NONE`] when the method
    /// was built programmatically rather than parsed).
    pub decl_span: Span,
    /// Source position of each instruction, parallel to `body`. The builder
    /// keeps the two in lockstep; use [`Method::span_of`] to read safely.
    pub body_spans: Vec<Span>,
}

impl Method {
    /// Source position of the `index`-th body instruction, or
    /// [`Span::NONE`] when unrecorded.
    pub fn span_of(&self, index: usize) -> Span {
        self.body_spans.get(index).copied().unwrap_or(Span::NONE)
    }
}

/// A local variable (element of domain `V`). Unique program-wide; the
/// declaring method is explicit, matching the paper's `inMeth` convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Var {
    /// Name, unique within its method.
    pub name: String,
    /// The method this variable belongs to.
    pub method: MethodId,
}

/// An instance field (element of domain `F`). Fields are global ids; loads
/// and stores reference them directly, making the analysis field-sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declaring class (informational; field access is by id).
    pub class: ClassId,
}

/// A static (global) field. Globals hold references without any enclosing
/// object, so the analysis treats them as single context-insensitive slots
/// — exactly how Doop models Java static fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Field name.
    pub name: String,
    /// Declaring class (informational).
    pub class: ClassId,
}

/// An allocation site — the heap abstraction `H` of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// The dynamic class of objects allocated here (HEAPTYPE relation).
    pub class: ClassId,
    /// Enclosing method.
    pub method: MethodId,
}

/// How a call site selects its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeKind {
    /// Virtual dispatch on the dynamic type of `base` (the paper's VCALL).
    Virtual {
        /// Receiver variable.
        base: VarId,
        /// Signature looked up in the receiver's dynamic class.
        sig: SigId,
    },
    /// Direct call to a statically known instance method (constructors,
    /// `super` calls); still binds `this` from `base` but skips LOOKUP.
    Special {
        /// Receiver variable.
        base: VarId,
        /// Statically resolved target.
        target: MethodId,
    },
    /// Static method call: no receiver, statically resolved.
    Static {
        /// Statically resolved target.
        target: MethodId,
    },
}

/// A method invocation site (element of domain `I`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invoke {
    /// Dispatch mode and target information.
    pub kind: InvokeKind,
    /// Actual arguments in order (ACTUALARG relation).
    pub args: Vec<VarId>,
    /// Variable receiving the return value (ACTUALRETURN relation).
    pub result: Option<VarId>,
    /// Enclosing method.
    pub method: MethodId,
}

/// One instruction of the simplified intermediate language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `var = new C` — allocation; the class is in the alloc-site table.
    Alloc {
        /// Variable assigned.
        var: VarId,
        /// The allocation site (heap abstraction).
        alloc: AllocId,
    },
    /// `to = from` — local copy.
    Move {
        /// Destination.
        to: VarId,
        /// Source.
        from: VarId,
    },
    /// `to = (T) from` — checked cast. Points-to-wise a move; recorded so
    /// the cast-may-fail precision client can find it.
    Cast {
        /// Destination.
        to: VarId,
        /// Source.
        from: VarId,
        /// Target type of the cast.
        class: ClassId,
    },
    /// `to = base.fld` — heap load.
    Load {
        /// Destination.
        to: VarId,
        /// Base object variable.
        base: VarId,
        /// Field read.
        field: FieldId,
    },
    /// `base.fld = from` — heap store.
    Store {
        /// Base object variable.
        base: VarId,
        /// Field written.
        field: FieldId,
        /// Source value.
        from: VarId,
    },
    /// `to = global` — read a static field.
    LoadGlobal {
        /// Destination.
        to: VarId,
        /// The static field read.
        global: GlobalId,
    },
    /// `global = from` — write a static field.
    StoreGlobal {
        /// The static field written.
        global: GlobalId,
        /// Source value.
        from: VarId,
    },
    /// A call; all detail lives in the invoke-site table.
    Call {
        /// The invocation site.
        invoke: InvokeId,
    },
    /// `spawn var` — start a new thread whose body is `var.run()`. The
    /// dispatch detail lives in the invoke-site table exactly as for
    /// [`Instruction::Call`] (a virtual call of the arity-0 `run`
    /// signature with no arguments and no result), so the points-to solver
    /// resolves thread entry points through the ordinary context-sensitive
    /// call-graph machinery; the race client reinterprets these call-graph
    /// edges as thread-creation edges.
    Spawn {
        /// The invocation site of the implied `var.run()` call.
        invoke: InvokeId,
    },
    /// `join var` — wait for every thread spawned on `var` to finish.
    /// Points-to-wise a no-op; the MHP analysis uses it to order later
    /// instructions of the joining body after the joined thread.
    Join {
        /// The variable the joined thread was spawned on.
        var: VarId,
    },
    /// `monitorenter var` — acquire the lock of the object `var` points to.
    /// Points-to-wise a no-op; opens a structural lock region for the
    /// lock-set analysis. The validator requires regions to nest properly
    /// within each body.
    MonitorEnter {
        /// The lock variable.
        var: VarId,
    },
    /// `monitorexit var` — release the lock of the object `var` points to,
    /// closing the innermost open region opened on the same variable.
    MonitorExit {
        /// The lock variable.
        var: VarId,
    },
    /// `return var` — flows into the method's formal return variable.
    Return {
        /// Returned value.
        var: VarId,
    },
}

/// A stable identifier for a cast instruction: its method plus the position
/// of the `Cast` within the method body. Used by the cast-may-fail client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CastSite {
    /// Enclosing method.
    pub method: MethodId,
    /// Index into the method body.
    pub index: usize,
}

/// A whole program: the input of every analysis in this workspace.
///
/// Construct one with [`crate::ProgramBuilder`] or parse the textual format
/// with [`crate::parse_program`]. All tables are public passive data; the
/// builder and parser guarantee the well-formedness invariants checked by
/// [`validate`](crate::validate::validate).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Class table (domain `T`).
    pub classes: IdxVec<ClassId, Class>,
    /// Method table (domain `M`).
    pub methods: IdxVec<MethodId, Method>,
    /// Variable table (domain `V`).
    pub vars: IdxVec<VarId, Var>,
    /// Field table (domain `F`).
    pub fields: IdxVec<FieldId, Field>,
    /// Allocation-site table (domain `H`).
    pub allocs: IdxVec<AllocId, AllocSite>,
    /// Invocation-site table (domain `I`).
    pub invokes: IdxVec<InvokeId, Invoke>,
    /// Signature table (domain `S`).
    pub sigs: IdxVec<SigId, Signature>,
    /// Static-field table.
    pub globals: IdxVec<GlobalId, Global>,
    /// Initially reachable methods (the REACHABLE seed: `main` etc.).
    pub entry_points: Vec<MethodId>,
}

impl Program {
    /// Creates an empty program. Use [`crate::ProgramBuilder`] for anything
    /// non-trivial.
    pub fn new() -> Self {
        Program::default()
    }

    /// Total number of instructions across all method bodies — the usual
    /// "program size" measure in the evaluation tables.
    pub fn instruction_count(&self) -> usize {
        self.methods.values().map(|m| m.body.len()).sum()
    }

    /// Iterates over all cast sites in the program.
    pub fn cast_sites(&self) -> impl Iterator<Item = (CastSite, VarId, ClassId)> + '_ {
        self.methods.iter().flat_map(|(mid, m)| {
            m.body
                .iter()
                .enumerate()
                .filter_map(move |(i, instr)| match *instr {
                    Instruction::Cast { from, class, .. } => Some((
                        CastSite {
                            method: mid,
                            index: i,
                        },
                        from,
                        class,
                    )),
                    _ => None,
                })
        })
    }

    /// Returns the virtual-call receiver and signature of `invoke`, if it is
    /// a virtual call.
    pub fn virtual_call(&self, invoke: InvokeId) -> Option<(VarId, SigId)> {
        match self.invokes[invoke].kind {
            InvokeKind::Virtual { base, sig } => Some((base, sig)),
            _ => None,
        }
    }

    /// The body position of an invocation site: the enclosing method and
    /// the index of its `Call` (or `Spawn`) instruction. Used by
    /// diagnostics to anchor findings about call sites (every invoke built
    /// by the builder or parser has exactly one carrying instruction).
    pub fn invoke_site(&self, invoke: InvokeId) -> Option<(MethodId, usize)> {
        let method = self.invokes[invoke].method;
        self.methods[method]
            .body
            .iter()
            .position(|i| {
                matches!(
                    *i,
                    Instruction::Call { invoke: iv } | Instruction::Spawn { invoke: iv }
                        if iv == invoke
                )
            })
            .map(|index| (method, index))
    }

    /// Iterates over all spawn sites: `(method, body index, invoke)` of
    /// every [`Instruction::Spawn`] in the program, in method/body order.
    pub fn spawn_sites(&self) -> impl Iterator<Item = (MethodId, usize, InvokeId)> + '_ {
        self.methods.iter().flat_map(|(mid, m)| {
            m.body
                .iter()
                .enumerate()
                .filter_map(move |(i, instr)| match *instr {
                    Instruction::Spawn { invoke } => Some((mid, i, invoke)),
                    _ => None,
                })
        })
    }

    /// Human-readable qualified name of a method, e.g. `List.add/1`.
    pub fn method_display(&self, method: MethodId) -> String {
        let m = &self.methods[method];
        let sig = &self.sigs[m.sig];
        format!("{}.{}/{}", self.classes[m.class].name, m.name, sig.arity)
    }

    /// Human-readable name of a variable, e.g. `List.add/1::x`.
    pub fn var_display(&self, var: VarId) -> String {
        let v = &self.vars[var];
        format!("{}::{}", self.method_display(v.method), v.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn empty_program_has_no_instructions() {
        let p = Program::new();
        assert_eq!(p.instruction_count(), 0);
        assert_eq!(p.cast_sites().count(), 0);
    }

    #[test]
    fn cast_sites_are_enumerated_with_positions() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let m = b.method(obj, "main", &[], false);
        let x = b.var(m, "x");
        let y = b.var(m, "y");
        b.alloc(m, x, a);
        b.cast(m, y, x, a);
        b.entry(m);
        let p = b.finish();
        let casts: Vec<_> = p.cast_sites().collect();
        assert_eq!(casts.len(), 1);
        let (site, from, class) = casts[0];
        assert_eq!(site.index, 1);
        assert_eq!(from, x);
        assert_eq!(class, a);
    }

    #[test]
    fn method_display_is_qualified() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "main", &[], false);
        let p = b.finish();
        assert_eq!(p.method_display(m), "Object.main/0");
    }
}
