//! A human-readable textual format for [`Program`]s, with a parser and a
//! pretty-printer.
//!
//! This plays the role of the paper's Jimple frontend output: analysis
//! inputs can be written, versioned and inspected as text. The format is
//! line-oriented:
//!
//! ```text
//! class Object
//! class List extends Object
//! field List.head
//!
//! method List.add(x) {
//!   this.head = x
//! }
//!
//! method Object.main() static {
//!   l = new List
//!   o = new Object
//!   l.add(o)
//!   h = l.head
//!   c = cast List h
//!   return c
//! }
//!
//! entry Object.main
//! ```
//!
//! Locals are implicitly declared on first use. Virtual calls are
//! `r = recv.name(args)`, static calls `r = static Class.name(args)`,
//! special (constructor-style) calls `r = special recv Class.name(args)`.
//! Static fields are declared with `global Class.name` and accessed as
//! `x = global name` / `global name = x`. Fields and globals are declared
//! qualified but referenced by simple name; a program with two fields (or
//! globals) of the same simple name cannot be expressed in text form (the
//! parser reports the ambiguity).

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use crate::builder::ProgramBuilder;
use crate::ids::{ClassId, FieldId, GlobalId, MethodId, VarId};
use crate::program::{Instruction, InvokeKind, Program};
use crate::span::Span;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

fn tokenize(line: usize, s: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break;
        } else if c == '/' {
            chars.next();
            if chars.peek() == Some(&'/') {
                break;
            }
            return err(line, "unexpected `/`");
        } else if c.is_alphanumeric() || c == '_' || c == '$' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '$' {
                    ident.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(ident));
        } else if "=.,(){}".contains(c) {
            chars.next();
            toks.push(Tok::Punct(c));
        } else {
            return err(line, format!("unexpected character {c:?}"));
        }
    }
    Ok(toks)
}

/// Cursor over one line's tokens.
struct Cur<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cur<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }
    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }
    fn ident(&mut self) -> Result<&'a str, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => err(self.line, format!("expected identifier, found {other:?}")),
        }
    }
    fn punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if *p == c => Ok(()),
            other => err(self.line, format!("expected {c:?}, found {other:?}")),
        }
    }
    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }
    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            err(
                self.line,
                format!("trailing tokens: {:?}", &self.toks[self.pos..]),
            )
        }
    }
}

/// Parses the textual program format.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, including name-resolution
/// failures (unknown classes, ambiguous fields, duplicate methods).
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    // (1-based line, 1-based column of the first token, tokens).
    let lines: Vec<(usize, u32, Vec<Tok>)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let col = (l.len() - l.trim_start().len() + 1) as u32;
            tokenize(i + 1, l).map(|t| (i + 1, col, t))
        })
        .collect::<Result<_, _>>()?;
    let lines: Vec<_> = lines
        .into_iter()
        .filter(|(_, _, t)| !t.is_empty())
        .collect();

    let mut b = ProgramBuilder::new();
    let mut fields: HashMap<String, Vec<FieldId>> = HashMap::new();
    let mut globals: HashMap<String, Vec<GlobalId>> = HashMap::new();
    // (class, name, params, static) -> MethodId, declared in pass 1.
    let mut methods: HashMap<(String, String, usize), MethodId> = HashMap::new();

    // Pass 1: classes in order (extends must refer to an earlier class, as
    // the printer emits them topologically).
    for (line, _, toks) in &lines {
        let mut cur = Cur {
            toks,
            pos: 0,
            line: *line,
        };
        if cur.eat_ident("class") {
            let name = cur.ident()?.to_owned();
            let superclass = if cur.eat_ident("extends") {
                let sup = cur.ident()?;
                Some(b.class_id(sup).ok_or_else(|| ParseError {
                    line: *line,
                    message: format!("unknown superclass {sup:?} (declare it first)"),
                })?)
            } else {
                None
            };
            let is_abstract = cur.eat_ident("abstract");
            cur.expect_end()?;
            if is_abstract {
                b.abstract_class(&name, superclass);
            } else {
                b.class(&name, superclass);
            }
        }
    }

    // Pass 2: fields and method headers.
    let mut i = 0;
    while i < lines.len() {
        let (line, col, toks) = &lines[i];
        let mut cur = Cur {
            toks,
            pos: 0,
            line: *line,
        };
        if cur.eat_ident("field") {
            let class = cur.ident()?;
            cur.punct('.')?;
            let name = cur.ident()?;
            cur.expect_end()?;
            let cid = class_of(&b, *line, class)?;
            let fid = b.field(cid, name);
            fields.entry(name.to_owned()).or_default().push(fid);
        } else if cur.eat_ident("global") {
            let class = cur.ident()?;
            cur.punct('.')?;
            let name = cur.ident()?;
            cur.expect_end()?;
            let cid = class_of(&b, *line, class)?;
            let gid = b.global(cid, name);
            globals.entry(name.to_owned()).or_default().push(gid);
        } else if cur.eat_ident("method") {
            let class = cur.ident()?.to_owned();
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            cur.punct('(')?;
            let mut params = Vec::new();
            if !cur.eat_punct(')') {
                loop {
                    params.push(cur.ident()?.to_owned());
                    if cur.eat_punct(')') {
                        break;
                    }
                    cur.punct(',')?;
                }
            }
            let is_static = cur.eat_ident("static");
            cur.punct('{')?;
            cur.expect_end()?;
            let cid = class_of(&b, *line, &class)?;
            let key = (class, name.clone(), params.len());
            if methods.contains_key(&key) {
                return err(
                    *line,
                    format!("duplicate method {name}/{} in class", params.len()),
                );
            }
            let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
            b.at(Span::new(*line as u32, *col));
            let mid = b.method(cid, &name, &param_refs, is_static);
            methods.insert(key, mid);
            // Skip body lines until matching '}'.
            i += 1;
            while i < lines.len() {
                let (_, _, t) = &lines[i];
                if t.len() == 1 && t[0] == Tok::Punct('}') {
                    break;
                }
                i += 1;
            }
        }
        i += 1;
    }

    // Pass 3: bodies and entries.
    let mut i = 0;
    while i < lines.len() {
        let (line, _, toks) = &lines[i];
        let mut cur = Cur {
            toks,
            pos: 0,
            line: *line,
        };
        if cur.eat_ident("entry") {
            let class = cur.ident()?.to_owned();
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            cur.expect_end()?;
            let mid = find_entry_method(&methods, *line, &class, &name)?;
            b.entry(mid);
        } else if cur.eat_ident("method") {
            let class = cur.ident()?.to_owned();
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            cur.punct('(')?;
            let mut arity = 0;
            if !cur.eat_punct(')') {
                loop {
                    cur.ident()?;
                    arity += 1;
                    if cur.eat_punct(')') {
                        break;
                    }
                    cur.punct(',')?;
                }
            }
            let mid = methods[&(class, name, arity)];
            let mut locals: HashMap<String, VarId> = HashMap::new();
            {
                let p = b.peek();
                let m = &p.methods[mid];
                if let Some(t) = m.this {
                    locals.insert("this".to_owned(), t);
                }
                for &pv in &m.params {
                    locals.insert(p.vars[pv].name.clone(), pv);
                }
            }
            i += 1;
            while i < lines.len() {
                let (bline, bcol, btoks) = &lines[i];
                if btoks.len() == 1 && btoks[0] == Tok::Punct('}') {
                    break;
                }
                b.at(Span::new(*bline as u32, *bcol));
                parse_stmt(
                    &mut b,
                    &methods,
                    &fields,
                    &globals,
                    mid,
                    &mut locals,
                    *bline,
                    btoks,
                )?;
                i += 1;
            }
        }
        i += 1;
    }

    Ok(b.finish())
}

fn class_of(b: &ProgramBuilder, line: usize, name: &str) -> Result<ClassId, ParseError> {
    b.class_id(name).ok_or_else(|| ParseError {
        line,
        message: format!("unknown class {name:?}"),
    })
}

fn find_entry_method(
    methods: &HashMap<(String, String, usize), MethodId>,
    line: usize,
    class: &str,
    name: &str,
) -> Result<MethodId, ParseError> {
    let matches: Vec<MethodId> = methods
        .iter()
        .filter(|((c, n, _), _)| c == class && n == name)
        .map(|(_, &m)| m)
        .collect();
    match matches.as_slice() {
        [m] => Ok(*m),
        [] => err(line, format!("unknown method {class}.{name}")),
        _ => err(
            line,
            format!("ambiguous method {class}.{name}: give full arity via a wrapper"),
        ),
    }
}

fn local(
    b: &mut ProgramBuilder,
    mid: MethodId,
    locals: &mut HashMap<String, VarId>,
    name: &str,
) -> VarId {
    if let Some(&v) = locals.get(name) {
        return v;
    }
    let v = b.var(mid, name);
    locals.insert(name.to_owned(), v);
    v
}

fn field_by_name(
    fields: &HashMap<String, Vec<FieldId>>,
    line: usize,
    name: &str,
) -> Result<FieldId, ParseError> {
    match fields.get(name).map(Vec::as_slice) {
        Some([f]) => Ok(*f),
        Some(_) => err(
            line,
            format!("ambiguous field name {name:?} in textual form"),
        ),
        None => err(line, format!("unknown field {name:?}")),
    }
}

fn global_by_name(
    globals: &HashMap<String, Vec<GlobalId>>,
    line: usize,
    name: &str,
) -> Result<GlobalId, ParseError> {
    match globals.get(name).map(Vec::as_slice) {
        Some([g]) => Ok(*g),
        Some(_) => err(
            line,
            format!("ambiguous global name {name:?} in textual form"),
        ),
        None => err(line, format!("unknown global {name:?}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_call(
    b: &mut ProgramBuilder,
    methods: &HashMap<(String, String, usize), MethodId>,
    mid: MethodId,
    locals: &mut HashMap<String, VarId>,
    line: usize,
    cur: &mut Cur<'_>,
    result: Option<VarId>,
    first: &str,
) -> Result<(), ParseError> {
    // Forms (after optional `r =`):
    //   static Class.name(args)
    //   special recv Class.name(args)
    //   recv.name(args)
    let parse_args = |b: &mut ProgramBuilder,
                      locals: &mut HashMap<String, VarId>,
                      cur: &mut Cur<'_>|
     -> Result<Vec<VarId>, ParseError> {
        let mut args = Vec::new();
        cur.punct('(')?;
        if !cur.eat_punct(')') {
            loop {
                let a = cur.ident()?;
                args.push(local(b, mid, locals, a));
                if cur.eat_punct(')') {
                    break;
                }
                cur.punct(',')?;
            }
        }
        Ok(args)
    };

    match first {
        "static" => {
            let class = cur.ident()?.to_owned();
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            let args = parse_args(b, locals, cur)?;
            cur.expect_end()?;
            let target = *methods
                .get(&(class.clone(), name.clone(), args.len()))
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("unknown static method {class}.{name}/{}", args.len()),
                })?;
            b.scall(mid, result, target, &args);
        }
        "special" => {
            let recv = cur.ident()?.to_owned();
            let base = local(b, mid, locals, &recv);
            let class = cur.ident()?.to_owned();
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            let args = parse_args(b, locals, cur)?;
            cur.expect_end()?;
            let target = *methods
                .get(&(class.clone(), name.clone(), args.len()))
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("unknown method {class}.{name}/{}", args.len()),
                })?;
            b.specialcall(mid, result, base, target, &args);
        }
        recv => {
            let base = local(b, mid, locals, recv);
            cur.punct('.')?;
            let name = cur.ident()?.to_owned();
            let args = parse_args(b, locals, cur)?;
            cur.expect_end()?;
            b.vcall(mid, result, base, &name, &args);
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn parse_stmt(
    b: &mut ProgramBuilder,
    methods: &HashMap<(String, String, usize), MethodId>,
    fields: &HashMap<String, Vec<FieldId>>,
    globals: &HashMap<String, Vec<GlobalId>>,
    mid: MethodId,
    locals: &mut HashMap<String, VarId>,
    line: usize,
    toks: &[Tok],
) -> Result<(), ParseError> {
    let mut cur = Cur { toks, pos: 0, line };
    let first = cur.ident()?.to_owned();

    if first == "global" {
        // `global g = x` — static-field store.
        let name = cur.ident()?.to_owned();
        cur.punct('=')?;
        let from_name = cur.ident()?;
        let from = local(b, mid, locals, from_name);
        cur.expect_end()?;
        let gid = global_by_name(globals, line, &name)?;
        b.store_global(mid, gid, from);
        return Ok(());
    }

    if first == "return" {
        let v = cur.ident()?;
        let var = local(b, mid, locals, v);
        cur.expect_end()?;
        b.ret(mid, var);
        return Ok(());
    }

    // Concurrency statements: `spawn x`, `join x`, `monitorenter x`,
    // `monitorexit x`. All are keyword + single variable; a following `=`
    // or `.` means the keyword is being used as a plain variable name
    // instead (e.g. `spawn = y`), so require the next token to be the
    // operand identifier ending the line.
    if matches!(
        first.as_str(),
        "spawn" | "join" | "monitorenter" | "monitorexit"
    ) && matches!(cur.peek(), Some(Tok::Ident(_)))
        && cur.toks.len() == 2
    {
        let v = cur.ident()?;
        let var = local(b, mid, locals, v);
        cur.expect_end()?;
        match first.as_str() {
            "spawn" => {
                b.spawn(mid, var);
            }
            "join" => b.join(mid, var),
            "monitorenter" => b.monitor_enter(mid, var),
            _ => b.monitor_exit(mid, var),
        }
        return Ok(());
    }

    // `x.f = y` (store) or `x.f(args)` (call, no result) or `x = ...`.
    if cur.eat_punct('.') {
        let second = cur.ident()?.to_owned();
        if matches!(cur.peek(), Some(Tok::Punct('('))) {
            // receiver.name(args) with no result
            let base = local(b, mid, locals, &first);
            let mut args = Vec::new();
            cur.punct('(')?;
            if !cur.eat_punct(')') {
                loop {
                    let a = cur.ident()?;
                    args.push(local(b, mid, locals, a));
                    if cur.eat_punct(')') {
                        break;
                    }
                    cur.punct(',')?;
                }
            }
            cur.expect_end()?;
            b.vcall(mid, None, base, &second, &args);
        } else {
            cur.punct('=')?;
            let from_name = cur.ident()?;
            let from = local(b, mid, locals, from_name);
            cur.expect_end()?;
            let base = local(b, mid, locals, &first);
            let field = field_by_name(fields, line, &second)?;
            b.store(mid, base, field, from);
        }
        return Ok(());
    }

    if first == "static" || first == "special" {
        // Call without result.
        return parse_call(b, methods, mid, locals, line, &mut cur, None, &first);
    }

    // Assignment forms: `x = ...`
    cur.punct('=')?;
    let to = local(b, mid, locals, &first);
    let head = cur.ident()?.to_owned();
    match head.as_str() {
        "global" => {
            // `x = global g` — static-field load.
            let name = cur.ident()?;
            let gid = global_by_name(globals, line, name)?;
            cur.expect_end()?;
            b.load_global(mid, to, gid);
        }
        "new" => {
            let class = cur.ident()?;
            let cid = class_of(b, line, class)?;
            cur.expect_end()?;
            b.alloc(mid, to, cid);
        }
        "cast" => {
            let class = cur.ident()?;
            let cid = class_of(b, line, class)?;
            let from_name = cur.ident()?;
            let from = local(b, mid, locals, from_name);
            cur.expect_end()?;
            b.cast(mid, to, from, cid);
        }
        "static" | "special" => {
            parse_call(b, methods, mid, locals, line, &mut cur, Some(to), &head)?;
        }
        src => {
            if cur.eat_punct('.') {
                let member = cur.ident()?.to_owned();
                if matches!(cur.peek(), Some(Tok::Punct('('))) {
                    // x = recv.name(args): rebuild via parse_call path.
                    let base = local(b, mid, locals, src);
                    let mut args = Vec::new();
                    cur.punct('(')?;
                    if !cur.eat_punct(')') {
                        loop {
                            let a = cur.ident()?;
                            args.push(local(b, mid, locals, a));
                            if cur.eat_punct(')') {
                                break;
                            }
                            cur.punct(',')?;
                        }
                    }
                    cur.expect_end()?;
                    b.vcall(mid, Some(to), base, &member, &args);
                } else {
                    cur.expect_end()?;
                    let base = local(b, mid, locals, src);
                    let field = field_by_name(fields, line, &member)?;
                    b.load(mid, to, base, field);
                }
            } else {
                cur.expect_end()?;
                let from = local(b, mid, locals, src);
                b.mov(mid, to, from);
            }
        }
    }
    Ok(())
}

/// Pretty-prints `program` in the format accepted by [`parse_program`].
///
/// Classes are emitted in id order, which is a valid declaration order
/// because builders create superclasses before subclasses; if a program
/// violates that, the printed text will not re-parse.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for class in program.classes.values() {
        write!(out, "class {}", class.name).unwrap();
        if let Some(sup) = class.superclass {
            write!(out, " extends {}", program.classes[sup].name).unwrap();
        }
        if class.is_abstract {
            out.push_str(" abstract");
        }
        out.push('\n');
    }
    out.push('\n');
    for field in program.fields.values() {
        writeln!(
            out,
            "field {}.{}",
            program.classes[field.class].name, field.name
        )
        .unwrap();
    }
    for global in program.globals.values() {
        writeln!(
            out,
            "global {}.{}",
            program.classes[global.class].name, global.name
        )
        .unwrap();
    }
    out.push('\n');
    for (mid, method) in program.methods.iter() {
        let params: Vec<&str> = method
            .params
            .iter()
            .map(|&p| program.vars[p].name.as_str())
            .collect();
        write!(
            out,
            "method {}.{}({})",
            program.classes[method.class].name,
            method.name,
            params.join(", ")
        )
        .unwrap();
        if method.is_static {
            out.push_str(" static");
        }
        out.push_str(" {\n");
        for instr in &method.body {
            out.push_str("  ");
            print_instr(&mut out, program, instr);
            out.push('\n');
        }
        out.push_str("}\n\n");
        let _ = mid;
    }
    for &m in &program.entry_points {
        let method = &program.methods[m];
        writeln!(
            out,
            "entry {}.{}",
            program.classes[method.class].name, method.name
        )
        .unwrap();
    }
    out
}

fn print_instr(out: &mut String, p: &Program, instr: &Instruction) {
    let v = |id: VarId| p.vars[id].name.clone();
    match *instr {
        Instruction::Alloc { var, alloc } => write!(
            out,
            "{} = new {}",
            v(var),
            p.classes[p.allocs[alloc].class].name
        )
        .unwrap(),
        Instruction::Move { to, from } => write!(out, "{} = {}", v(to), v(from)).unwrap(),
        Instruction::Cast { to, from, class } => write!(
            out,
            "{} = cast {} {}",
            v(to),
            p.classes[class].name,
            v(from)
        )
        .unwrap(),
        Instruction::Load { to, base, field } => {
            write!(out, "{} = {}.{}", v(to), v(base), p.fields[field].name).unwrap()
        }
        Instruction::Store { base, field, from } => {
            write!(out, "{}.{} = {}", v(base), p.fields[field].name, v(from)).unwrap()
        }
        Instruction::LoadGlobal { to, global } => {
            write!(out, "{} = global {}", v(to), p.globals[global].name).unwrap()
        }
        Instruction::StoreGlobal { global, from } => {
            write!(out, "global {} = {}", p.globals[global].name, v(from)).unwrap()
        }
        Instruction::Return { var } => write!(out, "return {}", v(var)).unwrap(),
        Instruction::Spawn { invoke } => {
            let inv = &p.invokes[invoke];
            let base = match inv.kind {
                InvokeKind::Virtual { base, .. } => base,
                InvokeKind::Special { base, .. } => base,
                InvokeKind::Static { .. } => {
                    // Unprintable (the validator rejects it); emit a best
                    // effort so dumps of invalid programs stay readable.
                    write!(out, "spawn $invalid").unwrap();
                    return;
                }
            };
            write!(out, "spawn {}", v(base)).unwrap()
        }
        Instruction::Join { var } => write!(out, "join {}", v(var)).unwrap(),
        Instruction::MonitorEnter { var } => write!(out, "monitorenter {}", v(var)).unwrap(),
        Instruction::MonitorExit { var } => write!(out, "monitorexit {}", v(var)).unwrap(),
        Instruction::Call { invoke } => {
            let inv = &p.invokes[invoke];
            if let Some(r) = inv.result {
                write!(out, "{} = ", v(r)).unwrap();
            }
            let args: Vec<String> = inv.args.iter().map(|&a| v(a)).collect();
            match inv.kind {
                InvokeKind::Virtual { base, sig } => {
                    write!(out, "{}.{}({})", v(base), p.sigs[sig].name, args.join(", ")).unwrap()
                }
                InvokeKind::Special { base, target } => {
                    let t = &p.methods[target];
                    write!(
                        out,
                        "special {} {}.{}({})",
                        v(base),
                        p.classes[t.class].name,
                        t.name,
                        args.join(", ")
                    )
                    .unwrap()
                }
                InvokeKind::Static { target } => {
                    let t = &p.methods[target];
                    write!(
                        out,
                        "static {}.{}({})",
                        p.classes[t.class].name,
                        t.name,
                        args.join(", ")
                    )
                    .unwrap()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    const SAMPLE: &str = r#"
class Object
class List extends Object
class A extends Object
field List.head

method List.add(x) {
  this.head = x
}

method List.get() {
  r = this.head
  return r
}

method Object.main() static {
  l = new List
  o = new A
  l.add(o)
  h = l.get()
  c = cast A h
}

entry Object.main
"#;

    #[test]
    fn sample_parses_and_validates() {
        let p = parse_program(SAMPLE).unwrap();
        assert_eq!(p.classes.len(), 3);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.methods.len(), 3);
        assert_eq!(p.entry_points.len(), 1);
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.cast_sites().count(), 1);
    }

    #[test]
    fn print_parse_print_is_a_fixpoint() {
        let p = parse_program(SAMPLE).unwrap();
        let printed = print_program(&p);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(print_program(&reparsed), printed);
        assert_eq!(reparsed.instruction_count(), p.instruction_count());
    }

    #[test]
    fn unknown_class_is_an_error() {
        let e = parse_program("method Missing.f() static {\n}\n").unwrap_err();
        assert!(e.message.contains("unknown class"), "{e}");
    }

    #[test]
    fn unknown_field_is_an_error() {
        let src = "class C\nmethod C.f() {\n  x = this.nope\n}\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn ambiguous_field_is_an_error() {
        let src = "class C\nclass D\nfield C.f\nfield D.f\nmethod C.g() {\n  x = this.f\n}\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("ambiguous field"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "# header\nclass C // trailing\n\nmethod C.m() static {\n  // body comment\n}\nentry C.m\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.entry_points.len(), 1);
    }

    #[test]
    fn calls_without_result_parse() {
        let src = "class C\nmethod C.f() {\n}\nmethod C.main() static {\n  x = new C\n  x.f()\n  special x C.f()\n  static C.main()\n}\nentry C.main\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.invokes.len(), 3);
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn globals_parse_and_round_trip() {
        let src = "class C
global C.shared
method C.main() static {
  x = new C
  global shared = x
  y = global shared
}
entry C.main
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(validate(&p), Ok(()));
        let printed = print_program(&p);
        let q = parse_program(&printed).unwrap();
        assert_eq!(q.globals.len(), 1);
        assert_eq!(print_program(&q), printed);
    }

    #[test]
    fn unknown_global_is_an_error() {
        let src = "class C
method C.main() static {
  x = global nope
}
";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("unknown global"), "{e}");
    }

    #[test]
    fn concurrency_statements_parse_and_round_trip() {
        let src = "class C
class Worker extends C
field C.slot

method Worker.run() {
  this.slot = this
}

method C.main() static {
  w = new Worker
  lk = new C
  monitorenter lk
  spawn w
  monitorexit lk
  join w
}

entry C.main
";
        let p = parse_program(src).unwrap();
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.spawn_sites().count(), 1);
        // The spawn's invoke is a plain virtual run/0 call.
        let (_, _, inv) = p.spawn_sites().next().unwrap();
        match p.invokes[inv].kind {
            InvokeKind::Virtual { sig, .. } => {
                assert_eq!(p.sigs[sig].name, "run");
                assert_eq!(p.sigs[sig].arity, 0);
            }
            ref k => panic!("spawn invoke is {k:?}"),
        }
        let printed = print_program(&p);
        assert!(printed.contains("spawn w"), "{printed}");
        assert!(printed.contains("monitorenter lk"), "{printed}");
        let q = parse_program(&printed).unwrap();
        assert_eq!(print_program(&q), printed);
    }

    #[test]
    fn spawn_as_variable_name_still_parses_as_assignment() {
        let src = "class C
method C.main() static {
  x = new C
  spawn = x
  join = spawn
}
entry C.main
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.spawn_sites().count(), 0);
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn forward_superclass_reference_is_an_error() {
        let e = parse_program("class A extends B\nclass B\n").unwrap_err();
        assert!(e.message.contains("unknown superclass"), "{e}");
    }
}
