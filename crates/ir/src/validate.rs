//! Well-formedness checking for [`Program`]s.
//!
//! The analyses assume structural invariants (acyclic hierarchy, variables
//! used in the method that declares them, arities matching). Workload
//! generators and the parser funnel through [`validate`] in tests so a
//! malformed program is rejected with a precise error instead of producing
//! nonsense analysis results.

use std::fmt;

use crate::ids::{ClassId, Idx, MethodId, VarId};
use crate::program::{Instruction, InvokeKind, Program};

/// A well-formedness violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The superclass chain of the class revisits itself.
    CyclicHierarchy(ClassId),
    /// A variable is used by an instruction of a method other than its own.
    ForeignVariable {
        /// The method containing the offending instruction.
        method: MethodId,
        /// The variable that belongs elsewhere.
        var: VarId,
    },
    /// A call site passes a number of arguments different from the callee's
    /// (or signature's) arity.
    ArityMismatch {
        /// The offending invocation's enclosing method.
        method: MethodId,
        /// Expected arity.
        expected: usize,
        /// Passed arguments.
        found: usize,
    },
    /// A `Special` or `Static` call targets a method of the wrong kind.
    WrongCallKind {
        /// The offending invocation's enclosing method.
        method: MethodId,
        /// The miscalled target.
        target: MethodId,
    },
    /// An allocation site instantiates an abstract class.
    AbstractAllocation(ClassId),
    /// An entry-point method is an instance method (entry points are seeded
    /// without a receiver, so they must be static).
    InstanceEntryPoint(MethodId),
    /// A `Return` occurs in a method without a formal return variable.
    ReturnWithoutFormal(MethodId),
    /// An id stored in a table points past the end of its target table.
    DanglingId {
        /// Which table the bad reference was found in.
        table: &'static str,
        /// Raw value of the dangling id.
        raw: u32,
    },
    /// A `Spawn` instruction's invoke site is not the implied `var.run()`
    /// shape: a virtual call of an arity-0 signature named `run`, with no
    /// arguments and no result.
    MalformedSpawn(MethodId),
    /// A method body's `monitorenter`/`monitorexit` instructions do not
    /// bracket properly: an exit without a matching open region on the same
    /// variable, or a region left open at the end of the body.
    UnbalancedMonitor {
        /// The method with the broken bracketing.
        method: MethodId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::CyclicHierarchy(c) => {
                write!(f, "class {c} participates in a superclass cycle")
            }
            ValidateError::ForeignVariable { method, var } => {
                write!(
                    f,
                    "method {method} uses variable {var} belonging to another method"
                )
            }
            ValidateError::ArityMismatch {
                method,
                expected,
                found,
            } => {
                write!(
                    f,
                    "call in {method} passes {found} arguments, callee expects {expected}"
                )
            }
            ValidateError::WrongCallKind { method, target } => {
                write!(
                    f,
                    "call in {method} targets {target} with the wrong call kind"
                )
            }
            ValidateError::AbstractAllocation(c) => {
                write!(f, "allocation of abstract class {c}")
            }
            ValidateError::InstanceEntryPoint(m) => {
                write!(f, "entry point {m} is an instance method")
            }
            ValidateError::ReturnWithoutFormal(m) => {
                write!(
                    f,
                    "method {m} returns a value but has no formal return variable"
                )
            }
            ValidateError::DanglingId { table, raw } => {
                write!(f, "dangling id {raw} in table {table}")
            }
            ValidateError::MalformedSpawn(m) => {
                write!(
                    f,
                    "spawn in {m} must carry a virtual run/0 call with no args and no result"
                )
            }
            ValidateError::UnbalancedMonitor { method } => {
                write!(
                    f,
                    "method {method} has unbalanced monitorenter/monitorexit bracketing"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks every structural invariant the analyses rely on.
///
/// # Errors
///
/// Returns the list of **all** violations found, not just the first (empty ≠
/// returned: a well-formed program yields `Ok(())`). The only exception is
/// id integrity: when any [`ValidateError::DanglingId`] is found, the
/// per-instruction checks are skipped — they index the very tables the
/// dangling ids point past — and the dangling-id errors (plus any hierarchy
/// cycles) are reported alone.
pub fn validate(program: &Program) -> Result<(), Vec<ValidateError>> {
    let mut errors = Vec::new();

    check_hierarchy(program, &mut errors);
    check_ids(program, &mut errors);
    if errors
        .iter()
        .any(|e| matches!(e, ValidateError::DanglingId { .. }))
    {
        // Id integrity failed: the per-instruction checks below index tables.
        return Err(errors);
    }
    check_bodies(program, &mut errors);
    check_invokes(program, &mut errors);
    check_allocs(program, &mut errors);
    check_entries(program, &mut errors);

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_hierarchy(program: &Program, errors: &mut Vec<ValidateError>) {
    for (cid, _) in program.classes.iter() {
        // Floyd-free simple walk with a step bound.
        let mut cur = Some(cid);
        let mut steps = 0usize;
        while let Some(c) = cur {
            if steps > program.classes.len() {
                errors.push(ValidateError::CyclicHierarchy(cid));
                break;
            }
            steps += 1;
            cur = program.classes.get(c).and_then(|cl| cl.superclass);
        }
    }
}

fn check_ids(program: &Program, errors: &mut Vec<ValidateError>) {
    let nc = program.classes.len();
    let nm = program.methods.len();
    let nv = program.vars.len();
    let nf = program.fields.len();
    let ng = program.globals.len();
    let na = program.allocs.len();
    let ni = program.invokes.len();
    let ns = program.sigs.len();
    let mut bad = |table: &'static str, raw: u32, len: usize| {
        if raw as usize >= len {
            errors.push(ValidateError::DanglingId { table, raw });
        }
    };
    for class in program.classes.values() {
        if let Some(sup) = class.superclass {
            bad("classes.superclass", sup.0, nc);
        }
        for &m in &class.methods {
            bad("classes.methods", m.0, nm);
        }
    }
    for method in program.methods.values() {
        bad("methods.sig", method.sig.0, ns);
        bad("methods.class", method.class.0, nc);
        for v in method
            .this
            .iter()
            .chain(method.params.iter())
            .chain(method.ret.iter())
        {
            bad("methods.vars", v.0, nv);
        }
        for instr in &method.body {
            match *instr {
                Instruction::Alloc { var, alloc } => {
                    bad("body.vars", var.0, nv);
                    bad("body.allocs", alloc.0, na);
                }
                Instruction::Move { to, from } => {
                    bad("body.vars", to.0, nv);
                    bad("body.vars", from.0, nv);
                }
                Instruction::Cast { to, from, class } => {
                    bad("body.vars", to.0, nv);
                    bad("body.vars", from.0, nv);
                    bad("body.classes", class.0, nc);
                }
                Instruction::Load { to, base, field } => {
                    bad("body.vars", to.0, nv);
                    bad("body.vars", base.0, nv);
                    bad("body.fields", field.0, nf);
                }
                Instruction::Store { base, field, from } => {
                    bad("body.vars", base.0, nv);
                    bad("body.vars", from.0, nv);
                    bad("body.fields", field.0, nf);
                }
                Instruction::LoadGlobal { to, global } => {
                    bad("body.vars", to.0, nv);
                    bad("body.globals", global.0, ng);
                }
                Instruction::StoreGlobal { global, from } => {
                    bad("body.vars", from.0, nv);
                    bad("body.globals", global.0, ng);
                }
                Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
                    bad("body.invokes", invoke.0, ni)
                }
                Instruction::Join { var }
                | Instruction::MonitorEnter { var }
                | Instruction::MonitorExit { var } => bad("body.vars", var.0, nv),
                Instruction::Return { var } => bad("body.vars", var.0, nv),
            }
        }
    }
    for var in program.vars.values() {
        bad("vars.method", var.method.0, nm);
    }
    for field in program.fields.values() {
        bad("fields.class", field.class.0, nc);
    }
    for global in program.globals.values() {
        bad("globals.class", global.class.0, nc);
    }
    for alloc in program.allocs.values() {
        bad("allocs.class", alloc.class.0, nc);
        bad("allocs.method", alloc.method.0, nm);
    }
    for invoke in program.invokes.values() {
        bad("invokes.method", invoke.method.0, nm);
        for &a in &invoke.args {
            bad("invokes.args", a.0, nv);
        }
        if let Some(r) = invoke.result {
            bad("invokes.result", r.0, nv);
        }
        match invoke.kind {
            InvokeKind::Virtual { base, sig } => {
                bad("invokes.base", base.0, nv);
                bad("invokes.sig", sig.0, ns);
            }
            InvokeKind::Special { base, target } => {
                bad("invokes.base", base.0, nv);
                bad("invokes.target", target.0, nm);
            }
            InvokeKind::Static { target } => bad("invokes.target", target.0, nm),
        }
    }
    for &m in &program.entry_points {
        bad("entry_points", m.0, nm);
    }
}

fn check_bodies(program: &Program, errors: &mut Vec<ValidateError>) {
    let check_var = |mid: MethodId, var: VarId, errors: &mut Vec<ValidateError>| {
        if program.vars[var].method != mid {
            errors.push(ValidateError::ForeignVariable { method: mid, var });
        }
    };
    for (mid, method) in program.methods.iter() {
        // Open monitor regions, innermost last. Exits must match the top of
        // the stack exactly (proper nesting on the same variable) and every
        // region must be closed before the body ends.
        let mut monitors: Vec<VarId> = Vec::new();
        let mut monitor_reported = false;
        for instr in &method.body {
            match *instr {
                Instruction::Alloc { var, .. } => check_var(mid, var, errors),
                Instruction::Move { to, from } | Instruction::Cast { to, from, .. } => {
                    check_var(mid, to, errors);
                    check_var(mid, from, errors);
                }
                Instruction::Load { to, base, .. } => {
                    check_var(mid, to, errors);
                    check_var(mid, base, errors);
                }
                Instruction::Store { base, from, .. } => {
                    check_var(mid, base, errors);
                    check_var(mid, from, errors);
                }
                Instruction::LoadGlobal { to, global } => {
                    check_var(mid, to, errors);
                    if global.index() >= program.globals.len() {
                        errors.push(ValidateError::DanglingId {
                            table: "body.globals",
                            raw: global.0,
                        });
                    }
                }
                Instruction::StoreGlobal { global, from } => {
                    check_var(mid, from, errors);
                    if global.index() >= program.globals.len() {
                        errors.push(ValidateError::DanglingId {
                            table: "body.globals",
                            raw: global.0,
                        });
                    }
                }
                Instruction::Call { invoke } => {
                    let inv = &program.invokes[invoke];
                    for &a in &inv.args {
                        check_var(mid, a, errors);
                    }
                    if let Some(r) = inv.result {
                        check_var(mid, r, errors);
                    }
                    match inv.kind {
                        InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                            check_var(mid, base, errors)
                        }
                        InvokeKind::Static { .. } => {}
                    }
                }
                Instruction::Spawn { invoke } => {
                    let inv = &program.invokes[invoke];
                    let shape_ok = matches!(
                        inv.kind,
                        InvokeKind::Virtual { sig, .. }
                            if program.sigs[sig].name == "run" && program.sigs[sig].arity == 0
                    ) && inv.args.is_empty()
                        && inv.result.is_none();
                    if !shape_ok {
                        errors.push(ValidateError::MalformedSpawn(mid));
                    }
                    if let InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } =
                        inv.kind
                    {
                        check_var(mid, base, errors);
                    }
                }
                Instruction::Join { var } => check_var(mid, var, errors),
                Instruction::MonitorEnter { var } => {
                    check_var(mid, var, errors);
                    monitors.push(var);
                }
                Instruction::MonitorExit { var } => {
                    check_var(mid, var, errors);
                    if monitors.last() == Some(&var) {
                        monitors.pop();
                    } else if !monitor_reported {
                        errors.push(ValidateError::UnbalancedMonitor { method: mid });
                        monitor_reported = true;
                    }
                }
                Instruction::Return { var } => {
                    check_var(mid, var, errors);
                    if method.ret.is_none() {
                        errors.push(ValidateError::ReturnWithoutFormal(mid));
                    }
                }
            }
        }
        if !monitors.is_empty() && !monitor_reported {
            errors.push(ValidateError::UnbalancedMonitor { method: mid });
        }
    }
}

fn check_invokes(program: &Program, errors: &mut Vec<ValidateError>) {
    for invoke in program.invokes.values() {
        match invoke.kind {
            InvokeKind::Virtual { sig, .. } => {
                let arity = program.sigs[sig].arity;
                if invoke.args.len() != arity {
                    errors.push(ValidateError::ArityMismatch {
                        method: invoke.method,
                        expected: arity,
                        found: invoke.args.len(),
                    });
                }
            }
            InvokeKind::Special { target, .. } => {
                let callee = &program.methods[target];
                if callee.is_static {
                    errors.push(ValidateError::WrongCallKind {
                        method: invoke.method,
                        target,
                    });
                }
                if invoke.args.len() != callee.params.len() {
                    errors.push(ValidateError::ArityMismatch {
                        method: invoke.method,
                        expected: callee.params.len(),
                        found: invoke.args.len(),
                    });
                }
            }
            InvokeKind::Static { target } => {
                let callee = &program.methods[target];
                if !callee.is_static {
                    errors.push(ValidateError::WrongCallKind {
                        method: invoke.method,
                        target,
                    });
                }
                if invoke.args.len() != callee.params.len() {
                    errors.push(ValidateError::ArityMismatch {
                        method: invoke.method,
                        expected: callee.params.len(),
                        found: invoke.args.len(),
                    });
                }
            }
        }
    }
}

fn check_allocs(program: &Program, errors: &mut Vec<ValidateError>) {
    for alloc in program.allocs.values() {
        if program.classes[alloc.class].is_abstract {
            errors.push(ValidateError::AbstractAllocation(alloc.class));
        }
    }
}

fn check_entries(program: &Program, errors: &mut Vec<ValidateError>) {
    for &m in &program.entry_points {
        if !program.methods[m].is_static {
            errors.push(ValidateError::InstanceEntryPoint(m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn well_formed_program_validates() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.entry(main);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn cyclic_hierarchy_is_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.class("A", None);
        let c = b.class("B", Some(a));
        let mut p = b.finish();
        p.classes[a].superclass = Some(c);
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::CyclicHierarchy(_))));
    }

    #[test]
    fn foreign_variable_is_rejected() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m1 = b.method(obj, "f", &[], true);
        let m2 = b.method(obj, "g", &[], true);
        let x1 = b.var(m1, "x");
        let x2 = b.var(m2, "x");
        b.mov(m1, x1, x2);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ForeignVariable { .. })));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let callee = b.method(obj, "f", &["a"], true);
        b.scall(main, None, callee, &[]);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ArityMismatch { .. })));
    }

    #[test]
    fn static_call_to_instance_method_is_rejected() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let callee = b.method(obj, "f", &[], false);
        b.scall(main, None, callee, &[]);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::WrongCallKind { .. })));
    }

    #[test]
    fn abstract_allocation_is_rejected() {
        let mut b = ProgramBuilder::new();
        let obj = b.abstract_class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::AbstractAllocation(_))));
    }

    #[test]
    fn spawn_built_by_the_builder_validates() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let worker = b.class("Worker", Some(obj));
        b.method(worker, "run", &[], false);
        let main = b.method(obj, "main", &[], true);
        let w = b.var(main, "w");
        b.alloc(main, w, worker);
        b.spawn(main, w);
        b.join(main, w);
        b.entry(main);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn malformed_spawn_is_rejected() {
        use crate::program::Instruction;
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let w = b.var(main, "w");
        b.alloc(main, w, obj);
        // A vcall with the wrong signature, rewritten into a Spawn.
        let inv = b.vcall(main, None, w, "step", &[]);
        b.entry(main);
        let mut p = b.finish();
        let pos = p.methods[main]
            .body
            .iter()
            .position(|i| matches!(i, Instruction::Call { .. }))
            .unwrap();
        p.methods[main].body[pos] = Instruction::Spawn { invoke: inv };
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MalformedSpawn(_))));
    }

    #[test]
    fn unbalanced_monitors_are_rejected() {
        // Exit without enter.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.monitor_exit(main, x);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnbalancedMonitor { .. })));

        // Region left open.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.monitor_enter(main, x);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnbalancedMonitor { .. })));

        // Interleaved (not properly nested) regions.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, obj);
        b.alloc(main, y, obj);
        b.monitor_enter(main, x);
        b.monitor_enter(main, y);
        b.monitor_exit(main, x);
        b.monitor_exit(main, y);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnbalancedMonitor { .. })));
    }

    #[test]
    fn properly_nested_monitors_validate() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, obj);
        b.alloc(main, y, obj);
        b.monitor_enter(main, x);
        b.monitor_enter(main, y);
        b.monitor_exit(main, y);
        b.monitor_exit(main, x);
        b.entry(main);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn instance_entry_point_is_rejected() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "run", &[], false);
        b.entry(m);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::InstanceEntryPoint(_))));
    }
}
