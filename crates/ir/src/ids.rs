//! Compact, type-safe identifiers for every program entity.
//!
//! All analysis data structures are arrays indexed by these ids, so ids are
//! thin `u32` newtypes (the paper's domains `V`, `H`, `M`, `S`, `F`, `I`,
//! `T` from Figure 2). Each id type implements [`Idx`] so generic arenas and
//! dense maps can be written once.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// A dense index type: convertible to and from `usize` without loss.
///
/// Implemented by every id newtype in this module. The conversion is a plain
/// cast; ids are only ever produced by the arenas that own the entities, so
/// an id is always in bounds for the tables of the [`crate::Program`] that
/// created it.
pub trait Idx: Copy + Eq + Hash + Ord + fmt::Debug + 'static {
    /// Creates an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit in `u32`.
    fn from_usize(idx: usize) -> Self;
    /// Returns the raw index.
    fn index(self) -> usize;
}

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl Idx for $name {
            #[inline]
            fn from_usize(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "id overflow for {}", $tag);
                $name(idx as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> $name {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// A class type (domain `T`).
    ClassId,
    "T"
);
define_id!(
    /// A method definition (domain `M`).
    MethodId,
    "M"
);
define_id!(
    /// A local variable, unique program-wide (domain `V`).
    ///
    /// Every variable belongs to exactly one method, as in the paper's
    /// `inMeth` convention.
    VarId,
    "V"
);
define_id!(
    /// An instance field (domain `F`).
    FieldId,
    "F"
);
define_id!(
    /// An allocation site, the heap abstraction (domain `H`).
    AllocId,
    "H"
);
define_id!(
    /// A method invocation site (domain `I`).
    InvokeId,
    "I"
);
define_id!(
    /// A method signature: name plus arity, the dispatch key (domain `S`).
    SigId,
    "S"
);
define_id!(
    /// A static (global) field, context-insensitive by nature.
    GlobalId,
    "G"
);

/// A dense, growable map from an id type to values, backed by a `Vec`.
///
/// This is the workhorse table type of the whole framework: `O(1)` access,
/// cache-friendly iteration, no hashing.
#[derive(Clone, PartialEq, Eq)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        IdxVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        IdxVec {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends a value, returning the id it was stored under.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Borrow the entry for `id`, or `None` if out of bounds.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.index())
    }

    /// Iterate over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, v)| (I::from_usize(i), v))
    }

    /// Iterate over values in id order.
    pub fn values(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterate over values mutably in id order.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterate over all ids in order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.raw.len()).map(I::from_usize)
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IdxVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.raw[id.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IdxVec<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.index()]
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IdxVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IdxVec {
            raw: Vec::from_iter(iter),
            _marker: PhantomData,
        }
    }
}

impl<I: Idx, T> Extend<T> for IdxVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        let v = VarId::from_usize(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VarId::from(42u32), v);
    }

    #[test]
    fn ids_display_with_domain_tag() {
        assert_eq!(VarId(3).to_string(), "V3");
        assert_eq!(AllocId(7).to_string(), "H7");
        assert_eq!(MethodId(0).to_string(), "M0");
        assert_eq!(format!("{:?}", ClassId(9)), "T9");
    }

    #[test]
    fn idxvec_push_returns_sequential_ids() {
        let mut map: IdxVec<VarId, &str> = IdxVec::new();
        assert!(map.is_empty());
        let a = map.push("a");
        let b = map.push("b");
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(map.len(), 2);
        assert_eq!(map[b], "b");
    }

    #[test]
    fn idxvec_iteration_is_in_id_order() {
        let map: IdxVec<FieldId, i32> = [10, 20, 30].into_iter().collect();
        let pairs: Vec<_> = map.iter().map(|(i, v)| (i.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(
            map.ids().collect::<Vec<_>>(),
            vec![FieldId(0), FieldId(1), FieldId(2)]
        );
    }

    #[test]
    fn idxvec_get_is_checked() {
        let map: IdxVec<SigId, u8> = [1u8].into_iter().collect();
        assert_eq!(map.get(SigId(0)), Some(&1));
        assert_eq!(map.get(SigId(1)), None);
    }
}
