//! Call-graph condensation: the method SCC DAG of a program.
//!
//! The summary-based compositional engine (`rudoop-core`'s `summaries`
//! module) schedules its bottom-up pass over the strongly connected
//! components of a *static* call graph: a conservative CHA
//! over-approximation of every call graph any points-to analysis can
//! discover. Virtual sites contribute an edge to every implementation of
//! the called signature anywhere in the hierarchy; special and static
//! sites contribute their one resolved target. Over-approximation is safe
//! here — an extra edge only merges schedule units, it never lets a callee
//! be summarized after a caller that needs it.
//!
//! Everything in this module is deterministic: callee lists are sorted and
//! deduplicated, Tarjan's algorithm runs iteratively over methods in table
//! order, and component ids are emitted callees-first — so component `0`
//! has no callees outside itself and iterating components in id order *is*
//! the reverse-topological (bottom-up) schedule. [`SccDag::levels`]
//! additionally groups components into antichains for deterministic
//! parallel scheduling: two components in one level never call each other.

use crate::hierarchy::ClassHierarchy;
use crate::ids::{IdxVec, MethodId};
use crate::program::{InvokeKind, Program};

/// The conservative (CHA) static call graph: per method, its possible
/// callees, sorted and deduplicated.
#[derive(Debug, Clone)]
pub struct StaticCallGraph {
    /// Callees of each method (sorted, deduplicated).
    pub callees: IdxVec<MethodId, Vec<MethodId>>,
    /// Total edges, for stats.
    pub edge_count: usize,
}

impl StaticCallGraph {
    /// Builds the CHA call graph of `program`: virtual sites resolve to
    /// every implementation of their signature in the hierarchy, special
    /// and static sites to their single target.
    pub fn build(program: &Program, hierarchy: &ClassHierarchy) -> StaticCallGraph {
        let mut callees: IdxVec<MethodId, Vec<MethodId>> =
            (0..program.methods.len()).map(|_| Vec::new()).collect();
        for inv in program.invokes.values() {
            let out = &mut callees[inv.method];
            match inv.kind {
                InvokeKind::Virtual { sig, .. } => {
                    // Every class's dispatch answer for the signature, in
                    // class-table order (the per-class maps are hash maps,
                    // so never iterate them — query per class instead).
                    for (cid, _) in program.classes.iter() {
                        if let Some(target) = hierarchy.lookup(cid, sig) {
                            out.push(target);
                        }
                    }
                }
                InvokeKind::Special { target, .. } | InvokeKind::Static { target } => {
                    out.push(target);
                }
            }
        }
        let mut edge_count = 0;
        for out in callees.values_mut() {
            out.sort_unstable();
            out.dedup();
            edge_count += out.len();
        }
        StaticCallGraph {
            callees,
            edge_count,
        }
    }
}

/// The condensation of the static call graph: methods grouped into
/// strongly connected components, with component ids numbered in
/// reverse-topological (callees-first) order.
#[derive(Debug, Clone)]
pub struct SccDag {
    /// Component of each method.
    pub component: IdxVec<MethodId, u32>,
    /// Members of each component, sorted by method id. Indexing by
    /// component id in ascending order visits callees before callers.
    pub members: Vec<Vec<MethodId>>,
    /// Callee components of each component (sorted, deduplicated,
    /// self-edges removed). Acyclic by construction.
    pub callee_comps: Vec<Vec<u32>>,
    /// Whether each component contains a cycle: more than one member, or a
    /// single member that calls itself.
    pub cyclic: Vec<bool>,
    /// Antichain levels for parallel scheduling: `levels[0]` holds every
    /// leaf component, `levels[l]` the components whose deepest callee
    /// chain has length `l`. Components within one level are pairwise
    /// independent (no call edges either way), so a parallel scheduler may
    /// run each level's components concurrently, levels in order.
    pub levels: Vec<Vec<u32>>,
}

impl SccDag {
    /// Condenses the CHA call graph of `program`.
    pub fn build(program: &Program, hierarchy: &ClassHierarchy) -> SccDag {
        SccDag::from_graph(&StaticCallGraph::build(program, hierarchy))
    }

    /// Condenses an explicit call graph (exposed for property tests that
    /// compare against the naive reference on arbitrary graphs).
    pub fn from_graph(graph: &StaticCallGraph) -> SccDag {
        let n = graph.callees.len();
        let mut component: IdxVec<MethodId, u32> = (0..n).map(|_| u32::MAX).collect();
        let mut members: Vec<Vec<MethodId>> = Vec::new();

        // Iterative Tarjan. Methods are visited in table order, so indices,
        // lowlinks, and the emission order of components are all pure
        // functions of the graph. With edges pointing caller → callee, a
        // component is emitted only after every component it reaches, so
        // emission order is exactly the bottom-up schedule.
        const UNVISITED: u32 = u32::MAX;
        let mut index: Vec<u32> = vec![UNVISITED; n];
        let mut lowlink: Vec<u32> = vec![0; n];
        let mut on_stack: Vec<bool> = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        // Call-stack frames: (node, cursor into its callee list).
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for start in 0..n as u32 {
            if index[start as usize] != UNVISITED {
                continue;
            }
            frames.push((start, 0));
            index[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                let out = &graph.callees[MethodId(v)];
                if *cursor < out.len() {
                    let w = out[*cursor].0;
                    *cursor += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is the root of a component: pop it off.
                        let comp_id = members.len() as u32;
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w as usize] = false;
                            component[MethodId(w)] = comp_id;
                            comp.push(MethodId(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        members.push(comp);
                    }
                }
            }
        }

        // Condensed edges and cyclicity.
        let ncomp = members.len();
        let mut callee_comps: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        let mut cyclic: Vec<bool> = members.iter().map(|m| m.len() > 1).collect();
        for (comp_id, comp) in members.iter().enumerate() {
            for &m in comp {
                for &callee in &graph.callees[m] {
                    let cc = component[callee];
                    if cc as usize == comp_id {
                        cyclic[comp_id] = true;
                    } else {
                        callee_comps[comp_id].push(cc);
                    }
                }
            }
            callee_comps[comp_id].sort_unstable();
            callee_comps[comp_id].dedup();
        }

        // Antichain levels: level(c) = 1 + max level of its callees.
        // Components are already reverse-topological, so one ascending pass
        // sees every callee before its callers.
        let mut level: Vec<u32> = vec![0; ncomp];
        let mut max_level = 0u32;
        for c in 0..ncomp {
            let l = callee_comps[c]
                .iter()
                .map(|&cc| level[cc as usize] + 1)
                .max()
                .unwrap_or(0);
            level[c] = l;
            max_level = max_level.max(l);
        }
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for (c, &l) in level.iter().enumerate() {
            levels[l as usize].push(c as u32);
        }

        SccDag {
            component,
            members,
            callee_comps,
            cyclic,
            levels,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the program has no methods at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Component ids in bottom-up (reverse-topological) order — by
    /// construction simply `0..len()`.
    pub fn bottom_up(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.len() as u32
    }
}

/// Naive reference SCC computation: two methods share a component iff each
/// reaches the other through call edges (every method reaches itself).
/// Quadratic; exists only so property tests can check [`SccDag`]'s
/// membership against an implementation with no shared code.
pub fn naive_components(graph: &StaticCallGraph) -> Vec<Vec<MethodId>> {
    let n = graph.callees.len();
    let reach = |from: MethodId| -> Vec<bool> {
        let mut seen = vec![false; n];
        seen[from.0 as usize] = true;
        let mut work = vec![from];
        while let Some(v) = work.pop() {
            for &w in &graph.callees[v] {
                if !seen[w.0 as usize] {
                    seen[w.0 as usize] = true;
                    work.push(w);
                }
            }
        }
        seen
    };
    let reaches: Vec<Vec<bool>> = (0..n).map(|i| reach(MethodId(i as u32))).collect();
    let mut assigned = vec![false; n];
    let mut comps = Vec::new();
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let mut comp = Vec::new();
        for j in i..n {
            if !assigned[j] && reaches[i][j] && reaches[j][i] {
                assigned[j] = true;
                comp.push(MethodId(j as u32));
            }
        }
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// main → a ⇄ b → c, with c a leaf.
    fn cyclic_fixture() -> (Program, [MethodId; 4]) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.method(obj, "a", &[], true);
        let bm = b.method(obj, "b", &[], true);
        let c = b.method(obj, "c", &[], true);
        let main = b.method(obj, "main", &[], true);
        b.scall(main, None, a, &[]);
        b.scall(a, None, bm, &[]);
        b.scall(bm, None, a, &[]);
        b.scall(bm, None, c, &[]);
        b.entry(main);
        (b.finish(), [main, a, bm, c])
    }

    #[test]
    fn mutual_recursion_condenses_to_one_component() {
        let (p, [main, a, bm, c]) = cyclic_fixture();
        let h = ClassHierarchy::new(&p);
        let dag = SccDag::build(&p, &h);
        assert_eq!(dag.component[a], dag.component[bm]);
        assert_ne!(dag.component[a], dag.component[c]);
        assert_ne!(dag.component[a], dag.component[main]);
        assert!(dag.cyclic[dag.component[a] as usize]);
        assert!(!dag.cyclic[dag.component[c] as usize]);
        // Bottom-up: c before {a,b} before main.
        assert!(dag.component[c] < dag.component[a]);
        assert!(dag.component[a] < dag.component[main]);
    }

    #[test]
    fn self_call_is_cyclic_singleton() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let f = b.method(obj, "f", &[], true);
        b.scall(f, None, f, &[]);
        b.entry(f);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let dag = SccDag::build(&p, &h);
        assert_eq!(dag.len(), 1);
        assert!(dag.cyclic[0]);
    }

    #[test]
    fn virtual_sites_edge_to_every_override() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let bb = b.class("B", Some(a));
        let fa = b.method(a, "f", &[], false);
        let fb = b.method(bb, "f", &[], false);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, a);
        b.vcall(main, None, x, "f", &[]);
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let g = StaticCallGraph::build(&p, &h);
        assert_eq!(g.callees[main], vec![fa, fb]);
    }

    #[test]
    fn levels_are_antichains() {
        let (p, _) = cyclic_fixture();
        let h = ClassHierarchy::new(&p);
        let dag = SccDag::build(&p, &h);
        for level in &dag.levels {
            for &c in level {
                for &cc in &dag.callee_comps[c as usize] {
                    assert!(!level.contains(&cc), "call edge within one level");
                }
            }
        }
    }

    #[test]
    fn naive_reference_agrees_on_fixture() {
        let (p, _) = cyclic_fixture();
        let h = ClassHierarchy::new(&p);
        let g = StaticCallGraph::build(&p, &h);
        let dag = SccDag::from_graph(&g);
        let mut tarjan: Vec<Vec<MethodId>> = dag.members.clone();
        tarjan.sort();
        let mut naive = naive_components(&g);
        naive.sort();
        assert_eq!(tarjan, naive);
    }
}
