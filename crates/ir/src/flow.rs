//! Whole-program pointer flow-graph extraction.
//!
//! The cut-shortcut pre-analysis (see `rudoop-core`'s `cutshortcut`
//! module) needs a classified view of how reference values move through a
//! method body *before* any points-to information exists: which variables
//! copy into which ([`CopyKind`]), and which variables are consumed by
//! something other than a copy ([`VarUse`]). This module builds that view
//! — the static pointer flow graph of the program — in one deterministic
//! pass over the IL.
//!
//! The graph is purely syntactic: interprocedural edges (argument passing,
//! returns) are *not* included, because they are exactly the edges the
//! cut-shortcut pass decides to cut or reroute.

use crate::ids::{FieldId, GlobalId, IdxVec, InvokeId, VarId};
use crate::program::{Instruction, InvokeKind, Program};

/// Why a copy edge `from → to` exists in the flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// A `to = from` move.
    Move,
    /// A `to = (T) from` cast (points-to-wise a move).
    Cast,
    /// A `return from` binding the method's formal return variable.
    Return,
}

/// A non-copy use of a variable: anything that consumes the variable's
/// points-to set other than copying it wholesale into another variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarUse {
    /// The variable is stored into a field: `base.field = var`.
    StoreValue {
        /// Base variable of the store.
        base: VarId,
        /// Field written.
        field: FieldId,
    },
    /// The variable is the base of a store: `var.field = from`.
    StoreBase {
        /// Field written.
        field: FieldId,
    },
    /// The variable is the base of a load: `to = var.field`.
    LoadBase {
        /// Field read.
        field: FieldId,
        /// Destination of the load.
        to: VarId,
    },
    /// The variable is written to a static field.
    GlobalStore {
        /// The global written.
        global: GlobalId,
    },
    /// The variable is passed as an actual argument of a call.
    CallArg {
        /// The invocation site.
        invoke: InvokeId,
        /// Argument position.
        index: usize,
    },
    /// The variable is the receiver of a virtual/special call (or spawn).
    CallReceiver {
        /// The invocation site.
        invoke: InvokeId,
    },
    /// The variable is consumed by a concurrency instruction
    /// (`join`/`monitorenter`/`monitorexit`): its points-to set feeds the
    /// race client's happens-before/lock-set reasoning, so it must be
    /// treated as an opaque use.
    Sync,
}

/// The static pointer flow graph of a whole program: per-variable copy
/// successors, non-copy uses, and direct definition counts.
///
/// Construction is deterministic: edges and uses appear in method-table
/// then body order, so two builds over the same program are identical.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    /// Copy successors of each variable (`to`, kind). `Return` edges point
    /// at the enclosing method's formal return variable and exist only
    /// when the method has one.
    pub copy_out: IdxVec<VarId, Vec<(VarId, CopyKind)>>,
    /// Non-copy uses of each variable.
    pub uses: IdxVec<VarId, Vec<VarUse>>,
    /// Number of *direct* instruction definitions of each variable
    /// (alloc, move/cast/load destination, global load, call result).
    /// Interprocedural definitions — formals receiving actuals, `this`
    /// receiving receivers, results receiving returns — are not counted.
    pub defs: IdxVec<VarId, u32>,
    /// Total copy edges (move + cast + return bindings), for stats.
    pub copy_edge_count: usize,
    /// Total non-copy uses recorded, for stats.
    pub use_count: usize,
}

impl FlowGraph {
    /// Builds the flow graph of `program`.
    pub fn build(program: &Program) -> FlowGraph {
        let n = program.vars.len();
        let mut copy_out: IdxVec<VarId, Vec<(VarId, CopyKind)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut uses: IdxVec<VarId, Vec<VarUse>> = (0..n).map(|_| Vec::new()).collect();
        let mut defs: IdxVec<VarId, u32> = (0..n).map(|_| 0).collect();
        let mut copy_edge_count = 0usize;
        let mut use_count = 0usize;

        let copy = |copy_out: &mut IdxVec<VarId, Vec<(VarId, CopyKind)>>,
                    from: VarId,
                    to: VarId,
                    kind: CopyKind| {
            copy_out[from].push((to, kind));
        };
        for (_, method) in program.methods.iter() {
            for instr in &method.body {
                match *instr {
                    Instruction::Alloc { var, .. } => defs[var] += 1,
                    Instruction::Move { to, from } => {
                        copy(&mut copy_out, from, to, CopyKind::Move);
                        copy_edge_count += 1;
                        defs[to] += 1;
                    }
                    Instruction::Cast { to, from, .. } => {
                        copy(&mut copy_out, from, to, CopyKind::Cast);
                        copy_edge_count += 1;
                        defs[to] += 1;
                    }
                    Instruction::Load { to, base, field } => {
                        uses[base].push(VarUse::LoadBase { field, to });
                        use_count += 1;
                        defs[to] += 1;
                    }
                    Instruction::Store { base, field, from } => {
                        uses[base].push(VarUse::StoreBase { field });
                        uses[from].push(VarUse::StoreValue { base, field });
                        use_count += 2;
                    }
                    Instruction::LoadGlobal { to, .. } => defs[to] += 1,
                    Instruction::StoreGlobal { global, from } => {
                        uses[from].push(VarUse::GlobalStore { global });
                        use_count += 1;
                    }
                    Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
                        let inv = &program.invokes[invoke];
                        for (index, &arg) in inv.args.iter().enumerate() {
                            uses[arg].push(VarUse::CallArg { invoke, index });
                            use_count += 1;
                        }
                        if let Some(result) = inv.result {
                            defs[result] += 1;
                        }
                        match inv.kind {
                            InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                                uses[base].push(VarUse::CallReceiver { invoke });
                                use_count += 1;
                            }
                            InvokeKind::Static { .. } => {}
                        }
                    }
                    Instruction::Join { var }
                    | Instruction::MonitorEnter { var }
                    | Instruction::MonitorExit { var } => {
                        uses[var].push(VarUse::Sync);
                        use_count += 1;
                    }
                    Instruction::Return { var } => {
                        // Points-to-wise a return is a copy into the formal
                        // return variable; with no formal return it is a
                        // no-op, exactly as in the solver.
                        if let Some(ret) = method.ret {
                            copy(&mut copy_out, var, ret, CopyKind::Return);
                            copy_edge_count += 1;
                        }
                    }
                }
            }
        }
        FlowGraph {
            copy_out,
            uses,
            defs,
            copy_edge_count,
            use_count,
        }
    }

    /// The copy closure of `from`: every variable reachable from `from`
    /// through copy edges alone, including `from` itself, in deterministic
    /// BFS order.
    pub fn copy_closure(&self, from: VarId) -> Vec<VarId> {
        let mut visited = vec![from];
        let mut seen: Vec<bool> = vec![false; self.copy_out.len()];
        seen[from.0 as usize] = true;
        let mut head = 0;
        while head < visited.len() {
            let v = visited[head];
            head += 1;
            for &(to, _) in &self.copy_out[v] {
                if !seen[to.0 as usize] {
                    seen[to.0 as usize] = true;
                    visited.push(to);
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn copies_and_uses_are_classified() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let m = b.method(obj, "main", &[], true);
        let x = b.var(m, "x");
        let y = b.var(m, "y");
        let bx = b.var(m, "bx");
        let out = b.var(m, "out");
        b.alloc(m, x, obj);
        b.alloc(m, bx, box_c);
        b.mov(m, y, x);
        b.store(m, bx, f, y);
        b.load(m, out, bx, f);
        b.entry(m);
        let p = b.finish();
        let g = FlowGraph::build(&p);
        assert_eq!(g.copy_out[x], vec![(y, CopyKind::Move)]);
        assert_eq!(g.uses[y], vec![VarUse::StoreValue { base: bx, field: f }]);
        assert_eq!(
            g.uses[bx],
            vec![
                VarUse::StoreBase { field: f },
                VarUse::LoadBase { field: f, to: out }
            ]
        );
        assert_eq!(g.defs[x], 1);
        assert_eq!(g.defs[out], 1);
        assert_eq!(g.copy_edge_count, 1);
    }

    #[test]
    fn return_binds_formal_return() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        b.entry(id_m);
        let p = b.finish();
        let ret = p.methods.values().next().unwrap().ret.unwrap();
        let g = FlowGraph::build(&p);
        assert_eq!(g.copy_out[xp], vec![(ret, CopyKind::Return)]);
        assert_eq!(g.copy_closure(xp), vec![xp, ret]);
    }

    #[test]
    fn copy_closure_follows_chains_once() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "main", &[], true);
        let a = b.var(m, "a");
        let c = b.var(m, "c");
        let d = b.var(m, "d");
        b.mov(m, c, a);
        b.mov(m, d, c);
        b.mov(m, a, d); // cycle back
        b.entry(m);
        let p = b.finish();
        let g = FlowGraph::build(&p);
        assert_eq!(g.copy_closure(a), vec![a, c, d]);
    }
}
