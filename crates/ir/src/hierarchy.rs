//! Class hierarchy queries: subtype tests and virtual dispatch — the
//! paper's HEAPTYPE/LOOKUP machinery.
//!
//! Built once from a [`Program`] and then queried heavily by the solver, so
//! everything is precomputed into dense tables: subtyping uses an Euler-tour
//! interval encoding (`O(1)` per query) and dispatch uses copied-down
//! per-class signature maps (`O(1)` hash lookup per query).

use std::collections::HashMap;

use crate::ids::{ClassId, IdxVec, MethodId, SigId};
use crate::program::Program;

/// Precomputed hierarchy queries for one [`Program`].
#[derive(Debug, Clone)]
pub struct ClassHierarchy {
    /// Euler-tour entry time per class.
    begin: IdxVec<ClassId, u32>,
    /// Euler-tour exit time per class.
    end: IdxVec<ClassId, u32>,
    /// Copy-down dispatch table: for each class, every signature it can
    /// answer, mapped to the most-derived implementation.
    dispatch: IdxVec<ClassId, HashMap<SigId, MethodId>>,
    /// Direct subclasses, for iteration.
    children: IdxVec<ClassId, Vec<ClassId>>,
}

impl ClassHierarchy {
    /// Builds the hierarchy tables for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the superclass graph is cyclic — run
    /// [`validate`](crate::validate::validate) first for a proper error.
    pub fn new(program: &Program) -> Self {
        let n = program.classes.len();
        let mut children: IdxVec<ClassId, Vec<ClassId>> = (0..n).map(|_| Vec::new()).collect();
        let mut roots = Vec::new();
        for (cid, class) in program.classes.iter() {
            match class.superclass {
                Some(sup) => children[sup].push(cid),
                None => roots.push(cid),
            }
        }

        // Euler tour for interval subtype encoding.
        let mut begin: IdxVec<ClassId, u32> = (0..n).map(|_| 0).collect();
        let mut end: IdxVec<ClassId, u32> = (0..n).map(|_| 0).collect();
        let mut clock = 0u32;
        let mut visited = 0usize;
        // Iterative DFS: (class, child cursor).
        let mut stack: Vec<(ClassId, usize)> = Vec::new();
        for &root in &roots {
            stack.push((root, 0));
            begin[root] = clock;
            clock += 1;
            visited += 1;
            while let Some(&mut (cls, ref mut cursor)) = stack.last_mut() {
                if *cursor < children[cls].len() {
                    let child = children[cls][*cursor];
                    *cursor += 1;
                    begin[child] = clock;
                    clock += 1;
                    visited += 1;
                    stack.push((child, 0));
                } else {
                    end[cls] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }
        assert_eq!(
            visited, n,
            "superclass graph is cyclic or disconnected from roots"
        );

        // Copy-down dispatch tables, parents before children (DFS order).
        let mut dispatch: IdxVec<ClassId, HashMap<SigId, MethodId>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut order: Vec<ClassId> = Vec::with_capacity(n);
        let mut work: Vec<ClassId> = roots.clone();
        while let Some(cls) = work.pop() {
            order.push(cls);
            work.extend(children[cls].iter().copied());
        }
        for cls in order {
            if let Some(sup) = program.classes[cls].superclass {
                let inherited = dispatch[sup].clone();
                dispatch[cls] = inherited;
            }
            for &m in &program.classes[cls].methods {
                if !program.methods[m].is_static {
                    dispatch[cls].insert(program.methods[m].sig, m);
                }
            }
        }

        ClassHierarchy {
            begin,
            end,
            dispatch,
            children,
        }
    }

    /// Whether `sub` is `sup` or a (transitive) subclass of it.
    #[inline]
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        self.begin[sup] <= self.begin[sub] && self.end[sub] <= self.end[sup]
    }

    /// Virtual dispatch: the paper's `LOOKUP(type, sig) = meth`.
    ///
    /// Returns the most-derived non-static method implementing `sig` in
    /// `class` or an ancestor, or `None` when the class does not understand
    /// the signature.
    #[inline]
    pub fn lookup(&self, class: ClassId, sig: SigId) -> Option<MethodId> {
        self.dispatch[class].get(&sig).copied()
    }

    /// Direct subclasses of `class`.
    pub fn subclasses(&self, class: ClassId) -> &[ClassId] {
        &self.children[class]
    }

    /// All signatures `class` can dispatch, with their targets.
    pub fn dispatch_table(&self, class: ClassId) -> &HashMap<SigId, MethodId> {
        &self.dispatch[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn diamond_free_fixture() -> (Program, ClassId, ClassId, ClassId, ClassId) {
        // Object <- A <- B, Object <- C
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let bb = b.class("B", Some(a));
        let c = b.class("C", Some(obj));
        (b.finish(), obj, a, bb, c)
    }

    #[test]
    fn subtype_is_reflexive_and_transitive() {
        let (p, obj, a, bb, c) = diamond_free_fixture();
        let h = ClassHierarchy::new(&p);
        assert!(h.is_subtype(a, a));
        assert!(h.is_subtype(bb, a));
        assert!(h.is_subtype(bb, obj));
        assert!(h.is_subtype(c, obj));
        assert!(!h.is_subtype(a, bb));
        assert!(!h.is_subtype(c, a));
        assert!(!h.is_subtype(obj, c));
    }

    #[test]
    fn lookup_finds_most_derived_override() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let bb = b.class("B", Some(a));
        let m_a = b.method(a, "f", &[], false);
        let m_b = b.method(bb, "f", &[], false);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let sig = p.methods[m_a].sig;
        assert_eq!(p.methods[m_b].sig, sig, "overrides share a signature");
        assert_eq!(h.lookup(a, sig), Some(m_a));
        assert_eq!(h.lookup(bb, sig), Some(m_b));
        assert_eq!(h.lookup(obj, sig), None);
    }

    #[test]
    fn lookup_inherits_from_ancestors() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let bb = b.class("B", Some(a));
        let m_a = b.method(a, "g", &[], false);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let sig = p.methods[m_a].sig;
        assert_eq!(h.lookup(bb, sig), Some(m_a));
    }

    #[test]
    fn static_methods_do_not_enter_dispatch() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let m = b.method(a, "s", &[], true);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        assert_eq!(h.lookup(a, p.methods[m].sig), None);
    }

    #[test]
    fn subclasses_lists_direct_children_only() {
        let (p, obj, a, bb, c) = diamond_free_fixture();
        let h = ClassHierarchy::new(&p);
        let mut kids = h.subclasses(obj).to_vec();
        kids.sort();
        assert_eq!(kids, vec![a, c]);
        assert_eq!(h.subclasses(a), &[bb]);
        assert!(h.subclasses(bb).is_empty());
    }
}
