//! # rudoop-ir
//!
//! The intermediate-language substrate of the `rudoop` workspace: a
//! simplified Jimple-like representation of Java-style programs, exactly the
//! input language of *"Introspective Analysis: Context-Sensitivity, Across
//! the Board"* (PLDI 2014), §2.
//!
//! The crate provides:
//!
//! - compact interned identifiers for the paper's domains ([`ids`]),
//! - the program model with `new`/`move`/`load`/`store`/`cast`/call
//!   instructions ([`program`]),
//! - class-hierarchy queries — subtyping and virtual dispatch, the paper's
//!   LOOKUP ([`hierarchy`]),
//! - a fluent [`ProgramBuilder`] for generating programs in code,
//! - a textual format with parser and printer ([`text`]), standing in for a
//!   bytecode frontend,
//! - structural well-formedness checking ([`mod@validate`]).
//!
//! # Examples
//!
//! ```
//! use rudoop_ir::{parse_program, ClassHierarchy, validate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "class Object\n\
//!      class A extends Object\n\
//!      method A.f() {\n}\n\
//!      method Object.main() static {\n  a = new A\n  a.f()\n}\n\
//!      entry Object.main\n",
//! )?;
//! validate(&program).map_err(|e| format!("{e:?}"))?;
//! let hierarchy = ClassHierarchy::new(&program);
//! let a = program.classes.iter().find(|(_, c)| c.name == "A").unwrap().0;
//! let object = program.classes.iter().find(|(_, c)| c.name == "Object").unwrap().0;
//! assert!(hierarchy.is_subtype(a, object));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod builder;
pub mod flow;
pub mod hierarchy;
pub mod ids;
pub mod program;
pub mod rng;
pub mod scc;
pub mod span;
pub mod taint;
pub mod text;
pub mod validate;

pub use builder::ProgramBuilder;
pub use flow::{CopyKind, FlowGraph, VarUse};
pub use hierarchy::ClassHierarchy;
pub use ids::{AllocId, ClassId, FieldId, GlobalId, Idx, IdxVec, InvokeId, MethodId, SigId, VarId};
pub use program::{
    AllocSite, CastSite, Class, Field, Global, Instruction, Invoke, InvokeKind, Method, Program,
    Signature, Var,
};
pub use scc::{naive_components, SccDag, StaticCallGraph};
pub use span::Span;
pub use taint::{TaintSpec, TaintSpecError};
pub use text::{parse_program, print_program, ParseError};
pub use validate::{validate, ValidateError};
