//! A fluent builder for [`Program`]s, used by workload generators, tests and
//! the textual-format parser.
//!
//! The builder interns signatures, checks name uniqueness lazily (full
//! checking lives in [`mod@crate::validate`]) and keeps ids consistent: every
//! `var`/`alloc`/call helper takes the method it belongs to, so the
//! `inMeth` invariants of the paper's input relations hold by construction.

use std::collections::HashMap;

use crate::ids::{AllocId, ClassId, FieldId, GlobalId, InvokeId, MethodId, SigId, VarId};
use crate::program::{
    AllocSite, Class, Field, Global, Instruction, Invoke, InvokeKind, Method, Program, Signature,
    Var,
};
use crate::span::Span;

/// Incrementally constructs a [`Program`].
///
/// # Examples
///
/// ```
/// use rudoop_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let object = b.class("Object", None);
/// let list = b.class("List", Some(object));
/// let main = b.method(object, "main", &[], true);
/// let l = b.var(main, "l");
/// b.alloc(main, l, list);
/// b.entry(main);
/// let program = b.finish();
/// assert_eq!(program.instruction_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    sig_intern: HashMap<(String, usize), SigId>,
    class_names: HashMap<String, ClassId>,
    cur_span: Span,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a class. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        self.class_with(name, superclass, false)
    }

    /// Declares an abstract class (no allocation sites may use it).
    pub fn abstract_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        self.class_with(name, superclass, true)
    }

    fn class_with(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        is_abstract: bool,
    ) -> ClassId {
        assert!(
            !self.class_names.contains_key(name),
            "duplicate class name {name:?}"
        );
        let id = self.program.classes.push(Class {
            name: name.to_owned(),
            superclass,
            methods: Vec::new(),
            is_abstract,
        });
        self.class_names.insert(name.to_owned(), id);
        id
    }

    /// Looks up a class declared earlier by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// Sets the source position attached to subsequently emitted
    /// instructions and method headers. The textual parser calls this per
    /// statement; programmatic builders may ignore it (everything then
    /// carries [`Span::NONE`]).
    pub fn at(&mut self, span: Span) -> &mut Self {
        self.cur_span = span;
        self
    }

    fn push_instr(&mut self, method: MethodId, instr: Instruction) {
        let m = &mut self.program.methods[method];
        m.body.push(instr);
        m.body_spans.push(self.cur_span);
    }

    /// Interns the signature `name/arity`.
    pub fn sig(&mut self, name: &str, arity: usize) -> SigId {
        if let Some(&id) = self.sig_intern.get(&(name.to_owned(), arity)) {
            return id;
        }
        let id = self.program.sigs.push(Signature {
            name: name.to_owned(),
            arity,
        });
        self.sig_intern.insert((name.to_owned(), arity), id);
        id
    }

    /// Declares a method on `class` with the given parameter names.
    ///
    /// Instance methods get a fresh `this` variable; parameters get fresh
    /// variables. The signature `name/params.len()` is interned so that
    /// same-named same-arity methods in related classes override each other.
    pub fn method(
        &mut self,
        class: ClassId,
        name: &str,
        params: &[&str],
        is_static: bool,
    ) -> MethodId {
        let sig = self.sig(name, params.len());
        let id = self.program.methods.push(Method {
            name: name.to_owned(),
            sig,
            class,
            this: None,
            params: Vec::new(),
            ret: None,
            body: Vec::new(),
            is_static,
            decl_span: self.cur_span,
            body_spans: Vec::new(),
        });
        self.program.classes[class].methods.push(id);
        if !is_static {
            let this = self.var(id, "this");
            self.program.methods[id].this = Some(this);
        }
        let param_vars: Vec<VarId> = params.iter().map(|p| self.var(id, p)).collect();
        self.program.methods[id].params = param_vars;
        id
    }

    /// Declares a fresh local variable in `method`.
    pub fn var(&mut self, method: MethodId, name: &str) -> VarId {
        self.program.vars.push(Var {
            name: name.to_owned(),
            method,
        })
    }

    /// Declares an instance field on `class`.
    pub fn field(&mut self, class: ClassId, name: &str) -> FieldId {
        self.program.fields.push(Field {
            name: name.to_owned(),
            class,
        })
    }

    /// Declares a static (global) field on `class`.
    pub fn global(&mut self, class: ClassId, name: &str) -> GlobalId {
        self.program.globals.push(Global {
            name: name.to_owned(),
            class,
        })
    }

    /// The `this` variable of `method`.
    ///
    /// # Panics
    ///
    /// Panics if `method` is static.
    pub fn this(&self, method: MethodId) -> VarId {
        self.program.methods[method]
            .this
            .expect("static method has no `this`")
    }

    /// The `i`-th formal parameter of `method`.
    pub fn param(&self, method: MethodId, i: usize) -> VarId {
        self.program.methods[method].params[i]
    }

    /// Ensures `method` has a formal return variable and returns it.
    pub fn ret_var(&mut self, method: MethodId) -> VarId {
        if let Some(r) = self.program.methods[method].ret {
            return r;
        }
        let r = self.var(method, "$ret");
        self.program.methods[method].ret = Some(r);
        r
    }

    /// Emits `var = new C` in `method` and returns the allocation site.
    pub fn alloc(&mut self, method: MethodId, var: VarId, class: ClassId) -> AllocId {
        let alloc = self.program.allocs.push(AllocSite { class, method });
        self.push_instr(method, Instruction::Alloc { var, alloc });
        alloc
    }

    /// Emits `to = from` in `method`.
    pub fn mov(&mut self, method: MethodId, to: VarId, from: VarId) {
        self.push_instr(method, Instruction::Move { to, from });
    }

    /// Emits `to = (C) from` in `method`.
    pub fn cast(&mut self, method: MethodId, to: VarId, from: VarId, class: ClassId) {
        self.push_instr(method, Instruction::Cast { to, from, class });
    }

    /// Emits `to = base.field` in `method`.
    pub fn load(&mut self, method: MethodId, to: VarId, base: VarId, field: FieldId) {
        self.push_instr(method, Instruction::Load { to, base, field });
    }

    /// Emits `base.field = from` in `method`.
    pub fn store(&mut self, method: MethodId, base: VarId, field: FieldId, from: VarId) {
        self.push_instr(method, Instruction::Store { base, field, from });
    }

    /// Emits `to = global` in `method`.
    pub fn load_global(&mut self, method: MethodId, to: VarId, global: GlobalId) {
        self.push_instr(method, Instruction::LoadGlobal { to, global });
    }

    /// Emits `global = from` in `method`.
    pub fn store_global(&mut self, method: MethodId, global: GlobalId, from: VarId) {
        self.push_instr(method, Instruction::StoreGlobal { global, from });
    }

    /// Emits `result = base.sig(args…)` — a virtual call dispatching on
    /// `base`'s dynamic type via the interned signature `sig_name/args.len()`.
    pub fn vcall(
        &mut self,
        method: MethodId,
        result: Option<VarId>,
        base: VarId,
        sig_name: &str,
        args: &[VarId],
    ) -> InvokeId {
        let sig = self.sig(sig_name, args.len());
        let invoke = self.program.invokes.push(Invoke {
            kind: InvokeKind::Virtual { base, sig },
            args: args.to_vec(),
            result,
            method,
        });
        self.push_instr(method, Instruction::Call { invoke });
        invoke
    }

    /// Emits a special (statically-bound instance) call, e.g. a constructor.
    pub fn specialcall(
        &mut self,
        method: MethodId,
        result: Option<VarId>,
        base: VarId,
        target: MethodId,
        args: &[VarId],
    ) -> InvokeId {
        let invoke = self.program.invokes.push(Invoke {
            kind: InvokeKind::Special { base, target },
            args: args.to_vec(),
            result,
            method,
        });
        self.push_instr(method, Instruction::Call { invoke });
        invoke
    }

    /// Emits a static call.
    pub fn scall(
        &mut self,
        method: MethodId,
        result: Option<VarId>,
        target: MethodId,
        args: &[VarId],
    ) -> InvokeId {
        let invoke = self.program.invokes.push(Invoke {
            kind: InvokeKind::Static { target },
            args: args.to_vec(),
            result,
            method,
        });
        self.push_instr(method, Instruction::Call { invoke });
        invoke
    }

    /// Emits `spawn var` in `method`: starts a thread running `var.run()`.
    /// The implied invoke site is a plain virtual call of the interned
    /// `run/0` signature with no arguments and no result, so the points-to
    /// solver resolves thread bodies through ordinary dispatch.
    pub fn spawn(&mut self, method: MethodId, var: VarId) -> InvokeId {
        let sig = self.sig("run", 0);
        let invoke = self.program.invokes.push(Invoke {
            kind: InvokeKind::Virtual { base: var, sig },
            args: Vec::new(),
            result: None,
            method,
        });
        self.push_instr(method, Instruction::Spawn { invoke });
        invoke
    }

    /// Emits `join var` in `method`.
    pub fn join(&mut self, method: MethodId, var: VarId) {
        self.push_instr(method, Instruction::Join { var });
    }

    /// Emits `monitorenter var` in `method`, opening a lock region.
    pub fn monitor_enter(&mut self, method: MethodId, var: VarId) {
        self.push_instr(method, Instruction::MonitorEnter { var });
    }

    /// Emits `monitorexit var` in `method`, closing the innermost region
    /// opened on the same variable.
    pub fn monitor_exit(&mut self, method: MethodId, var: VarId) {
        self.push_instr(method, Instruction::MonitorExit { var });
    }

    /// Emits `return var` in `method` (creating the formal return variable
    /// on first use).
    pub fn ret(&mut self, method: MethodId, var: VarId) {
        self.ret_var(method);
        self.push_instr(method, Instruction::Return { var });
    }

    /// Marks `method` as an entry point (seed of REACHABLE).
    pub fn entry(&mut self, method: MethodId) {
        self.program.entry_points.push(method);
    }

    /// Finishes construction and returns the program.
    pub fn finish(self) -> Program {
        self.program
    }

    /// Read-only view of the program built so far.
    pub fn peek(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_get_this_and_params() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let m = b.method(c, "f", &["x", "y"], false);
        let p = b.peek();
        assert!(p.methods[m].this.is_some());
        assert_eq!(p.methods[m].params.len(), 2);
        assert_eq!(p.vars[p.methods[m].params[0]].name, "x");
        assert_eq!(p.vars[b.this(m)].name, "this");
    }

    #[test]
    fn static_methods_have_no_this() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let m = b.method(c, "f", &[], true);
        assert!(b.peek().methods[m].this.is_none());
    }

    #[test]
    fn signatures_are_interned_by_name_and_arity() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let d = b.class("D", Some(c));
        let m1 = b.method(c, "f", &["a"], false);
        let m2 = b.method(d, "f", &["b"], false);
        let m3 = b.method(d, "f", &["a", "b"], false);
        let p = b.peek();
        assert_eq!(p.methods[m1].sig, p.methods[m2].sig);
        assert_ne!(p.methods[m1].sig, p.methods[m3].sig);
    }

    #[test]
    fn ret_creates_formal_return_once() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let m = b.method(c, "f", &[], false);
        let x = b.var(m, "x");
        b.ret(m, x);
        b.ret(m, x);
        let p = b.peek();
        let ret = p.methods[m].ret.unwrap();
        assert_eq!(p.vars[ret].name, "$ret");
        // Only one $ret variable despite two returns.
        assert_eq!(p.vars.values().filter(|v| v.name == "$ret").count(), 1);
    }

    #[test]
    fn duplicate_class_name_panics() {
        let mut b = ProgramBuilder::new();
        b.class("C", None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.class("C", None);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn calls_record_invoke_sites() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let m = b.method(c, "main", &[], true);
        let callee = b.method(c, "f", &["x"], false);
        let recv = b.var(m, "recv");
        let arg = b.var(m, "arg");
        let out = b.var(m, "out");
        b.alloc(m, recv, c);
        let i1 = b.vcall(m, Some(out), recv, "f", &[arg]);
        let i2 = b.scall(m, None, callee, &[arg]);
        let p = b.peek();
        assert_eq!(p.invokes.len(), 2);
        assert!(matches!(p.invokes[i1].kind, InvokeKind::Virtual { .. }));
        assert!(matches!(p.invokes[i2].kind, InvokeKind::Static { .. }));
        assert_eq!(p.invokes[i1].result, Some(out));
    }
}
