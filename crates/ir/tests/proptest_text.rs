//! Property-style tests for the textual format: randomly generated
//! well-formed programs survive printing and reparsing. Driven by the
//! in-tree seeded generator so the suite runs with no external
//! dependencies; a failure message names the seed to reproduce.

use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::{parse_program, print_program, validate};

const CASES: u64 = 128;

/// Every generated program is structurally valid.
#[test]
fn generated_programs_validate() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        assert_eq!(validate(&p), Ok(()), "seed {seed}");
    }
}

/// print → parse yields a program with identical shape counts.
#[test]
fn print_parse_preserves_counts() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let text = print_program(&p);
        let q = parse_program(&text).expect("printed program reparses");
        assert_eq!(p.classes.len(), q.classes.len(), "seed {seed}");
        assert_eq!(p.methods.len(), q.methods.len(), "seed {seed}");
        assert_eq!(p.fields.len(), q.fields.len(), "seed {seed}");
        assert_eq!(p.allocs.len(), q.allocs.len(), "seed {seed}");
        assert_eq!(p.invokes.len(), q.invokes.len(), "seed {seed}");
        assert_eq!(p.instruction_count(), q.instruction_count(), "seed {seed}");
        assert_eq!(p.entry_points.len(), q.entry_points.len(), "seed {seed}");
        assert_eq!(validate(&q), Ok(()), "seed {seed}");
    }
}

/// print ∘ parse is a fixpoint after one round.
#[test]
fn print_parse_print_fixpoint() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let once = print_program(&parse_program(&print_program(&p)).unwrap());
        let twice = print_program(&parse_program(&once).unwrap());
        assert_eq!(once, twice, "seed {seed}");
    }
}
