//! Property tests for the textual format: randomly generated well-formed
//! programs survive printing and reparsing.

use proptest::prelude::*;
use rudoop_ir::arbitrary::{arb_program, ProgramShape};
use rudoop_ir::{parse_program, print_program, validate};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every generated program is structurally valid.
    #[test]
    fn generated_programs_validate(p in arb_program(ProgramShape::default())) {
        prop_assert_eq!(validate(&p), Ok(()));
    }

    /// print → parse yields a program with identical shape counts.
    #[test]
    fn print_parse_preserves_counts(p in arb_program(ProgramShape::default())) {
        let text = print_program(&p);
        let q = parse_program(&text).expect("printed program reparses");
        prop_assert_eq!(p.classes.len(), q.classes.len());
        prop_assert_eq!(p.methods.len(), q.methods.len());
        prop_assert_eq!(p.fields.len(), q.fields.len());
        prop_assert_eq!(p.allocs.len(), q.allocs.len());
        prop_assert_eq!(p.invokes.len(), q.invokes.len());
        prop_assert_eq!(p.instruction_count(), q.instruction_count());
        prop_assert_eq!(p.entry_points.len(), q.entry_points.len());
        prop_assert_eq!(validate(&q), Ok(()));
    }

    /// print ∘ parse is a fixpoint after one round.
    #[test]
    fn print_parse_print_fixpoint(p in arb_program(ProgramShape::default())) {
        let once = print_program(&parse_program(&print_program(&p)).unwrap());
        let twice = print_program(&parse_program(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
