//! Seeded property tests for the call-graph condensation layer.
//!
//! Each property runs over generated programs (pure functions of their
//! seed, so failures reproduce from the seed alone): the condensation is a
//! DAG, component ids are a stable reverse-topological order, two builds
//! are identical, antichain levels contain no internal call edges, and
//! membership agrees with the naive quadratic reference implementation.

use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::{naive_components, ClassHierarchy, MethodId, SccDag, StaticCallGraph};

const SEEDS: u64 = 48;

fn shape() -> ProgramShape {
    ProgramShape {
        max_methods: 10,
        ..ProgramShape::default()
    }
}

#[test]
fn condensation_is_a_dag_in_reverse_topological_order() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let g = StaticCallGraph::build(&p, &h);
        let dag = SccDag::from_graph(&g);
        // Every cross-component call edge points at a smaller component id:
        // ascending ids are exactly the bottom-up schedule, and no id order
        // can exist for a cyclic condensation — DAG-ness and stable
        // reverse-topological order in one check.
        for (m, callees) in g.callees.iter() {
            for &callee in callees {
                if dag.component[m] != dag.component[callee] {
                    assert!(
                        dag.component[callee] < dag.component[m],
                        "seed {seed}: edge {:?} -> {:?} not bottom-up",
                        m,
                        callee
                    );
                }
            }
        }
        for (c, comps) in dag.callee_comps.iter().enumerate() {
            for &cc in comps {
                assert!((cc as usize) < c, "seed {seed}: condensed edge not topo");
            }
        }
    }
}

#[test]
fn condensation_is_deterministic() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let a = SccDag::build(&p, &h);
        let b = SccDag::build(&p, &h);
        assert_eq!(a.component, b.component, "seed {seed}");
        assert_eq!(a.members, b.members, "seed {seed}");
        assert_eq!(a.callee_comps, b.callee_comps, "seed {seed}");
        assert_eq!(a.cyclic, b.cyclic, "seed {seed}");
        assert_eq!(a.levels, b.levels, "seed {seed}");
    }
}

#[test]
fn every_method_is_in_exactly_one_component() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let dag = SccDag::build(&p, &h);
        let mut seen = vec![0u32; p.methods.len()];
        for (c, comp) in dag.members.iter().enumerate() {
            assert!(!comp.is_empty(), "seed {seed}: empty component");
            let mut sorted = comp.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, comp, "seed {seed}: members not sorted");
            for &m in comp {
                assert_eq!(dag.component[m], c as u32, "seed {seed}");
                seen[m.0 as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "seed {seed}: not a partition");
    }
}

#[test]
fn antichain_levels_have_no_internal_edges_and_cover_all_components() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let dag = SccDag::build(&p, &h);
        let mut covered = 0usize;
        for level in &dag.levels {
            covered += level.len();
            for &c in level {
                for &cc in &dag.callee_comps[c as usize] {
                    assert!(
                        !level.contains(&cc),
                        "seed {seed}: call edge inside one antichain level"
                    );
                }
            }
        }
        assert_eq!(covered, dag.len(), "seed {seed}: levels do not partition");
    }
}

#[test]
fn membership_agrees_with_naive_reference() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let g = StaticCallGraph::build(&p, &h);
        let dag = SccDag::from_graph(&g);
        let mut tarjan: Vec<Vec<MethodId>> = dag.members.clone();
        tarjan.sort();
        let mut naive = naive_components(&g);
        for comp in &mut naive {
            comp.sort_unstable();
        }
        naive.sort();
        assert_eq!(tarjan, naive, "seed {seed}");
    }
}

#[test]
fn cyclic_flag_matches_reachability() {
    for seed in 0..SEEDS {
        let p = generate(&shape(), seed);
        let h = ClassHierarchy::new(&p);
        let g = StaticCallGraph::build(&p, &h);
        let dag = SccDag::from_graph(&g);
        for (c, comp) in dag.members.iter().enumerate() {
            let has_internal_edge = comp.iter().any(|&m| {
                g.callees[m]
                    .iter()
                    .any(|&callee| dag.component[callee] as usize == c)
            });
            assert_eq!(dag.cyclic[c], has_internal_edge, "seed {seed} comp {c}");
        }
    }
}
