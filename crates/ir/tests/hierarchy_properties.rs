//! Property-style tests for the class hierarchy: the interval-encoded
//! subtype test and the copy-down dispatch tables must agree with naive
//! walks, on seeded randomly generated programs.

use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::{ClassHierarchy, ClassId, Program};

const CASES: u64 = 64;

fn naive_is_subtype(p: &Program, mut sub: ClassId, sup: ClassId) -> bool {
    loop {
        if sub == sup {
            return true;
        }
        match p.classes[sub].superclass {
            Some(next) => sub = next,
            None => return false,
        }
    }
}

fn naive_lookup(p: &Program, class: ClassId, sig: rudoop_ir::SigId) -> Option<rudoop_ir::MethodId> {
    let mut cur = Some(class);
    while let Some(c) = cur {
        // Most-derived first: the declaring class itself, then ancestors.
        if let Some(&m) = p.classes[c]
            .methods
            .iter()
            .find(|&&m| p.methods[m].sig == sig && !p.methods[m].is_static)
        {
            return Some(m);
        }
        cur = p.classes[c].superclass;
    }
    None
}

#[test]
fn interval_subtype_agrees_with_naive_walk() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let h = ClassHierarchy::new(&p);
        for a in p.classes.ids() {
            for b in p.classes.ids() {
                assert_eq!(
                    h.is_subtype(a, b),
                    naive_is_subtype(&p, a, b),
                    "seed {seed}: subtype disagreement at {a:?},{b:?}"
                );
            }
        }
    }
}

#[test]
fn dispatch_agrees_with_naive_walk() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let h = ClassHierarchy::new(&p);
        for c in p.classes.ids() {
            for s in p.sigs.ids() {
                assert_eq!(
                    h.lookup(c, s),
                    naive_lookup(&p, c, s),
                    "seed {seed}: lookup disagreement at {c:?},{s:?}"
                );
            }
        }
    }
}

#[test]
fn subclasses_partition_the_hierarchy() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let h = ClassHierarchy::new(&p);
        let mut child_count = 0usize;
        let mut roots = 0usize;
        for c in p.classes.ids() {
            child_count += h.subclasses(c).len();
            if p.classes[c].superclass.is_none() {
                roots += 1;
            }
            for &k in h.subclasses(c) {
                assert_eq!(p.classes[k].superclass, Some(c), "seed {seed}");
            }
        }
        assert_eq!(child_count + roots, p.classes.len(), "seed {seed}");
    }
}
