//! Tier-2 lints: backed by a [`PointsToResult`](rudoop_core::PointsToResult), typically the
//! context-insensitive pre-analysis of the introspective pipeline.
//!
//! These lints are the "diagnostics view" of the paper's precision clients
//! ([`rudoop_core::clients`]): instead of counting imprecision, they point
//! at the instructions responsible. Two exact agreements tie the tiers to
//! the clients and are enforced by tests:
//!
//! - `#I001 + #I002 = PrecisionMetrics::casts_may_fail` — the client counts
//!   reachable casts with *some* non-conforming pointee; the lints split
//!   that set into "all pointees non-conforming" (`I001`, the cast is
//!   guaranteed to fail if executed) and "mixed" (`I002`, may fail);
//! - `#I004 = |methods| − PrecisionMetrics::reachable_methods`.
//!
//! | code | name | finding |
//! |------|------|---------|
//! | `I001` | `cast-guaranteed-fail` | every possible runtime type fails the cast |
//! | `I002` | `cast-may-fail` | some possible runtime type fails the cast |
//! | `I003` | `empty-receiver` | a virtual call's receiver points to nothing |
//! | `I004` | `dead-method` | a method is unreachable from the entry points |
//! | `I005` | `monomorphic-call` | a virtual call has exactly one target (hint) |

use rudoop_ir::{Instruction, InvokeKind, VarId};

use crate::diagnostics::{Diagnostic, Severity};
use crate::lint::{Lint, LintContext};

/// All tier-2 lints, in code order.
pub fn lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(CastGuaranteedFail),
        Box::new(CastMayFail),
        Box::new(EmptyReceiver),
        Box::new(DeadMethod),
        Box::new(MonomorphicCall),
    ]
}

/// Renders the first few pointee classes of a variable, for notes.
fn pointee_preview(cx: &LintContext<'_>, var: VarId) -> String {
    let pts = cx.points_to.expect("tier-2 lint without points-to");
    let names: Vec<&str> = pts.var_pts[var]
        .iter()
        .take(3)
        .map(|&h| cx.program.classes[cx.program.allocs[h].class].name.as_str())
        .collect();
    let total = pts.var_pts[var].len();
    if total > names.len() {
        format!("{} and {} more", names.join(", "), total - names.len())
    } else {
        names.join(", ")
    }
}

/// `I001`: a reachable cast whose source has a non-empty points-to set in
/// which **every** allocation site's class fails the cast. If the cast ever
/// executes on a non-null value, it throws.
pub struct CastGuaranteedFail;

impl Lint for CastGuaranteedFail {
    fn code(&self) -> &'static str {
        "I001"
    }
    fn name(&self) -> &'static str {
        "cast-guaranteed-fail"
    }
    fn description(&self) -> &'static str {
        "every runtime type the cast source may have fails the cast"
    }
    fn needs_points_to(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (p, r) = (
            cx.program,
            cx.points_to.expect("tier-2 lint without points-to"),
        );
        for (site, from, class) in p.cast_sites() {
            if !r.reachable_methods.contains(site.method) {
                continue;
            }
            let pts = &r.var_pts[from];
            if !pts.is_empty()
                && pts
                    .iter()
                    .all(|&h| !cx.hierarchy.is_subtype(p.allocs[h].class, class))
            {
                out.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warning,
                        format!(
                            "cast of `{}` to `{}` is guaranteed to fail",
                            p.vars[from].name, p.classes[class].name
                        ),
                    )
                    .at_instr(p, site.method, site.index)
                    .note(format!(
                        "possible runtime types: {}",
                        pointee_preview(cx, from)
                    )),
                );
            }
        }
    }
}

/// `I002`: a reachable cast whose source may hold both conforming and
/// non-conforming objects. Together with `I001` this partitions exactly the
/// casts the `casts_may_fail` client counts.
pub struct CastMayFail;

impl Lint for CastMayFail {
    fn code(&self) -> &'static str {
        "I002"
    }
    fn name(&self) -> &'static str {
        "cast-may-fail"
    }
    fn description(&self) -> &'static str {
        "some runtime type the cast source may have fails the cast"
    }
    fn needs_points_to(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (p, r) = (
            cx.program,
            cx.points_to.expect("tier-2 lint without points-to"),
        );
        for (site, from, class) in p.cast_sites() {
            if !r.reachable_methods.contains(site.method) {
                continue;
            }
            let pts = &r.var_pts[from];
            let bad = pts
                .iter()
                .filter(|&&h| !cx.hierarchy.is_subtype(p.allocs[h].class, class))
                .count();
            if bad > 0 && bad < pts.len() {
                out.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warning,
                        format!(
                            "cast of `{}` to `{}` may fail: {bad} of {} possible runtime types do not conform",
                            p.vars[from].name,
                            p.classes[class].name,
                            pts.len()
                        ),
                    )
                    .at_instr(p, site.method, site.index),
                );
            }
        }
    }
}

/// `I003`: a virtual call in a reachable method whose receiver points to no
/// allocation site — the analysis's analogue of a guaranteed
/// null-pointer dereference: the call can never dispatch anywhere.
pub struct EmptyReceiver;

impl Lint for EmptyReceiver {
    fn code(&self) -> &'static str {
        "I003"
    }
    fn name(&self) -> &'static str {
        "empty-receiver"
    }
    fn description(&self) -> &'static str {
        "a virtual call's receiver has an empty points-to set"
    }
    fn needs_points_to(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (p, r) = (
            cx.program,
            cx.points_to.expect("tier-2 lint without points-to"),
        );
        for (mid, method) in p.methods.iter() {
            if !r.reachable_methods.contains(mid) {
                continue;
            }
            for (i, instr) in method.body.iter().enumerate() {
                let (Instruction::Call { invoke } | Instruction::Spawn { invoke }) = *instr else {
                    continue;
                };
                let InvokeKind::Virtual { base, .. } = p.invokes[invoke].kind else {
                    continue;
                };
                if r.var_pts[base].is_empty() {
                    out.push(
                        Diagnostic::new(
                            self.code(),
                            Severity::Warning,
                            format!(
                                "virtual call on `{}` never dispatches: receiver points to nothing",
                                p.vars[base].name
                            ),
                        )
                        .at_instr(p, mid, i)
                        .note("the receiver is always null here (or the call is dead code)"),
                    );
                }
            }
        }
    }
}

/// `I004`: a method the analysis proves unreachable from the entry points.
/// The count equals `|methods| − reachable_methods` of the same result.
pub struct DeadMethod;

impl Lint for DeadMethod {
    fn code(&self) -> &'static str {
        "I004"
    }
    fn name(&self) -> &'static str {
        "dead-method"
    }
    fn description(&self) -> &'static str {
        "a method is unreachable from the program entry points"
    }
    fn needs_points_to(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (p, r) = (
            cx.program,
            cx.points_to.expect("tier-2 lint without points-to"),
        );
        for (mid, _) in p.methods.iter() {
            if !r.reachable_methods.contains(mid) {
                out.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warning,
                        format!(
                            "method `{}` is unreachable from the entry points",
                            p.method_display(mid)
                        ),
                    )
                    .in_method(p, mid),
                );
            }
        }
    }
}

/// `I005`: a reachable virtual call with exactly one resolved target — a
/// devirtualization opportunity. A hint, not a problem: default severity is
/// [`Severity::Note`]. Reachable virtual sites with ≥ 1 target split into
/// these and the `polymorphic_call_sites` the client counts.
pub struct MonomorphicCall;

impl Lint for MonomorphicCall {
    fn code(&self) -> &'static str {
        "I005"
    }
    fn name(&self) -> &'static str {
        "monomorphic-call"
    }
    fn description(&self) -> &'static str {
        "a virtual call always dispatches to the same method (devirtualizable)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn needs_points_to(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (p, r) = (
            cx.program,
            cx.points_to.expect("tier-2 lint without points-to"),
        );
        for (mid, method) in p.methods.iter() {
            if !r.reachable_methods.contains(mid) {
                continue;
            }
            for (i, instr) in method.body.iter().enumerate() {
                let (Instruction::Call { invoke } | Instruction::Spawn { invoke }) = *instr else {
                    continue;
                };
                if !matches!(p.invokes[invoke].kind, InvokeKind::Virtual { .. }) {
                    continue;
                }
                let Some(targets) = r.call_targets.get(&invoke) else {
                    continue;
                };
                if let [only] = targets.as_slice() {
                    out.push(
                        Diagnostic::new(
                            self.code(),
                            Severity::Note,
                            format!(
                                "virtual call always dispatches to `{}`",
                                p.method_display(*only)
                            ),
                        )
                        .at_instr(p, mid, i),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::clients::PrecisionMetrics;
    use rudoop_core::policy::Insensitive;
    use rudoop_core::solver::{analyze, PointsToResult, SolverConfig};
    use rudoop_ir::{ClassHierarchy, Program, ProgramBuilder};

    fn run_on<'a>(p: &'a Program, h: &'a ClassHierarchy, r: &'a PointsToResult) -> Vec<Diagnostic> {
        let cx = LintContext {
            program: p,
            hierarchy: h,
            points_to: Some(r),
            taint: None,
            races: None,
        };
        let mut out = Vec::new();
        for lint in lints() {
            lint.check(&cx, &mut out);
        }
        out
    }

    /// Dog/Cat conflated through an insensitively-analyzed id method: one
    /// may-fail cast (mixed pointees), one guaranteed-failing cast, one
    /// dead method, one polymorphic and one monomorphic call.
    fn fixture() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let animal = b.class("Animal", Some(obj));
        let dog = b.class("Dog", Some(animal));
        let cat = b.class("Cat", Some(animal));
        let stone = b.class("Stone", Some(obj));
        b.method(dog, "speak", &[], false);
        b.method(cat, "speak", &[], false);
        b.method(obj, "never_called", &[], true);

        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);

        let main = b.method(obj, "main", &[], true);
        let d = b.var(main, "d");
        let c = b.var(main, "c");
        let s = b.var(main, "s");
        let rd = b.var(main, "rd");
        let rc = b.var(main, "rc");
        let dd = b.var(main, "dd");
        let sd = b.var(main, "sd");
        b.alloc(main, d, dog);
        b.alloc(main, c, cat);
        b.alloc(main, s, stone);
        b.scall(main, Some(rd), id_m, &[d]);
        b.scall(main, Some(rc), id_m, &[c]);
        // Insensitively rd ⊇ {Dog, Cat}: polymorphic dispatch + mixed cast.
        b.vcall(main, None, rd, "speak", &[]);
        b.cast(main, dd, rd, dog);
        // s is only ever a Stone: casting to Dog is guaranteed to fail, and
        // speak on d is monomorphic (d is exactly the Dog allocation).
        b.cast(main, sd, s, dog);
        b.vcall(main, None, d, "speak", &[]);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn fixture_findings_match_expectations() {
        let p = fixture();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let diags = run_on(&p, &h, &r);

        let count = |code: &str| diags.iter().filter(|d| d.code == code).count();
        assert_eq!(count("I001"), 1, "{diags:?}"); // Stone → Dog
        assert_eq!(count("I002"), 1, "{diags:?}"); // {Dog, Cat} → Dog
        assert_eq!(count("I004"), 1, "{diags:?}"); // never_called
        assert_eq!(count("I005"), 1, "{diags:?}"); // d.speak()
        assert_eq!(count("I003"), 0, "{diags:?}");
    }

    #[test]
    fn cast_lints_partition_the_client_count() {
        let p = fixture();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let m = PrecisionMetrics::compute(&p, &h, &r);
        let diags = run_on(&p, &h, &r);
        let casts = diags
            .iter()
            .filter(|d| d.code == "I001" || d.code == "I002")
            .count();
        assert_eq!(casts, m.casts_may_fail);
        let dead = diags.iter().filter(|d| d.code == "I004").count();
        assert_eq!(dead, p.methods.len() - m.reachable_methods);
    }

    #[test]
    fn empty_receiver_fires_on_undispatchable_call() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        b.method(obj, "f", &[], false);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.vcall(main, None, x, "f", &[]); // x points to nothing
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let diags = run_on(&p, &h, &r);
        assert_eq!(diags.iter().filter(|d| d.code == "I003").count(), 1);
        // The call never resolves, so it is neither mono- nor polymorphic.
        assert_eq!(diags.iter().filter(|d| d.code == "I005").count(), 0);
    }

    #[test]
    fn context_sensitivity_can_remove_findings() {
        use rudoop_core::policy::CallSiteSensitive;
        let p = fixture();
        let h = ClassHierarchy::new(&p);
        let r = analyze(
            &p,
            &h,
            &CallSiteSensitive::new(1, 0),
            &SolverConfig::default(),
        );
        let diags = run_on(&p, &h, &r);
        // 1-call-site separates the two id calls: the mixed cast becomes
        // provably safe; the guaranteed failure (Stone → Dog) remains.
        assert_eq!(
            diags.iter().filter(|d| d.code == "I002").count(),
            0,
            "{diags:?}"
        );
        assert_eq!(
            diags.iter().filter(|d| d.code == "I001").count(),
            1,
            "{diags:?}"
        );
    }
}
