//! The lint framework: the [`Lint`] trait, the [`LintContext`] every lint
//! receives, and the [`LintRegistry`] that owns the lint set and per-lint
//! reporting levels.

use rudoop_core::races::RaceResult;
use rudoop_core::solver::PointsToResult;
use rudoop_core::taint::TaintResult;
use rudoop_ir::{ClassHierarchy, Program};

use crate::diagnostics::{sort_diagnostics, Diagnostic, Severity};
use crate::{inter, intra, races, taint};

/// Everything a lint may inspect.
///
/// Tier-1 lints use only `program` (and occasionally `hierarchy`); tier-2
/// lints additionally read `points_to`, the projection of an analysis run —
/// typically the context-insensitive pre-analysis, though any policy's
/// result works (findings then reflect that policy's precision). The taint
/// lints (`T001`–`T004`) read `taint`, the output of
/// [`rudoop_core::analyze_taint`] over the same run.
pub struct LintContext<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// Subtyping and dispatch queries.
    pub hierarchy: &'a ClassHierarchy,
    /// Points-to facts; `None` disables tier-2 lints.
    pub points_to: Option<&'a PointsToResult>,
    /// Taint facts; `None` disables the `T`-series lints.
    pub taint: Option<&'a TaintResult>,
    /// Race facts; `None` disables the `R`-series lints.
    pub races: Option<&'a RaceResult>,
}

/// Per-lint reporting level, in the spirit of `rustc`'s `-A/-W/-D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Do not run or report the lint.
    Allow,
    /// Report with the lint's default severity.
    Warn,
    /// Report as [`Severity::Error`] (affects the CLI exit code).
    Deny,
}

/// One lint: a stable code, self-description, and a checker.
pub trait Lint {
    /// Stable diagnostic code (`L001`, `I003`, …).
    fn code(&self) -> &'static str;
    /// Short kebab-case name, e.g. `dead-store`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Severity used at [`Level::Warn`]; hints override this to
    /// [`Severity::Note`].
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    /// Whether the lint reads [`LintContext::points_to`]. Such lints are
    /// skipped (not errored) when no points-to result is supplied.
    fn needs_points_to(&self) -> bool {
        false
    }
    /// Whether the lint reads [`LintContext::taint`]. Such lints are
    /// skipped (not errored) when no taint result is supplied — notably
    /// when the supervisor exhausted its ladder and taint was not run.
    fn needs_taint(&self) -> bool {
        false
    }
    /// Whether the lint reads [`LintContext::races`]. Such lints are
    /// skipped (not errored) when no race result is supplied — notably
    /// when the supervisor exhausted its ladder and race detection was
    /// not run.
    fn needs_races(&self) -> bool {
        false
    }
    /// Runs the lint, appending findings to `out`. The registry overwrites
    /// each finding's severity according to the configured level, so lints
    /// may emit with any severity they like.
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered set of lints plus a reporting level for each.
pub struct LintRegistry {
    lints: Vec<(Box<dyn Lint>, Level)>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LintRegistry { lints: Vec::new() }
    }

    /// The full built-in suite — tier 1 (`L001`–`L005`), tier 2
    /// (`I001`–`I005`), the taint tier (`T001`–`T004`), and the race tier
    /// (`R001`–`R004`) — all at [`Level::Warn`].
    pub fn with_defaults() -> Self {
        let mut r = LintRegistry::new();
        for lint in intra::lints() {
            r.register(lint);
        }
        for lint in inter::lints() {
            r.register(lint);
        }
        for lint in taint::lints() {
            r.register(lint);
        }
        for lint in races::lints() {
            r.register(lint);
        }
        r
    }

    /// Adds a lint at [`Level::Warn`].
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push((lint, Level::Warn));
    }

    /// Sets the level of the lint with the given code. Returns `false` (and
    /// changes nothing) when no registered lint has that code.
    pub fn set_level(&mut self, code: &str, level: Level) -> bool {
        let mut found = false;
        for (lint, l) in &mut self.lints {
            if lint.code() == code {
                *l = level;
                found = true;
            }
        }
        found
    }

    /// Iterates over `(code, name, description, level)` for every registered
    /// lint, in registration order.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &'static str, Level)> + '_ {
        self.lints
            .iter()
            .map(|(lint, level)| (lint.code(), lint.name(), lint.description(), *level))
    }

    /// Runs every enabled lint and returns the findings in stable render
    /// order. Lints at [`Level::Allow`] are skipped, as are tier-2 lints
    /// when `cx.points_to` is `None`. [`Level::Deny`] escalates findings to
    /// [`Severity::Error`].
    pub fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        self.run_traced(cx, &None)
    }

    /// [`run`](LintRegistry::run) with telemetry: the whole pass runs under
    /// a `lint-pass` span, each enabled lint under a nested `lint` span
    /// (arg: its code), and per-code finding tallies land in the
    /// deterministic counter stream as `lint.<code>.findings`. Passing
    /// `&None` is equivalent to [`run`](LintRegistry::run).
    pub fn run_traced(
        &self,
        cx: &LintContext<'_>,
        tele: &rudoop_core::telemetry::TelemetryHandle,
    ) -> Vec<Diagnostic> {
        let pass_span = rudoop_core::telemetry::span_opt(tele, "lint-pass");
        let mut out = Vec::new();
        for (lint, level) in &self.lints {
            match level {
                Level::Allow => continue,
                Level::Warn | Level::Deny => {}
            }
            if lint.needs_points_to() && cx.points_to.is_none() {
                continue;
            }
            if lint.needs_taint() && cx.taint.is_none() {
                continue;
            }
            if lint.needs_races() && cx.races.is_none() {
                continue;
            }
            let lint_span = rudoop_core::telemetry::span_opt(tele, "lint");
            if let Some(s) = &lint_span {
                s.arg("code", lint.code());
            }
            let start = out.len();
            lint.check(cx, &mut out);
            let severity = match level {
                Level::Deny => Severity::Error,
                _ => lint.default_severity(),
            };
            for d in &mut out[start..] {
                d.severity = severity;
            }
            if let Some(t) = tele.as_deref() {
                t.counter(
                    &format!("lint.{}.findings", lint.code()),
                    (out.len() - start) as u64,
                );
            }
        }
        sort_diagnostics(&mut out);
        if let Some(s) = &pass_span {
            s.arg("findings", out.len());
        }
        drop(pass_span);
        out
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        LintRegistry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::ProgramBuilder;

    fn self_move_program() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.mov(main, x, x);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn default_registry_has_eighteen_lints_with_unique_codes() {
        let r = LintRegistry::with_defaults();
        let codes: Vec<_> = r.iter().map(|(c, ..)| c).collect();
        assert_eq!(codes.len(), 18);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "duplicate lint code");
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let p = self_move_program();
        let h = ClassHierarchy::new(&p);
        let cx = LintContext {
            program: &p,
            hierarchy: &h,
            points_to: None,
            taint: None,
            races: None,
        };

        let mut r = LintRegistry::with_defaults();
        assert!(r.run(&cx).iter().any(|d| d.code == "L005"));

        assert!(r.set_level("L005", Level::Allow));
        assert!(!r.run(&cx).iter().any(|d| d.code == "L005"));

        assert!(r.set_level("L005", Level::Deny));
        let denied = r.run(&cx);
        let hit = denied.iter().find(|d| d.code == "L005").unwrap();
        assert_eq!(hit.severity, Severity::Error);
    }

    #[test]
    fn unknown_code_is_rejected() {
        let mut r = LintRegistry::with_defaults();
        assert!(!r.set_level("Z999", Level::Deny));
    }

    #[test]
    fn tier2_lints_are_skipped_without_points_to() {
        let p = self_move_program();
        let h = ClassHierarchy::new(&p);
        let cx = LintContext {
            program: &p,
            hierarchy: &h,
            points_to: None,
            taint: None,
            races: None,
        };
        let diags = LintRegistry::with_defaults().run(&cx);
        assert!(diags.iter().all(|d| d.code.starts_with('L')), "{diags:?}");
    }
}
