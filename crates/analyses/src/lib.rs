//! # rudoop-analyses
//!
//! A diagnostics framework and lint suite over the rudoop IL, backed by
//! points-to facts from [`rudoop_core`].
//!
//! The crate has three layers:
//!
//! - [`diagnostics`] — the [`Diagnostic`] type (stable code, severity,
//!   method, source span, message, notes), a deterministic text renderer,
//!   and a bridge that reports [`rudoop_ir::validate`](fn@rudoop_ir::validate) violations as
//!   `E`-coded diagnostics, so well-formedness errors and lint findings
//!   surface uniformly;
//! - [`lint`] — the [`Lint`] trait, the [`LintContext`] handed to every
//!   lint, and the [`LintRegistry`] with per-lint allow/warn/deny levels;
//! - the lints themselves, in two tiers:
//!   - [`intra`] — **tier 1**, purely syntactic, per-method
//!     (`L001`–`L005`): use-before-def, dead store, unused variable,
//!     unreachable-after-return, self-move;
//!   - [`inter`] — **tier 2**, consuming a
//!     [`PointsToResult`](rudoop_core::PointsToResult)
//!     (`I001`–`I005`): guaranteed-failing cast, cast-may-fail,
//!     always-empty virtual-call receiver, dead method, and
//!     monomorphic-call-site hints. The cast and dead-method lints agree
//!     exactly with the paper's precision clients in
//!     [`rudoop_core::clients`]: `#I001 + #I002 = casts_may_fail` and
//!     `#I004 = |methods| - reachable_methods`;
//!   - [`taint`] — the **taint tier**, consuming a
//!     [`TaintResult`](rudoop_core::TaintResult) (`T001`–`T004`):
//!     unsanitized source→sink flows with derivation traces, sanitizers
//!     bypassed through heap aliases, flows crossing merged heap contexts,
//!     and dead sanitizers;
//!   - [`races`] — the **race tier**, consuming a
//!     [`RaceResult`](rudoop_core::RaceResult) (`R001`–`R004`): data-race
//!     witnesses with per-thread traces, suspect singleton-lock guards,
//!     cross-thread object escapes, and dead lock regions.
//!
//! # Examples
//!
//! ```
//! use rudoop_analyses::{validate_diagnostics, LintContext, LintRegistry};
//! use rudoop_core::policy::Insensitive;
//! use rudoop_core::solver::{analyze, SolverConfig};
//! use rudoop_ir::{parse_program, ClassHierarchy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "class Object\n\
//!      method Object.main() static {\n  a = new Object\n  a = a\n}\n\
//!      entry Object.main\n",
//! )?;
//! assert!(validate_diagnostics(&program).is_empty());
//! let hierarchy = ClassHierarchy::new(&program);
//! let result = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
//! let registry = LintRegistry::with_defaults();
//! let cx = LintContext {
//!     program: &program,
//!     hierarchy: &hierarchy,
//!     points_to: Some(&result),
//!     taint: None,
//!     races: None,
//! };
//! let diags = registry.run(&cx);
//! // `a = a` is a self-move (L005).
//! assert!(diags.iter().any(|d| d.code == "L005"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagnostics;
pub mod inter;
pub mod intra;
pub mod lint;
pub mod races;
pub mod taint;

pub use diagnostics::{render, render_json, validate_diagnostics, Diagnostic, Severity};
pub use lint::{Level, Lint, LintContext, LintRegistry};
