//! The diagnostic data model, a deterministic text renderer, and the bridge
//! from [`rudoop_ir::validate`](fn@rudoop_ir::validate) errors to `E`-coded diagnostics.
//!
//! Every finding — whether a well-formedness violation or a lint hit — is a
//! [`Diagnostic`]: a stable code, a severity, an optional anchor (method and
//! instruction index, with the source [`Span`] when the program came from the
//! textual frontend), a one-line message and zero or more notes. Codes are
//! permanent identifiers: `Exxx` for validity errors, `Lxxx` for tier-1
//! (intraprocedural) lints, `Ixxx` for tier-2 (points-to-backed) lints.

use std::fmt;

use rudoop_ir::{Idx, MethodId, Program, Span, ValidateError};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational hint (e.g. a devirtualization opportunity).
    Note,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// The program is ill-formed or certainly wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding, produced by the validator bridge or by a lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E001`, `L002`, `I004`, …). Codes never change meaning.
    pub code: &'static str,
    /// Severity after registry levels are applied.
    pub severity: Severity,
    /// The method the finding is about, if any.
    pub method: Option<MethodId>,
    /// Index of the offending instruction in the method body, if any.
    pub instr: Option<usize>,
    /// Source position ([`Span::NONE`] for programmatically built programs).
    pub span: Span,
    /// One-line description of the finding.
    pub message: String,
    /// Additional context lines, rendered indented under the message.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A program-level diagnostic with no anchor.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            method: None,
            instr: None,
            span: Span::NONE,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Anchors the diagnostic at a method header.
    #[must_use]
    pub fn in_method(mut self, program: &Program, method: MethodId) -> Self {
        self.method = Some(method);
        self.span = program.methods[method].decl_span;
        self
    }

    /// Anchors the diagnostic at the `index`-th instruction of `method`.
    #[must_use]
    pub fn at_instr(mut self, program: &Program, method: MethodId, index: usize) -> Self {
        self.method = Some(method);
        self.instr = Some(index);
        self.span = program.methods[method].span_of(index);
        self
    }

    /// Appends a note line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The deterministic ordering key used by [`render`] and
    /// [`sort_diagnostics`]: program-level first, then by method, then by
    /// instruction position (header anchors before body anchors), then code.
    fn sort_key(&self) -> (u32, u64, &'static str, &str) {
        let method = self.method.map_or(0, |m| m.index() as u32 + 1);
        let instr = self.instr.map_or(0, |i| i as u64 + 1);
        (method, instr, self.code, &self.message)
    }

    /// Renders the location part, e.g. `Object.main/0 @ 4:3` or
    /// `Object.main/0 @ #2` when no source span is recorded.
    fn location(&self, program: &Program) -> Option<String> {
        let method = self.method?;
        let name = program.method_display(method);
        Some(if self.span.is_known() {
            format!("{name} @ {}", self.span)
        } else if let Some(i) = self.instr {
            format!("{name} @ #{i}")
        } else {
            name
        })
    }
}

/// Sorts diagnostics into the stable render order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Whether any diagnostic in the batch is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders a batch of diagnostics as stable plain text: one
/// `severity[code] location: message` line per diagnostic, notes indented
/// beneath, sorted by (method, instruction, code) so output is reproducible
/// across runs and lint registration order.
pub fn render(program: &Program, diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<Diagnostic> = diags.to_vec();
    sort_diagnostics(&mut sorted);
    let mut out = String::new();
    for d in &sorted {
        match d.location(program) {
            Some(loc) => out.push_str(&format!(
                "{}[{}] {}: {}\n",
                d.severity, d.code, loc, d.message
            )),
            None => out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message)),
        }
        for note in &d.notes {
            out.push_str(&format!("    note: {note}\n"));
        }
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a batch of diagnostics as a JSON array, one object per
/// diagnostic in the same stable order as [`render`].
///
/// The schema is part of the CLI contract and only grows, never changes:
/// every object carries exactly the keys `code`, `level`, `span`,
/// `message`, `location`, and `notes`, in that order. `span` is
/// `"line:col"` or `null` when the program has no source text; `location`
/// is the rendered anchor (`"Class.method/arity @ 4:3"`) or `null`;
/// `notes` is an array of strings.
pub fn render_json(program: &Program, diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<Diagnostic> = diags.to_vec();
    sort_diagnostics(&mut sorted);
    let mut out = String::from("[");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let span = if d.span.is_known() {
            format!("\"{}\"", d.span)
        } else {
            "null".to_owned()
        };
        let location = match d.location(program) {
            Some(loc) => format!("\"{}\"", json_escape(&loc)),
            None => "null".to_owned(),
        };
        let notes: Vec<String> = d
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        out.push_str(&format!(
            "\n  {{\"code\":\"{}\",\"level\":\"{}\",\"span\":{},\"message\":\"{}\",\
             \"location\":{},\"notes\":[{}]}}",
            d.code,
            d.severity,
            span,
            json_escape(&d.message),
            location,
            notes.join(",")
        ));
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Runs [`rudoop_ir::validate`](fn@rudoop_ir::validate) and reports every violation as an `E`-coded
/// [`Severity::Error`] diagnostic. An empty result means the program is
/// well-formed.
pub fn validate_diagnostics(program: &Program) -> Vec<Diagnostic> {
    match rudoop_ir::validate(program) {
        Ok(()) => Vec::new(),
        Err(errors) => errors
            .iter()
            .map(|e| validate_error_to_diagnostic(program, e))
            .collect(),
    }
}

/// Converts one [`ValidateError`] into its diagnostic form. Codes `E001`
/// through `E008` are stable per variant.
pub fn validate_error_to_diagnostic(program: &Program, error: &ValidateError) -> Diagnostic {
    match *error {
        ValidateError::CyclicHierarchy(c) => Diagnostic::new(
            "E001",
            Severity::Error,
            format!(
                "class `{}` participates in a superclass cycle",
                program.classes[c].name
            ),
        ),
        ValidateError::ForeignVariable { method, var } => Diagnostic::new(
            "E002",
            Severity::Error,
            format!(
                "uses variable `{}` belonging to another method",
                program.var_display(var)
            ),
        )
        .in_method(program, method),
        ValidateError::ArityMismatch {
            method,
            expected,
            found,
        } => Diagnostic::new(
            "E003",
            Severity::Error,
            format!("call passes {found} argument(s), callee expects {expected}"),
        )
        .in_method(program, method),
        ValidateError::WrongCallKind { method, target } => Diagnostic::new(
            "E004",
            Severity::Error,
            format!(
                "call targets `{}` with the wrong call kind",
                program.method_display(target)
            ),
        )
        .in_method(program, method),
        ValidateError::AbstractAllocation(c) => Diagnostic::new(
            "E005",
            Severity::Error,
            format!("allocation of abstract class `{}`", program.classes[c].name),
        ),
        ValidateError::InstanceEntryPoint(m) => Diagnostic::new(
            "E006",
            Severity::Error,
            "entry point is an instance method; entry points must be static",
        )
        .in_method(program, m),
        ValidateError::ReturnWithoutFormal(m) => Diagnostic::new(
            "E007",
            Severity::Error,
            "returns a value but declares no formal return variable",
        )
        .in_method(program, m),
        ValidateError::DanglingId { table, raw } => Diagnostic::new(
            "E008",
            Severity::Error,
            format!("dangling id {raw} in table {table}"),
        ),
        ValidateError::MalformedSpawn(m) => Diagnostic::new(
            "E009",
            Severity::Error,
            "spawn must carry a virtual run/0 call with no arguments and no result",
        )
        .in_method(program, m),
        ValidateError::UnbalancedMonitor { method } => Diagnostic::new(
            "E010",
            Severity::Error,
            "monitorenter/monitorexit regions must nest properly and close by the end of the body",
        )
        .in_method(program, method),
    }
}

/// Every `E`-code the validator bridge can emit, in code order. The
/// documentation-exhaustiveness test compares this list (plus the lint
/// registry) against the README code table.
pub const VALIDATION_CODES: &[&str] = &[
    "E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E009", "E010",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::ProgramBuilder;

    fn tiny() -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.entry(main);
        (b.finish(), main)
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let (p, main) = tiny();
        let d1 = Diagnostic::new("L002", Severity::Warning, "second").at_instr(&p, main, 0);
        let d2 = Diagnostic::new("E001", Severity::Error, "first");
        // Registration order reversed relative to render order.
        let text = render(&p, &[d1, d2]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "error[E001]: first");
        assert_eq!(lines[1], "warning[L002] Object.main/0 @ #0: second");
    }

    #[test]
    fn notes_render_indented() {
        let (p, _) = tiny();
        let d = Diagnostic::new("I004", Severity::Warning, "msg").note("extra context");
        let text = render(&p, &[d]);
        assert_eq!(text, "warning[I004]: msg\n    note: extra context\n");
    }

    #[test]
    fn json_render_is_sorted_escaped_and_stable() {
        let (p, main) = tiny();
        let d1 = Diagnostic::new("L002", Severity::Warning, "has \"quotes\"\nand newline")
            .at_instr(&p, main, 0)
            .note("a note");
        let d2 = Diagnostic::new("E001", Severity::Error, "first");
        let text = render_json(&p, &[d1, d2]);
        assert_eq!(
            text,
            "[\n  {\"code\":\"E001\",\"level\":\"error\",\"span\":null,\"message\":\"first\",\
             \"location\":null,\"notes\":[]},\n  \
             {\"code\":\"L002\",\"level\":\"warning\",\"span\":null,\
             \"message\":\"has \\\"quotes\\\"\\nand newline\",\
             \"location\":\"Object.main/0 @ #0\",\"notes\":[\"a note\"]}\n]\n"
        );
    }

    #[test]
    fn json_render_of_empty_batch_is_an_empty_array() {
        let (p, _) = tiny();
        assert_eq!(render_json(&p, &[]), "[]\n");
    }

    #[test]
    fn valid_program_has_no_diagnostics() {
        let (p, _) = tiny();
        assert!(validate_diagnostics(&p).is_empty());
    }

    #[test]
    fn validate_errors_surface_with_e_codes() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "run", &[], false);
        b.entry(m);
        let p = b.finish();
        let diags = validate_diagnostics(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E006");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(has_errors(&diags));
    }

    #[test]
    fn severity_ordering_puts_errors_last() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
