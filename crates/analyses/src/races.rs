//! Race-tier lints: backed by a [`RaceResult`] from
//! [`rudoop_core::analyze_races`], itself layered on a points-to run.
//!
//! These lints are the diagnostics view of the race client. `R001` is the
//! race report proper (one finding per witness, with both sides' shortest
//! thread-root-to-access traces as notes); the other three interpret the
//! client's structural observations:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | `R001` | `data-race` | two parallel conflicting accesses share no lock |
//! | `R002` | `suspect-guard` | a lock's singleton allocation site may stand for several runtime objects |
//! | `R003` | `thread-escape` | an object is reached from a thread that never runs its allocator |
//! | `R004` | `dead-lock-region` | a monitor region guards no access and no call |
//!
//! All four are skipped (not errored) when [`LintContext::races`] is `None`
//! — in particular when the analysis supervisor exhausted its ladder and
//! race detection was skipped, so a degraded run never masquerades as
//! "no races".

use rudoop_core::races::RaceResult;

use crate::diagnostics::{Diagnostic, Severity};
use crate::lint::{Lint, LintContext};

/// All race-tier lints, in code order.
pub fn lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(DataRace),
        Box::new(SuspectGuard),
        Box::new(ThreadEscape),
        Box::new(DeadLockRegion),
    ]
}

fn races_of<'a>(cx: &'a LintContext<'_>) -> &'a RaceResult {
    cx.races.expect("race lint without race result")
}

/// `R001`: a data race. One finding per witness, anchored at the
/// site-ordered first access; both sides' shortest derivations are
/// attached as notes (each truncated past eight steps).
pub struct DataRace;

impl Lint for DataRace {
    fn code(&self) -> &'static str {
        "R001"
    }
    fn name(&self) -> &'static str {
        "data-race"
    }
    fn description(&self) -> &'static str {
        "two accesses to the same field may happen in parallel, at least one writes, \
         and they share no lock"
    }
    fn needs_races(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        const MAX_TRACE: usize = 8;
        for race in &races_of(cx).races {
            let mut d = Diagnostic::new(
                "R001",
                Severity::Warning,
                format!(
                    "data race on {}: {} in {} vs {} in {}",
                    race.location,
                    if race.a.is_write { "write" } else { "read" },
                    race.a.thread,
                    if race.b.is_write { "write" } else { "read" },
                    race.b.thread,
                ),
            )
            .at_instr(cx.program, race.a.method, race.a.index);
            for (side, access) in [("A", &race.a), ("B", &race.b)] {
                for step in access.trace.iter().take(MAX_TRACE) {
                    d = d.note(format!("{side}: {step}"));
                }
                if access.trace.len() > MAX_TRACE {
                    d = d.note(format!(
                        "{side}: ... {} more step(s)",
                        access.trace.len() - MAX_TRACE
                    ));
                }
            }
            out.push(d);
        }
    }
}

/// `R002`: a monitor region whose lock resolves to a single allocation
/// site that may stand for several runtime objects (multiple heap
/// contexts, an allocator that runs more than once, or allocation on a
/// self-parallel thread) — the must-alias exclusion the race client
/// granted it is suspect. This is the race analysis surfacing its own
/// deliberate soundness gap instead of hiding it.
pub struct SuspectGuard;

impl Lint for SuspectGuard {
    fn code(&self) -> &'static str {
        "R002"
    }
    fn name(&self) -> &'static str {
        "suspect-guard"
    }
    fn description(&self) -> &'static str {
        "a lock's singleton allocation site may stand for several runtime objects"
    }
    fn needs_races(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for g in &races_of(cx).suspect_guards {
            let lock_class = &cx.program.classes[cx.program.allocs[g.lock].class].name;
            let d = Diagnostic::new(
                "R002",
                Severity::Warning,
                format!("lock on `{lock_class}` may guard with different objects per thread"),
            )
            .at_instr(cx.program, g.method, g.index)
            .note(
                "the lock variable points to one allocation site, but that site may \
                 produce several runtime objects; exclusion between threads is not guaranteed",
            );
            out.push(d);
        }
    }
}

/// `R003`: an object reachable from a thread other than the one whose
/// code allocated it. Escape is not a bug by itself — it is the
/// precondition for every race — so this is a note-level map of the
/// shared-heap surface.
pub struct ThreadEscape;

impl Lint for ThreadEscape {
    fn code(&self) -> &'static str {
        "R003"
    }
    fn name(&self) -> &'static str {
        "thread-escape"
    }
    fn description(&self) -> &'static str {
        "an object is accessed by a thread that never runs its allocating method"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn needs_races(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for e in &races_of(cx).escapes {
            let alloc_class = &cx.program.classes[cx.program.allocs[e.alloc].class].name;
            let d = Diagnostic::new(
                "R003",
                Severity::Note,
                format!("`{alloc_class}` object escapes to a foreign thread here"),
            )
            .at_instr(cx.program, e.method, e.index)
            .note("cross-thread sharing: accesses to this object need a consistent lock");
            out.push(d);
        }
    }
}

/// `R004`: a monitor region with no field access and no call strictly
/// inside — it synchronizes nothing. Either dead defensive code or the
/// critical section was refactored away from under the lock.
pub struct DeadLockRegion;

impl Lint for DeadLockRegion {
    fn code(&self) -> &'static str {
        "R004"
    }
    fn name(&self) -> &'static str {
        "dead-lock-region"
    }
    fn description(&self) -> &'static str {
        "a monitor region guards no access and no call"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn needs_races(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for &(method, index) in &races_of(cx).dead_regions {
            let d = Diagnostic::new(
                "R004",
                Severity::Note,
                "monitor region guards no access and no call",
            )
            .at_instr(cx.program, method, index)
            .note("either remove the lock or move the shared accesses back inside it");
            out.push(d);
        }
    }
}
