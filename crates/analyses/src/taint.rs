//! Taint-tier lints: backed by a [`TaintResult`] from
//! [`rudoop_core::analyze_taint`], itself layered on a points-to run.
//!
//! These lints are the diagnostics view of the taint client. `T001` is the
//! flow report proper (one finding per leak, with the shortest derivation
//! trace as notes); the other three interpret the leak set and sanitizer
//! observations:
//!
//! | code | name | finding |
//! |------|------|---------|
//! | `T001` | `tainted-flow` | a source's value reaches a sink unsanitized |
//! | `T002` | `sanitizer-bypassed` | a source is sanitized on one path but leaks through the heap on another |
//! | `T003` | `merged-context-flow` | the flow crosses a context-merged heap object, so it may be an artifact of context collapse |
//! | `T004` | `dead-sanitizer` | a reachable sanitizer call never sees tainted data |
//!
//! All four are skipped (not errored) when [`LintContext::taint`] is `None`
//! — in particular when the analysis supervisor exhausted its ladder and
//! taint was skipped, so a degraded run never masquerades as "no leaks".

use rudoop_core::taint::TaintResult;

use crate::diagnostics::{Diagnostic, Severity};
use crate::lint::{Lint, LintContext};

/// All taint-tier lints, in code order.
pub fn lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(TaintedFlow),
        Box::new(SanitizerBypassed),
        Box::new(MergedContextFlow),
        Box::new(DeadSanitizer),
    ]
}

fn taint_of<'a>(cx: &'a LintContext<'_>) -> &'a TaintResult {
    cx.taint.expect("taint lint without taint result")
}

/// Anchors a diagnostic at a call site, falling back to program level when
/// the invocation cannot be located (never expected for leak endpoints).
fn at_invoke(d: Diagnostic, cx: &LintContext<'_>, invoke: rudoop_ir::InvokeId) -> Diagnostic {
    match cx.program.invoke_site(invoke) {
        Some((method, index)) => d.at_instr(cx.program, method, index),
        None => d,
    }
}

/// `T001`: an unsanitized source→sink flow. One finding per leak, anchored
/// at the sink call site; the shortest derivation the analysis found is
/// attached as notes (truncated past eight steps).
pub struct TaintedFlow;

impl Lint for TaintedFlow {
    fn code(&self) -> &'static str {
        "T001"
    }
    fn name(&self) -> &'static str {
        "tainted-flow"
    }
    fn description(&self) -> &'static str {
        "a taint source's value reaches a sink without passing a sanitizer"
    }
    fn needs_taint(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let taint = taint_of(cx);
        for leak in &taint.leaks {
            let mut d = Diagnostic::new(
                "T001",
                Severity::Warning,
                format!("tainted value flows to sink: {}", leak.headline(cx.program)),
            );
            d = at_invoke(d, cx, leak.sink);
            const MAX_TRACE: usize = 8;
            for step in leak.trace.iter().take(MAX_TRACE) {
                d = d.note(format!("via {step}"));
            }
            if leak.trace.len() > MAX_TRACE {
                d = d.note(format!("... {} more step(s)", leak.trace.len() - MAX_TRACE));
            }
            out.push(d);
        }
    }
}

/// `T002`: the same source is sanitized on some path yet still leaks, and
/// the leaking flow crosses the heap — the classic "sanitize the variable,
/// leak the alias" bug. A strict subset of `T001` with extra evidence.
pub struct SanitizerBypassed;

impl Lint for SanitizerBypassed {
    fn code(&self) -> &'static str {
        "T002"
    }
    fn name(&self) -> &'static str {
        "sanitizer-bypassed"
    }
    fn description(&self) -> &'static str {
        "a sanitized source still leaks through a heap alias"
    }
    fn needs_taint(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let taint = taint_of(cx);
        for leak in &taint.leaks {
            if leak.heap_steps == 0 || !taint.source_sanitized(leak.source) {
                continue;
            }
            let d = Diagnostic::new(
                "T002",
                Severity::Warning,
                format!(
                    "sanitizer bypassed via aliasing: {}",
                    leak.headline(cx.program)
                ),
            )
            .note(format!(
                "the flow crosses {} heap location(s) a sanitizer never touches",
                leak.heap_steps
            ));
            out.push(at_invoke(d, cx, leak.sink));
        }
    }
}

/// `T003`: the flow crosses a heap object whose heap context was merged to
/// the empty context — by introspective refinement or a coarse rung — so
/// the leak may be an artifact of context collapse rather than a real
/// flow. Suppressed under the insensitive analysis, where *every* heap
/// context is merged and the signal is vacuous.
pub struct MergedContextFlow;

impl Lint for MergedContextFlow {
    fn code(&self) -> &'static str {
        "T003"
    }
    fn name(&self) -> &'static str {
        "merged-context-flow"
    }
    fn description(&self) -> &'static str {
        "a reported flow crosses a context-merged heap object (possible precision artifact)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn needs_taint(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let taint = taint_of(cx);
        if taint.analysis == "insens" {
            return;
        }
        for leak in &taint.leaks {
            if !leak.merged_heap_step {
                continue;
            }
            let d = Diagnostic::new(
                "T003",
                Severity::Note,
                format!(
                    "flow crosses a merged heap context: {}",
                    leak.headline(cx.program)
                ),
            )
            .note(format!(
                "under the `{}` analysis this object's contexts were collapsed; \
                 a finer abstraction may rule the flow out",
                taint.analysis
            ));
            out.push(at_invoke(d, cx, leak.sink));
        }
    }
}

/// `T004`: a reachable sanitizer call site no tainted value ever reaches.
/// Either the sanitizer guards nothing (dead defensive code) or the taint
/// spec is missing a source.
pub struct DeadSanitizer;

impl Lint for DeadSanitizer {
    fn code(&self) -> &'static str {
        "T004"
    }
    fn name(&self) -> &'static str {
        "dead-sanitizer"
    }
    fn description(&self) -> &'static str {
        "a reachable sanitizer call never receives tainted data"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn needs_taint(&self) -> bool {
        true
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let taint = taint_of(cx);
        for &(site, saw_taint) in &taint.sanitizer_calls {
            if saw_taint {
                continue;
            }
            let d = Diagnostic::new(
                "T004",
                Severity::Note,
                "sanitizer call never receives tainted data",
            )
            .note("either the guard is dead code or the taint spec is missing a source");
            out.push(at_invoke(d, cx, site));
        }
    }
}
