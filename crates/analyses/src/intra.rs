//! Tier-1 lints: purely syntactic, per-method, no points-to facts needed.
//!
//! The IL is flow-insensitive for the *analysis* — instruction order never
//! changes points-to results — but method bodies are straight-line
//! instruction lists, so textual order is still meaningful to a human
//! reader. These lints treat the body as executing top to bottom, which is
//! exactly how the frontends emit it.
//!
//! | code | name | finding |
//! |------|------|---------|
//! | `L001` | `use-before-def` | a local is read before any assignment |
//! | `L002` | `dead-store` | an assignment is overwritten before any read |
//! | `L003` | `unused-variable` | a local is never read anywhere in its method |
//! | `L004` | `unreachable-code` | instructions follow a `return` |
//! | `L005` | `self-move` | `x = x` |

use std::collections::HashSet;

use rudoop_ir::{Instruction, MethodId, Program, VarId};

use crate::diagnostics::{Diagnostic, Severity};
use crate::lint::{Lint, LintContext};

/// All tier-1 lints, in code order.
pub fn lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(UseBeforeDef),
        Box::new(DeadStore),
        Box::new(UnusedVariable),
        Box::new(UnreachableCode),
        Box::new(SelfMove),
    ]
}

/// The variables an instruction reads, and the one it writes (if any).
/// Call sites read their receiver and arguments and write their result.
fn uses_def(program: &Program, instr: &Instruction) -> (Vec<VarId>, Option<VarId>) {
    use rudoop_ir::InvokeKind;
    match *instr {
        Instruction::Alloc { var, .. } => (vec![], Some(var)),
        Instruction::Move { to, from } | Instruction::Cast { to, from, .. } => {
            (vec![from], Some(to))
        }
        Instruction::Load { to, base, .. } => (vec![base], Some(to)),
        Instruction::Store { base, from, .. } => (vec![base, from], None),
        Instruction::LoadGlobal { to, .. } => (vec![], Some(to)),
        Instruction::StoreGlobal { from, .. } => (vec![from], None),
        Instruction::Call { invoke } => {
            let inv = &program.invokes[invoke];
            let mut uses = Vec::with_capacity(inv.args.len() + 1);
            match inv.kind {
                InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                    uses.push(base)
                }
                InvokeKind::Static { .. } => {}
            }
            uses.extend_from_slice(&inv.args);
            (uses, inv.result)
        }
        Instruction::Spawn { invoke } => {
            let inv = &program.invokes[invoke];
            match inv.kind {
                InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                    (vec![base], None)
                }
                InvokeKind::Static { .. } => (vec![], None),
            }
        }
        Instruction::Join { var }
        | Instruction::MonitorEnter { var }
        | Instruction::MonitorExit { var } => (vec![var], None),
        Instruction::Return { var } => (vec![var], None),
    }
}

/// Variables defined on method entry: `this`, the formals, and the formal
/// return variable (written implicitly by `return` flow, so reading it is
/// not a use-before-def).
fn entry_defined(program: &Program, method: MethodId) -> HashSet<VarId> {
    let m = &program.methods[method];
    m.this
        .iter()
        .chain(m.params.iter())
        .chain(m.ret.iter())
        .copied()
        .collect()
}

/// `L001`: a local variable is read before any instruction assigns it.
/// Reported once per variable, at its first premature read. Foreign
/// variables (used outside their declaring method) are `E002`'s territory
/// and skipped here.
pub struct UseBeforeDef;

impl Lint for UseBeforeDef {
    fn code(&self) -> &'static str {
        "L001"
    }
    fn name(&self) -> &'static str {
        "use-before-def"
    }
    fn description(&self) -> &'static str {
        "a local variable is read before any assignment to it"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.program;
        for (mid, method) in p.methods.iter() {
            let mut defined = entry_defined(p, mid);
            let mut reported: HashSet<VarId> = HashSet::new();
            for (i, instr) in method.body.iter().enumerate() {
                let (uses, def) = uses_def(p, instr);
                for u in uses {
                    if p.vars[u].method == mid && !defined.contains(&u) && reported.insert(u) {
                        out.push(
                            Diagnostic::new(
                                self.code(),
                                Severity::Warning,
                                format!(
                                    "variable `{}` is read before any assignment",
                                    p.vars[u].name
                                ),
                            )
                            .at_instr(p, mid, i)
                            .note("an unassigned reference is null here"),
                        );
                    }
                }
                if let Some(d) = def {
                    defined.insert(d);
                }
            }
        }
    }
}

/// `L002`: an assignment whose value is overwritten by a later assignment
/// with no intervening read — the first write is dead.
pub struct DeadStore;

impl Lint for DeadStore {
    fn code(&self) -> &'static str {
        "L002"
    }
    fn name(&self) -> &'static str {
        "dead-store"
    }
    fn description(&self) -> &'static str {
        "an assignment is overwritten before the value is ever read"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.program;
        for (mid, method) in p.methods.iter() {
            let effects: Vec<(Vec<VarId>, Option<VarId>)> =
                method.body.iter().map(|i| uses_def(p, i)).collect();
            for (i, (_, def)) in effects.iter().enumerate() {
                let Some(v) = *def else { continue };
                for (j, (uses, redef)) in effects.iter().enumerate().skip(i + 1) {
                    if uses.contains(&v) {
                        break; // value is read: the store is live
                    }
                    if *redef == Some(v) {
                        let at = method.span_of(j);
                        let where_ = if at.is_known() {
                            format!("at {at}")
                        } else {
                            format!("at #{j}")
                        };
                        out.push(
                            Diagnostic::new(
                                self.code(),
                                Severity::Warning,
                                format!("value assigned to `{}` is never read", p.vars[v].name),
                            )
                            .at_instr(p, mid, i)
                            .note(format!("overwritten {where_} before any read")),
                        );
                        break;
                    }
                }
            }
        }
    }
}

/// `L003`: a local variable that no instruction of its method ever reads.
/// `this`, formals and the formal return variable are exempt (they are part
/// of the method's interface).
pub struct UnusedVariable;

impl Lint for UnusedVariable {
    fn code(&self) -> &'static str {
        "L003"
    }
    fn name(&self) -> &'static str {
        "unused-variable"
    }
    fn description(&self) -> &'static str {
        "a local variable is never read anywhere in its method"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.program;
        let mut used: HashSet<VarId> = HashSet::new();
        for method in p.methods.values() {
            for instr in &method.body {
                used.extend(uses_def(p, instr).0);
            }
        }
        for (mid, _) in p.methods.iter() {
            let exempt = entry_defined(p, mid);
            for (vid, var) in p.vars.iter() {
                if var.method == mid && !exempt.contains(&vid) && !used.contains(&vid) {
                    out.push(
                        Diagnostic::new(
                            self.code(),
                            Severity::Warning,
                            format!("variable `{}` is never read", var.name),
                        )
                        .in_method(p, mid),
                    );
                }
            }
        }
    }
}

/// `L004`: instructions after the first `return` in a body. Bodies are
/// straight-line, so nothing after a `return` can execute. One diagnostic
/// per method, anchored at the first unreachable instruction.
pub struct UnreachableCode;

impl Lint for UnreachableCode {
    fn code(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "unreachable-code"
    }
    fn description(&self) -> &'static str {
        "instructions follow a return and can never execute"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.program;
        for (mid, method) in p.methods.iter() {
            let Some(ret_at) = method
                .body
                .iter()
                .position(|i| matches!(i, Instruction::Return { .. }))
            else {
                continue;
            };
            let trailing = method.body.len() - ret_at - 1;
            if trailing > 0 {
                out.push(
                    Diagnostic::new(
                        self.code(),
                        Severity::Warning,
                        format!("{trailing} instruction(s) after `return` can never execute"),
                    )
                    .at_instr(p, mid, ret_at + 1),
                );
            }
        }
    }
}

/// `L005`: `x = x`. Harmless to the analysis (points-to is idempotent under
/// self-moves) but always a typo in source.
pub struct SelfMove;

impl Lint for SelfMove {
    fn code(&self) -> &'static str {
        "L005"
    }
    fn name(&self) -> &'static str {
        "self-move"
    }
    fn description(&self) -> &'static str {
        "a variable is moved to itself"
    }
    fn check(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.program;
        for (mid, method) in p.methods.iter() {
            for (i, instr) in method.body.iter().enumerate() {
                if let Instruction::Move { to, from } = *instr {
                    if to == from {
                        out.push(
                            Diagnostic::new(
                                self.code(),
                                Severity::Warning,
                                format!("move of `{}` to itself has no effect", p.vars[to].name),
                            )
                            .at_instr(p, mid, i),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    fn run_on(p: &Program) -> Vec<Diagnostic> {
        let h = ClassHierarchy::new(p);
        let cx = LintContext {
            program: p,
            hierarchy: &h,
            points_to: None,
            taint: None,
            races: None,
        };
        let mut out = Vec::new();
        for lint in lints() {
            lint.check(&cx, &mut out);
        }
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        let mut c: Vec<_> = diags.iter().map(|d| d.code).collect();
        c.sort_unstable();
        c
    }

    #[test]
    fn clean_method_produces_nothing() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let f = b.field(obj, "f");
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, obj);
        b.mov(main, y, x);
        b.store(main, y, f, x);
        b.entry(main);
        assert_eq!(run_on(&b.finish()), vec![]);
    }

    #[test]
    fn use_before_def_fires_once_per_variable() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let f = b.field(obj, "f");
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.mov(main, y, x); // x read, never assigned before
        b.store(main, y, f, x); // second premature read of x: not re-reported
        b.entry(main);
        let diags = run_on(&b.finish());
        assert_eq!(diags.iter().filter(|d| d.code == "L001").count(), 1);
        assert_eq!(diags[0].instr, Some(0));
    }

    #[test]
    fn params_and_this_are_defined_on_entry() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let fld = b.field(obj, "f");
        let m = b.method(obj, "f", &["a"], false);
        let a = b.param(m, 0);
        let t = b.this(m);
        let x = b.var(m, "x");
        b.mov(m, x, a);
        b.store(m, x, fld, t);
        let diags = run_on(&b.finish());
        assert!(!codes(&diags).contains(&"L001"), "{diags:?}");
    }

    #[test]
    fn dead_store_detects_overwrite_without_read() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let f = b.field(obj, "f");
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, obj); // dead: overwritten at #1
        b.alloc(main, x, a);
        b.mov(main, y, x);
        b.store(main, y, f, y);
        b.entry(main);
        let diags = run_on(&b.finish());
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "L002").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].instr, Some(0));
    }

    #[test]
    fn intervening_read_keeps_store_alive() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let f = b.field(obj, "f");
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, obj);
        b.mov(main, y, x); // read of x between the two stores
        b.alloc(main, x, obj);
        b.store(main, y, f, x);
        b.entry(main);
        let diags = run_on(&b.finish());
        assert!(!codes(&diags).contains(&"L002"), "{diags:?}");
    }

    #[test]
    fn unused_variable_is_reported_but_interface_vars_are_not() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "f", &["a"], true);
        let _unused = b.var(m, "scratch");
        let diags = run_on(&b.finish());
        let unused: Vec<_> = diags.iter().filter(|d| d.code == "L003").collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("scratch"));
    }

    #[test]
    fn unreachable_after_return_is_reported() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "f", &[], true);
        let x = b.var(m, "x");
        b.alloc(m, x, obj);
        b.ret(m, x);
        b.alloc(m, x, obj); // unreachable
        b.alloc(m, x, obj); // unreachable
        let diags = run_on(&b.finish());
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "L004").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].instr, Some(2));
        assert!(hits[0].message.contains('2'));
    }

    #[test]
    fn self_move_is_reported() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let f = b.field(obj, "f");
        let m = b.method(obj, "f", &[], true);
        let x = b.var(m, "x");
        b.alloc(m, x, obj);
        b.mov(m, x, x);
        b.store(m, x, f, x);
        let diags = run_on(&b.finish());
        assert_eq!(diags.iter().filter(|d| d.code == "L005").count(), 1);
    }
}
