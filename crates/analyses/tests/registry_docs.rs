//! Documentation exhaustiveness: the README code table must list every
//! diagnostic code the tool suite can emit — each exactly once — and
//! nothing else. PRs 1–6 grew the README by hand; this pins it so a new
//! lint (or a removed one) fails the build until the table follows.

use std::collections::BTreeMap;

use rudoop_analyses::diagnostics::VALIDATION_CODES;
use rudoop_analyses::LintRegistry;

/// Extracts diagnostic codes from the README's code-index table: rows of
/// the form ``| `X123` | name | summary |``. Returns each code with the
/// number of rows claiming it.
fn readme_table_codes(readme: &str) -> BTreeMap<String, usize> {
    let mut codes = BTreeMap::new();
    for line in readme.lines() {
        let Some(rest) = line.trim().strip_prefix("| `") else {
            continue;
        };
        let Some((code, _)) = rest.split_once('`') else {
            continue;
        };
        let mut chars = code.chars();
        let family = chars.next();
        let is_code = code.len() == 4
            && family.is_some_and(|c| c.is_ascii_uppercase())
            && chars.all(|c| c.is_ascii_digit());
        if is_code {
            *codes.entry(code.to_owned()).or_insert(0) += 1;
        }
    }
    codes
}

#[test]
fn readme_code_table_is_exhaustive_and_duplicate_free() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("workspace README present");
    let documented = readme_table_codes(&readme);
    assert!(
        !documented.is_empty(),
        "README code table not found (expected rows like `| \\`E001\\` | … |`)"
    );

    let mut emitted: Vec<String> = VALIDATION_CODES.iter().map(|&c| c.to_owned()).collect();
    for (code, _, _, _) in LintRegistry::with_defaults().iter() {
        emitted.push(code.to_owned());
    }

    for code in &emitted {
        match documented.get(code) {
            None => panic!("code {code} is emitted but missing from the README code table"),
            Some(1) => {}
            Some(n) => panic!("code {code} appears {n} times in the README code table"),
        }
    }
    for code in documented.keys() {
        assert!(
            emitted.iter().any(|c| c == code),
            "README code table documents {code}, which nothing emits"
        );
    }
    assert_eq!(
        documented.len(),
        emitted.len(),
        "table and registry disagree on the code count"
    );
}
