//! End-to-end checks of the taint lint tier (`T001`–`T004`) over the
//! workload taint battery, plus the `T003` merged-context signal and the
//! skip-when-absent contract.

use rudoop_analyses::{LintContext, LintRegistry};
use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::taint::analyze_taint;
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::WorkloadSpec;

/// A minimal recipe: just the taint battery, no amplifiers.
fn battery_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "taint-battery".to_owned(),
        pool_values: 0,
        probes_clean: 0,
        probes_type_friendly: 0,
        listeners: 0,
        visitor_nodes: 0,
        stream_depth: 0,
        app_classes: 0,
        taint_flows: 1,
        ..WorkloadSpec::default()
    }
}

#[test]
fn taint_battery_trips_the_t_series() {
    let spec = battery_spec();
    let program = spec.build();
    let taint_spec = spec.taint_spec(&program);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let result = analyze(&program, &hierarchy, &Insensitive, &config);
    assert!(result.outcome.is_complete());
    let taint = analyze_taint(&program, &taint_spec, &result).unwrap();

    let cx = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: Some(&taint),
        races: None,
    };
    let diags = LintRegistry::with_defaults().run(&cx);
    let has = |code: &str| diags.iter().any(|d| d.code == code);
    assert!(has("T001"), "direct leak not reported: {diags:?}");
    assert!(has("T002"), "alias bypass not reported: {diags:?}");
    assert!(has("T004"), "dead sanitizer not reported: {diags:?}");
    // The insensitive analysis merges *every* heap context, so the
    // merged-context hint would be pure noise there and must stay silent.
    assert!(!has("T003"), "T003 must be suppressed under insens");

    // Without a taint result the whole tier is skipped, not errored.
    let cx_no_taint = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: None,
        races: None,
    };
    let diags = LintRegistry::with_defaults().run(&cx_no_taint);
    assert!(diags.iter().all(|d| !d.code.starts_with('T')));
}

#[test]
fn merged_context_flow_fires_for_context_sensitive_runs() {
    let spec = battery_spec();
    let program = spec.build();
    let taint_spec = spec.taint_spec(&program);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let result = analyze(&program, &hierarchy, &Insensitive, &config);
    let mut taint = analyze_taint(&program, &taint_spec, &result).unwrap();

    // Pose as a context-sensitive run that still crossed a merged heap
    // object (what an introspective refinement produces): the hint must
    // now fire on exactly the heap-crossing leaks.
    taint.analysis = "intro-A/2objH".to_owned();
    let merged: usize = taint.leaks.iter().filter(|l| l.merged_heap_step).count();
    assert!(
        merged > 0,
        "insens leak traces should cross merged contexts"
    );

    let cx = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: Some(&taint),
        races: None,
    };
    let diags = LintRegistry::with_defaults().run(&cx);
    let t003: Vec<_> = diags.iter().filter(|d| d.code == "T003").collect();
    assert_eq!(t003.len(), merged, "{diags:?}");
    assert!(t003
        .iter()
        .all(|d| d.notes.iter().any(|n| n.contains("intro-A/2objH"))));
}
