//! Golden-file tests: the rendered diagnostics for small `.rud` fixtures
//! are pinned byte-for-byte. This locks the renderer format, the sort
//! order, and each lint's message wording. To refresh after an intentional
//! change, set `UPDATE_GOLDEN=1` and re-run.

use std::path::PathBuf;

use rudoop_analyses::diagnostics::render;
use rudoop_analyses::{validate_diagnostics, LintContext, LintRegistry};
use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_ir::{parse_program, ClassHierarchy};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The exact pipeline `rudoop-lint` runs: validate; if well-formed, run the
/// insensitive analysis and the default lint suite; render.
fn lint_to_text(source: &str) -> String {
    let program = parse_program(source).expect("fixture parses");
    let mut diags = validate_diagnostics(&program);
    if diags.is_empty() {
        let hierarchy = ClassHierarchy::new(&program);
        let result = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: Some(&result),
        };
        diags = LintRegistry::with_defaults().run(&cx);
    }
    render(&program, &diags)
}

fn check_golden(name: &str) {
    let source = std::fs::read_to_string(fixture(&format!("{name}.rud"))).unwrap();
    let actual = lint_to_text(&source);
    let expected_path = fixture(&format!("{name}.expected"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", expected_path.display()));
    assert_eq!(
        actual, expected,
        "rendered diagnostics for {name}.rud diverge from {name}.expected \
         (run with UPDATE_GOLDEN=1 to refresh after an intentional change)"
    );
}

#[test]
fn buggy_fixture_diagnostics_are_stable() {
    check_golden("buggy");
}

#[test]
fn invalid_fixture_reports_all_e_codes() {
    check_golden("invalid");
}

#[test]
fn clean_fixture_renders_nothing() {
    check_golden("clean");
}
