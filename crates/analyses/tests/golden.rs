//! Golden-file tests: the rendered diagnostics for small `.rud` fixtures
//! are pinned byte-for-byte — in the text format and, for the taint
//! fixture, in the stable `--format json` schema too. This locks the
//! renderer formats, the sort order, and each lint's message wording. To
//! refresh after an intentional change, set `UPDATE_GOLDEN=1` and re-run.

use std::path::PathBuf;

use rudoop_analyses::diagnostics::{render, render_json};
use rudoop_analyses::{validate_diagnostics, Diagnostic, LintContext, LintRegistry};
use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::taint::analyze_taint;
use rudoop_ir::{parse_program, ClassHierarchy, Program, TaintSpec};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The exact pipeline `rudoop-lint` runs: validate; if well-formed, run the
/// insensitive analysis (recording contexts when a taint spec is present),
/// the taint client, and the default lint suite.
fn lint_diags(source: &str, taint_text: Option<&str>) -> (Program, Vec<Diagnostic>) {
    let program = parse_program(source).expect("fixture parses");
    let mut diags = validate_diagnostics(&program);
    if diags.is_empty() {
        let hierarchy = ClassHierarchy::new(&program);
        let config = SolverConfig {
            record_contexts: taint_text.is_some(),
            ..SolverConfig::default()
        };
        let result = analyze(&program, &hierarchy, &Insensitive, &config);
        let taint = taint_text.map(|text| {
            let spec = TaintSpec::parse(text, &program).expect("taint spec resolves");
            analyze_taint(&program, &spec, &result).expect("taint analysis runs")
        });
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: Some(&result),
            taint: taint.as_ref(),
            races: None,
        };
        diags = LintRegistry::with_defaults().run(&cx);
    }
    (program, diags)
}

fn check_against(expected_name: &str, actual: &str) {
    let expected_path = fixture(expected_name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", expected_path.display()));
    assert_eq!(
        actual, expected,
        "rendered diagnostics diverge from {expected_name} \
         (run with UPDATE_GOLDEN=1 to refresh after an intentional change)"
    );
}

fn check_golden(name: &str) {
    let source = std::fs::read_to_string(fixture(&format!("{name}.rud"))).unwrap();
    let taint = std::fs::read_to_string(fixture(&format!("{name}.taint"))).ok();
    let (program, diags) = lint_diags(&source, taint.as_deref());
    check_against(&format!("{name}.expected"), &render(&program, &diags));
    check_against(
        &format!("{name}.json.expected"),
        &render_json(&program, &diags),
    );
}

#[test]
fn buggy_fixture_diagnostics_are_stable() {
    check_golden("buggy");
}

#[test]
fn invalid_fixture_reports_all_e_codes() {
    check_golden("invalid");
}

#[test]
fn clean_fixture_renders_nothing() {
    check_golden("clean");
}

#[test]
fn tainted_fixture_reports_t_codes_in_both_formats() {
    check_golden("tainted");
}
