//! End-to-end checks of the race lint tier (`R001`–`R004`) over a
//! hand-built concurrent program, plus the skip-when-absent contract.

use rudoop_analyses::{LintContext, LintRegistry};
use rudoop_core::policy::Insensitive;
use rudoop_core::races::analyze_races;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_ir::{ClassHierarchy, Program, ProgramBuilder};

/// One program that trips every R lint: a shared-counter race (R001 +
/// R003 escape), a lock allocated per worker run reachable from two
/// spawn sites (R002), and an empty monitor region (R004).
fn racy_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let counter = b.class("Counter", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let hits = b.field(counter, "hits");
    let cfld = b.field(worker, "c");
    let lock = b.field(worker, "lock");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rc = b.var(runm, "rc");
    let rv = b.var(runm, "rv");
    let l = b.var(runm, "l");
    let l2 = b.var(runm, "l2");
    b.load(runm, rc, this, cfld);
    b.alloc(runm, rv, obj);
    b.store(runm, rc, hits, rv);
    b.alloc(runm, l, obj);
    b.store(runm, this, lock, l);
    b.monitor_enter(runm, l);
    b.load(runm, l2, this, lock);
    b.monitor_exit(runm, l);
    let main = b.method(obj, "main", &[], true);
    let c = b.var(main, "c");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    let dead = b.var(main, "dead");
    b.alloc(main, c, counter);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, cfld, c);
    b.store(main, w2, cfld, c);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.alloc(main, dead, obj);
    b.monitor_enter(main, dead);
    b.monitor_exit(main, dead);
    b.entry(main);
    b.finish()
}

#[test]
fn racy_program_trips_the_r_series() {
    let program = racy_program();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let result = analyze(&program, &hierarchy, &Insensitive, &config);
    assert!(result.outcome.is_complete());
    let races = analyze_races(&program, &result).unwrap();

    let cx = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: None,
        races: Some(&races),
    };
    let diags = LintRegistry::with_defaults().run(&cx);
    let has = |code: &str| diags.iter().any(|d| d.code == code);
    assert!(has("R001"), "shared-counter race not reported: {diags:?}");
    assert!(has("R002"), "suspect guard not reported: {diags:?}");
    assert!(has("R003"), "counter escape not reported: {diags:?}");
    assert!(has("R004"), "dead lock region not reported: {diags:?}");

    // The R001 finding carries both sides' traces as notes.
    let race = diags.iter().find(|d| d.code == "R001").unwrap();
    assert!(race.message.contains("Counter.hits"), "{race:?}");
    assert!(race.notes.iter().any(|n| n.starts_with("A: ")));
    assert!(race.notes.iter().any(|n| n.starts_with("B: ")));

    // Without a race result the whole tier is skipped, not errored.
    let cx_no_races = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: None,
        races: None,
    };
    let diags = LintRegistry::with_defaults().run(&cx_no_races);
    assert!(diags.iter().all(|d| !d.code.starts_with('R')));
}
