//! The tier-2 lints must agree *exactly* with the paper's precision
//! clients ([`rudoop_core::clients`]) for the same program and policy:
//!
//! - `#I001 + #I002 = casts_may_fail` — the lints partition the client's
//!   set into guaranteed failures and mixed cases;
//! - `#I004 = |methods| − reachable_methods`;
//! - `#I005 + polymorphic_call_sites` = reachable virtual sites with at
//!   least one resolved target.

use rudoop_analyses::{Diagnostic, LintContext, LintRegistry};
use rudoop_core::clients::PrecisionMetrics;
use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::solver::{PointsToResult, SolverConfig};
use rudoop_ir::{ClassHierarchy, InvokeKind, Program};
use rudoop_workloads::dacapo;

fn lint(p: &Program, h: &ClassHierarchy, r: &PointsToResult) -> Vec<Diagnostic> {
    let cx = LintContext {
        program: p,
        hierarchy: h,
        points_to: Some(r),
        taint: None,
        races: None,
    };
    LintRegistry::with_defaults().run(&cx)
}

fn count(diags: &[Diagnostic], code: &str) -> usize {
    diags.iter().filter(|d| d.code == code).count()
}

/// Reachable virtual call sites with ≥ 1 resolved target.
fn resolved_virtual_sites(p: &Program, r: &PointsToResult) -> usize {
    p.invokes
        .iter()
        .filter(|(iid, invoke)| {
            matches!(invoke.kind, InvokeKind::Virtual { .. })
                && r.reachable_methods.contains(invoke.method)
                && r.call_targets.get(iid).is_some_and(|t| !t.is_empty())
        })
        .count()
}

fn check_agreement(p: &Program, flavor: Flavor) {
    let h = ClassHierarchy::new(p);
    let r = analyze_flavor(p, &h, flavor, &SolverConfig::default());
    let metrics = PrecisionMetrics::compute(p, &h, &r);
    let diags = lint(p, &h, &r);

    assert_eq!(
        count(&diags, "I001") + count(&diags, "I002"),
        metrics.casts_may_fail,
        "cast lints must partition the casts-may-fail client count"
    );
    assert_eq!(
        count(&diags, "I004"),
        p.methods.len() - metrics.reachable_methods,
        "dead-method lint must complement the reachable-methods client"
    );
    assert_eq!(
        count(&diags, "I005") + metrics.polymorphic_call_sites,
        resolved_virtual_sites(p, &r),
        "monomorphic hints and polymorphic sites must split resolved virtual sites"
    );
}

#[test]
fn agreement_on_antlr_insensitive() {
    check_agreement(&dacapo::antlr().build(), Flavor::Insensitive);
}

#[test]
fn agreement_on_pmd_insensitive() {
    check_agreement(&dacapo::pmd().build(), Flavor::Insensitive);
}

#[test]
fn agreement_on_antlr_1call() {
    check_agreement(
        &dacapo::antlr().build(),
        Flavor::CallSite { k: 1, heap_k: 0 },
    );
}

#[test]
fn agreement_on_lusearch_2objh() {
    check_agreement(&dacapo::lusearch().build(), Flavor::OBJ2H);
}

#[test]
fn agreement_on_antlr_cutshortcut() {
    check_agreement(&dacapo::antlr().build(), Flavor::CutShortcut);
}

#[test]
fn agreement_on_generated_programs_cutshortcut() {
    use rudoop_ir::arbitrary::{generate, ProgramShape};
    let shape = ProgramShape::default();
    for seed in 0..16 {
        check_agreement(&generate(&shape, seed), Flavor::CutShortcut);
    }
}

#[test]
fn agreement_on_generated_programs() {
    use rudoop_ir::arbitrary::{generate, ProgramShape};
    let shape = ProgramShape::default();
    for seed in 0..32 {
        check_agreement(&generate(&shape, seed), Flavor::Insensitive);
    }
}
