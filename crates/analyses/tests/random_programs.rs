//! Property tests over generator-produced programs: the lint suite must
//! never panic, and must never report hard errors (`Severity::Error`) on a
//! valid program — at default levels, errors are reserved for validity
//! violations, which the generator never produces.

use rudoop_analyses::diagnostics::Severity;
use rudoop_analyses::{validate_diagnostics, LintContext, LintRegistry};
use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::ClassHierarchy;

const CASES: u64 = 96;

#[test]
fn lints_run_clean_of_errors_on_generated_programs() {
    let shape = ProgramShape::default();
    let registry = LintRegistry::with_defaults();
    for seed in 0..CASES {
        let program = generate(&shape, seed);
        assert!(
            validate_diagnostics(&program).is_empty(),
            "generator produced an invalid program at seed {seed}"
        );
        let hierarchy = ClassHierarchy::new(&program);
        let result = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: Some(&result),
            taint: None,
            races: None,
        };
        let diags = registry.run(&cx);
        for d in &diags {
            assert_ne!(
                d.severity,
                Severity::Error,
                "seed {seed}: lint {} reported a hard error on a valid program: {}",
                d.code,
                d.message
            );
        }
    }
}

#[test]
fn tier1_alone_never_panics_and_is_deterministic() {
    let shape = ProgramShape::default();
    let registry = LintRegistry::with_defaults();
    for seed in 0..CASES {
        let program = generate(&shape, seed);
        let hierarchy = ClassHierarchy::new(&program);
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: None,
            taint: None,
            races: None,
        };
        let first = registry.run(&cx);
        let second = registry.run(&cx);
        assert_eq!(
            first, second,
            "non-deterministic lint output at seed {seed}"
        );
        assert!(
            first.iter().all(|d| d.code.starts_with('L')),
            "seed {seed}: tier-2 finding without points-to facts"
        );
    }
}

#[test]
fn rendering_generated_diagnostics_never_panics() {
    let shape = ProgramShape {
        max_body: 16,
        ..ProgramShape::default()
    };
    let registry = LintRegistry::with_defaults();
    for seed in 0..CASES / 4 {
        let program = generate(&shape, seed);
        let hierarchy = ClassHierarchy::new(&program);
        let result = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: Some(&result),
            taint: None,
            races: None,
        };
        let diags = registry.run(&cx);
        let text = rudoop_analyses::render(&program, &diags);
        assert_eq!(text.lines().count() >= diags.len(), true, "seed {seed}");
    }
}
