//! Zero-dependency observability: nested timed spans, deterministic
//! counters, and three sinks (stderr summary table, stable-schema JSON
//! profile, Chrome trace-event file).
//!
//! The workspace is offline — there is no `tracing` crate — so this is a
//! hand-rolled substrate with one hard invariant, enforced by the
//! determinism test suite:
//!
//! **Counters and timings never mix.** The recorder keeps three strictly
//! separate streams:
//!
//! - the **counter stream** ([`Telemetry::counter`]): values that are a
//!   pure function of the analysed program and the configured budgets.
//!   The stream (names, values *and order*) is byte-identical across
//!   repeated runs and across thread counts 1–N.
//! - the **metric stream** ([`Telemetry::metric`]): deterministic
//!   per-engine values (per-epoch shard work, messages routed, worklist
//!   drains). Byte-identical across repeated runs *at a fixed thread
//!   count*, but topology-dependent — an epoch does not exist at
//!   `--threads 1`.
//! - **spans and instants** ([`Telemetry::span`]): wall-clock
//!   measurements. Never compared across runs; they exist for the human
//!   and for Perfetto.
//!
//! Timestamps are microseconds since the recorder was created. Chrome
//! trace lanes (`tid`) are: lane 0 = the coordinating thread (spans nest
//! there via RAII guards), lane `s + 1` = shard worker `s` (whole spans
//! recorded at epoch barriers). [`validate_chrome_trace`] is the in-tree
//! schema checker CI runs against emitted traces: balanced B/E events per
//! lane, globally monotone timestamps, finite (non-NaN) numbers.

use std::fmt::Write as _;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

use crate::json;
use crate::json::escape as json_string;

/// The Chrome-trace lane (`tid`) of the coordinating thread.
pub const COORDINATOR_LANE: u32 = 0;

/// The Chrome-trace lane of shard worker `shard`.
pub fn shard_lane(shard: usize) -> u32 {
    shard as u32 + 1
}

/// A completed timed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name, e.g. `solve` or `epoch`.
    pub name: String,
    /// Trace lane (Chrome `tid`): 0 = coordinator, `s+1` = shard `s`.
    pub lane: u32,
    /// Start, microseconds since the recorder's origin.
    pub start_us: u64,
    /// End, microseconds since the recorder's origin.
    pub end_us: u64,
    /// Nesting depth within the lane at open time (0 = top level).
    pub depth: u32,
    /// Key/value annotations, emitted into the trace `args` object.
    pub args: Vec<(String, String)>,
    start_seq: u64,
    end_seq: u64,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// A point event (ladder degrade, watchdog fire, cancellation, …).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Event name.
    pub name: String,
    /// Trace lane.
    pub lane: u32,
    /// Timestamp, microseconds since the recorder's origin.
    pub at_us: u64,
    /// Key/value annotations.
    pub args: Vec<(String, String)>,
    seq: u64,
}

/// A Chrome counter-track sample (`ph:"C"`): a value plotted over time.
/// Trace-only — wall-clock tied, so never part of a deterministic stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSample {
    /// Track name, e.g. `contexts`.
    pub track: String,
    /// Timestamp, microseconds since the recorder's origin.
    pub at_us: u64,
    /// Sampled value.
    pub value: u64,
    seq: u64,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    start_us: u64,
    start_seq: u64,
    depth: u32,
    args: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Inner {
    seq: u64,
    /// RAII stack for lane 0 — the coordinating thread's nested phases.
    open: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    samples: Vec<TrackSample>,
    counters: Vec<(String, u64)>,
    metrics: Vec<(String, u64)>,
    /// Custom lane names (first registration wins); lanes without one get
    /// the default `coordinator` / `shard-N` labels.
    lane_labels: Vec<(u32, String)>,
}

/// The telemetry recorder. Cheap to share (`Arc<Telemetry>`); all
/// recording methods take `&self`. Interior mutability is a single
/// mutex — hot loops must not record per-derivation, only per-phase,
/// per-epoch and per-rung (the granularity every hook in this crate
/// uses), so contention is negligible.
#[derive(Debug)]
pub struct Telemetry {
    origin: Instant,
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// An optional shared telemetry handle — the shape carried by
/// `SolverConfig` and threaded through every layer.
pub type TelemetryHandle = Option<Arc<Telemetry>>;

/// Opens a lane-0 span on an optional handle; `None` records nothing.
pub fn span_opt<'a>(tele: &'a TelemetryHandle, name: &str) -> Option<SpanGuard<'a>> {
    tele.as_deref().map(|t| t.span(name))
}

impl Telemetry {
    /// A fresh recorder; timestamps are measured from this call.
    pub fn new() -> Telemetry {
        Telemetry {
            origin: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Microseconds elapsed since the recorder was created. Lock-free —
    /// safe to call from worker threads in the epoch hot path.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex only means a panicking thread held it;
        // telemetry is diagnostics, so keep recording.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a nested span on the coordinator lane; the returned guard
    /// closes it on drop. Spans must nest (RAII enforces this at every
    /// call site in the crate).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let now = self.now_us();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let depth = inner.open.len() as u32;
        inner.open.push(OpenSpan {
            name: name.to_owned(),
            start_us: now,
            start_seq: seq,
            depth,
            args: Vec::new(),
        });
        SpanGuard { tele: self }
    }

    fn close_span(&self) {
        let now = self.now_us();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        if let Some(open) = inner.open.pop() {
            inner.spans.push(SpanRecord {
                name: open.name,
                lane: COORDINATOR_LANE,
                start_us: open.start_us,
                end_us: now.max(open.start_us),
                depth: open.depth,
                args: open.args,
                start_seq: open.start_seq,
                end_seq: seq,
            });
        }
    }

    /// Records a whole span on an arbitrary lane (used by the parallel
    /// coordinator to attribute per-shard epoch work measured by the
    /// workers themselves).
    pub fn complete_span(
        &self,
        lane: u32,
        name: &str,
        start_us: u64,
        end_us: u64,
        args: Vec<(String, String)>,
    ) {
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 2;
        inner.spans.push(SpanRecord {
            name: name.to_owned(),
            lane,
            start_us,
            end_us: end_us.max(start_us),
            depth: 0,
            args,
            start_seq: seq,
            end_seq: seq + 1,
        });
    }

    /// Records a point event (rung degrade, watchdog fire, …).
    pub fn instant(&self, name: &str, args: Vec<(String, String)>) {
        let now = self.now_us();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.instants.push(InstantRecord {
            name: name.to_owned(),
            lane: COORDINATOR_LANE,
            at_us: now,
            args,
            seq,
        });
    }

    /// Appends to the **deterministic counter stream**: byte-identical
    /// across repeated runs and across thread counts. Only record values
    /// that are pure functions of the program and the configured budgets.
    pub fn counter(&self, name: &str, value: u64) {
        self.lock().counters.push((name.to_owned(), value));
    }

    /// Appends to the **engine metric stream**: deterministic per thread
    /// count (reproducible across repeated runs), but topology-dependent.
    pub fn metric(&self, name: &str, value: u64) {
        self.lock().metrics.push((name.to_owned(), value));
    }

    /// Names a trace lane (Chrome `thread_name` metadata). The service
    /// layer uses this to label per-connection lanes `conn-N`; lanes
    /// without a registered label keep the default `coordinator` /
    /// `shard-N` naming. First registration wins.
    pub fn set_lane_label(&self, lane: u32, label: &str) {
        let mut inner = self.lock();
        if !inner.lane_labels.iter().any(|(l, _)| *l == lane) {
            inner.lane_labels.push((lane, label.to_owned()));
        }
    }

    /// Samples a Chrome counter track (`ph:"C"`) at the current time.
    pub fn sample(&self, track: &str, value: u64) {
        let now = self.now_us();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.samples.push(TrackSample {
            track: track.to_owned(),
            at_us: now,
            value,
            seq,
        });
    }

    /// Completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Recorded instants, in order.
    pub fn instants(&self) -> Vec<InstantRecord> {
        self.lock().instants.clone()
    }

    /// The deterministic counter stream, in record order.
    pub fn counter_stream(&self) -> Vec<(String, u64)> {
        self.lock().counters.clone()
    }

    /// The engine metric stream, in record order.
    pub fn metric_stream(&self) -> Vec<(String, u64)> {
        self.lock().metrics.clone()
    }

    /// The counter stream as one `name=value` line per entry — the byte
    /// form the determinism suite compares across runs and thread counts.
    pub fn counter_stream_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.lock().counters {
            let _ = writeln!(out, "{name}={value}");
        }
        out
    }

    /// The metric stream in the same one-line-per-entry byte form.
    pub fn metric_stream_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.lock().metrics {
            let _ = writeln!(out, "{name}={value}");
        }
        out
    }

    /// The Chrome trace-event document (`chrome://tracing` / Perfetto):
    /// a `{"traceEvents":[...]}` object with thread-name metadata, `B`/`E`
    /// span pairs, `i` instants and `C` counter tracks, sorted by
    /// timestamp so the file satisfies [`validate_chrome_trace`].
    pub fn chrome_trace(&self) -> String {
        let inner = self.lock();
        // (ts, seq, rendered event). Sorting by (ts, seq) preserves stack
        // discipline for equal timestamps: a parent opens before (smaller
        // seq) and closes after (larger seq) its children.
        let mut events: Vec<(u64, u64, String)> = Vec::new();
        let mut lanes: Vec<u32> = vec![COORDINATOR_LANE];
        for span in &inner.spans {
            if !lanes.contains(&span.lane) {
                lanes.push(span.lane);
            }
            let args = render_args_json(&span.args);
            events.push((
                span.start_us,
                span.start_seq,
                format!(
                    "{{\"name\":{},\"cat\":\"rudoop\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_string(&span.name),
                    span.start_us,
                    span.lane,
                    args
                ),
            ));
            events.push((
                span.end_us,
                span.end_seq,
                format!(
                    "{{\"name\":{},\"cat\":\"rudoop\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    json_string(&span.name),
                    span.end_us,
                    span.lane
                ),
            ));
        }
        for inst in &inner.instants {
            events.push((
                inst.at_us,
                inst.seq,
                format!(
                    "{{\"name\":{},\"cat\":\"rudoop\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{}}}",
                    json_string(&inst.name),
                    inst.at_us,
                    inst.lane,
                    render_args_json(&inst.args)
                ),
            ));
        }
        for sample in &inner.samples {
            events.push((
                sample.at_us,
                sample.seq,
                format!(
                    "{{\"name\":{},\"cat\":\"rudoop\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{{}:{}}}}}",
                    json_string(&sample.track),
                    sample.at_us,
                    json_string(&sample.track),
                    sample.value
                ),
            ));
        }
        events.sort_by_key(|a| (a.0, a.1));

        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, ev: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(ev);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"rudoop\"}}",
        );
        lanes.sort_unstable();
        for lane in lanes {
            let label = inner
                .lane_labels
                .iter()
                .find(|(l, _)| *l == lane)
                .map(|(_, name)| name.clone())
                .unwrap_or_else(|| {
                    if lane == COORDINATOR_LANE {
                        "coordinator".to_owned()
                    } else {
                        format!("shard-{}", lane - 1)
                    }
                });
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":{}}}}}",
                    json_string(&label)
                ),
            );
        }
        for (_, _, ev) in &events {
            push(&mut out, ev);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// The stable-schema JSON profile: spans with durations, instants,
    /// and the two deterministic streams. Schema changes are additive
    /// (`"schema"` names the version).
    pub fn profile_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\n  \"schema\": \"rudoop-profile-v1\",\n  \"spans\": [\n");
        for (i, span) in inner.spans.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"lane\": {}, \"depth\": {}, \"start_us\": {}, \"dur_us\": {}, \"args\": {}}}{}",
                json_string(&span.name),
                span.lane,
                span.depth,
                span.start_us,
                span.dur_us(),
                render_args_json(&span.args),
                if i + 1 < inner.spans.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"instants\": [\n");
        for (i, inst) in inner.instants.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"at_us\": {}, \"args\": {}}}{}",
                json_string(&inst.name),
                inst.at_us,
                render_args_json(&inst.args),
                if i + 1 < inner.instants.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        out.push_str("  ],\n  \"counters\": [\n");
        for (i, (name, value)) in inner.counters.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"value\": {}}}{}",
                json_string(name),
                value,
                if i + 1 < inner.counters.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        out.push_str("  ],\n  \"metrics\": [\n");
        for (i, (name, value)) in inner.metrics.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"value\": {}}}{}",
                json_string(name),
                value,
                if i + 1 < inner.metrics.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The human-readable summary table (printed to stderr by the CLIs):
    /// spans aggregated by name in first-completion order, then the
    /// deterministic counters.
    pub fn summary(&self) -> String {
        let inner = self.lock();
        let mut order: Vec<&str> = Vec::new();
        let mut agg: std::collections::HashMap<&str, (u64, u64)> = std::collections::HashMap::new();
        for span in &inner.spans {
            let entry = agg.entry(span.name.as_str()).or_insert_with(|| {
                order.push(span.name.as_str());
                (0, 0)
            });
            entry.0 += 1;
            entry.1 += span.dur_us();
        }
        let mut out = String::from("telemetry summary:\n");
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>12} {:>12}",
            "span", "calls", "total", "mean"
        );
        for name in order {
            let (calls, total_us) = agg[name];
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>12}",
                name,
                calls,
                format_us(total_us),
                format_us(total_us / calls.max(1)),
            );
        }
        if !inner.instants.is_empty() {
            out.push_str("  events:\n");
            for inst in &inner.instants {
                let _ = writeln!(
                    out,
                    "    @{:>10} {}{}",
                    format_us(inst.at_us),
                    inst.name,
                    render_args_text(&inst.args)
                );
            }
        }
        if !inner.counters.is_empty() {
            out.push_str("  counters (deterministic):\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "    {name} = {value}");
            }
        }
        if !inner.metrics.is_empty() {
            let _ = writeln!(
                out,
                "  engine metrics: {} entries (see --profile for the full stream)",
                inner.metrics.len()
            );
        }
        out
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tele: &'a Telemetry,
}

impl SpanGuard<'_> {
    /// Attaches a key/value annotation to the span (applied at close).
    pub fn arg(&self, key: &str, value: impl ToString) {
        let mut inner = self.tele.lock();
        if let Some(open) = inner.open.last_mut() {
            open.args.push((key.to_owned(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tele.close_span();
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn render_args_json(args: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(key));
        out.push(':');
        // Bare integers render as numbers so Perfetto can aggregate them.
        if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) && value.len() <= 19 {
            out.push_str(value);
        } else {
            out.push_str(&json_string(value));
        }
    }
    out.push('}');
    out
}

fn render_args_text(args: &[(String, String)]) -> String {
    let mut out = String::new();
    for (key, value) in args {
        let _ = write!(out, " {key}={value}");
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome-trace schema checker (in-tree; CI's trace smoke job runs it).
// ---------------------------------------------------------------------------

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events, metadata included.
    pub events: usize,
    /// Balanced `B`/`E` pairs.
    pub spans: usize,
    /// `i` instant events.
    pub instants: usize,
    /// `C` counter samples.
    pub samples: usize,
    /// Distinct `B`-event names (phase coverage assertions key off this).
    pub span_names: std::collections::BTreeSet<String>,
    /// Largest timestamp seen, microseconds.
    pub max_ts_us: u64,
}

/// Validates a Chrome trace-event JSON document: parses it with the
/// in-tree JSON reader (rejecting `NaN`/`Infinity`, which are not JSON),
/// then checks the trace contract — a `traceEvents` array whose events
/// carry `name`/`ph`/`pid`/`tid`, non-metadata events carry a finite
/// non-negative `ts`, timestamps are globally monotone in file order, and
/// `B`/`E` events are balanced per lane with stack discipline (every `E`
/// matches the innermost open `B` of its `(pid, tid)`).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = json::parse(text).map_err(|e| malformed_json_report(text, e))?;
    let root = doc.as_object().ok_or("root is not an object")?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut last_ts: Option<f64> = None;
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("event {i}: not an object"))?;
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let name = field("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_owned();
        let ph = field("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_owned();
        let pid = field("pid")
            .and_then(|v| v.as_number())
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = field("tid")
            .and_then(|v| v.as_number())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph == "M" {
            continue; // metadata carries no meaningful timestamp
        }
        let ts = field("ts")
            .and_then(|v| v.as_number())
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} ({name}): non-finite or negative ts"));
        }
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): timestamp {ts} goes backwards (prev {prev})"
                ));
            }
        }
        last_ts = Some(ts);
        check.max_ts_us = check.max_ts_us.max(ts as u64);
        if let Some(dur) = field("dur").and_then(|v| v.as_number()) {
            if !dur.is_finite() || dur < 0.0 {
                return Err(format!("event {i} ({name}): non-finite or negative dur"));
            }
        }
        let lane = (pid as u64, tid as u64);
        match ph.as_str() {
            "B" => {
                check.span_names.insert(name.clone());
                stacks.entry(lane).or_default().push(name);
            }
            "E" => {
                let open =
                    stacks.entry(lane).or_default().pop().ok_or_else(|| {
                        format!("event {i} ({name}): E without open B on {lane:?}")
                    })?;
                if open != name {
                    return Err(format!(
                        "event {i}: E({name}) closes B({open}) on lane {lane:?}"
                    ));
                }
                check.spans += 1;
            }
            "i" | "I" => check.instants += 1,
            "C" => check.samples += 1,
            "X" => check.spans += 1,
            other => return Err(format!("event {i} ({name}): unknown phase {other:?}")),
        }
    }
    for (lane, stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unbalanced trace: B({open}) never closed on {lane:?}"
            ));
        }
    }
    Ok(check)
}

/// Maps a whole-document JSON parse failure onto a per-record diagnostic.
///
/// The trace writer emits one event record per line, so a malformed file
/// almost always means one corrupted record: re-parse each record line on
/// its own and name the first one that fails, with its line number and a
/// snippet. When every record parses individually (the damage is
/// structural — a missing bracket, truncation between records), the
/// original document-level error is reported instead.
fn malformed_json_report(text: &str, document_error: String) -> String {
    let mut record = 0usize;
    for (i, line) in text.lines().enumerate() {
        let body = line.trim();
        // Header (`{"traceEvents":[`), footer (`],...}`), blank lines.
        if body.is_empty() || body.ends_with('[') || body.starts_with(']') {
            continue;
        }
        record += 1;
        let body = body.strip_suffix(',').unwrap_or(body);
        if let Err(e) = json::parse(body) {
            let snippet: String = body.chars().take(60).collect();
            let ellipsis = if body.chars().count() > 60 { "…" } else { "" };
            return format!(
                "record {record} (line {}) is not valid JSON: {e}: {snippet}{ellipsis}",
                i + 1
            );
        }
    }
    document_error
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_raii_order() {
        let tele = Telemetry::new();
        {
            let outer = tele.span("outer");
            outer.arg("k", 7);
            let _inner = tele.span("inner");
        }
        let spans = tele.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].args, vec![("k".to_owned(), "7".to_owned())]);
        assert!(spans[0].start_us >= spans[1].start_us);
        assert!(spans[0].end_us <= spans[1].end_us);
    }

    #[test]
    fn counter_and_metric_streams_stay_separate() {
        let tele = Telemetry::new();
        tele.counter("solver.derivations", 42);
        tele.metric("epoch.messages", 7);
        tele.counter("taint.leaks", 1);
        assert_eq!(
            tele.counter_stream_text(),
            "solver.derivations=42\ntaint.leaks=1\n"
        );
        assert_eq!(tele.metric_stream_text(), "epoch.messages=7\n");
    }

    #[test]
    fn chrome_trace_validates_and_carries_all_event_kinds() {
        let tele = Telemetry::new();
        {
            let _solve = tele.span("solve");
            tele.complete_span(
                shard_lane(0),
                "drain",
                1,
                5,
                vec![("work".into(), "9".into())],
            );
            tele.instant("degrade", vec![("rung".into(), "2objH".into())]);
            tele.sample("contexts", 123);
        }
        let trace = tele.chrome_trace();
        let check = validate_chrome_trace(&trace).expect("trace validates");
        assert_eq!(check.spans, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.samples, 1);
        assert!(check.span_names.contains("solve"));
        assert!(check.span_names.contains("drain"));
    }

    #[test]
    fn profile_json_is_parseable_and_stable_schema() {
        let tele = Telemetry::new();
        {
            let _s = tele.span("phase \"quoted\"");
        }
        tele.counter("c", 1);
        tele.metric("m", 2);
        let profile = tele.profile_json();
        let doc = json::parse(&profile).expect("profile parses");
        let root = doc.as_object().unwrap();
        let keys: Vec<&str> = root.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["schema", "spans", "instants", "counters", "metrics"]);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        // Unbalanced: E without B.
        let bad = r#"{"traceEvents":[
            {"name":"x","ph":"E","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Backwards timestamps.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":3,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Mismatched nesting.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // NaN is not a JSON token.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":NaN,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Never-closed B.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn malformed_record_is_reported_by_line_and_record_number() {
        // Record 2 (file line 3) is truncated mid-object.
        let bad = "{\"traceEvents\":[\n\
                   {\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":0},\n\
                   {\"name\":\"a\",\"ph\":\"E\",\"ts\":2,\n\
                   ]}\n";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("record 2"), "{err}");
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("not valid JSON"), "{err}");
        // Structural damage with individually well-formed records falls
        // back to the document-level error.
        let bad = "{\"traceEvents\":[\n\
                   {\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":0}\n\
                   {\"name\":\"a\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":0}\n\
                   ]}\n";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(!err.contains("record"), "{err}");
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn summary_renders_aggregates_and_counters() {
        let tele = Telemetry::new();
        {
            let _a = tele.span("solve");
        }
        {
            let _b = tele.span("solve");
        }
        tele.counter("solver.derivations", 10);
        let summary = tele.summary();
        assert!(summary.contains("telemetry summary:"), "{summary}");
        assert!(summary.contains("solve"), "{summary}");
        assert!(summary.contains("solver.derivations = 10"), "{summary}");
    }

    #[test]
    fn json_reader_handles_escapes_and_rejects_garbage() {
        let v = json::parse(r#"{"a":"q\"\nA","b":[1,2.5,-3e2],"c":null}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("q\"\nA"));
        assert_eq!(obj[1].1.as_array().unwrap()[2].as_number(), Some(-300.0));
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("007a").is_err());
    }
}
