//! A fast, deterministic, non-cryptographic hasher (FxHash-style) plus map
//! and set aliases used throughout the solver.
//!
//! Points-to analysis is hash-lookup bound; the default SipHash costs ~3× in
//! end-to-end solver time here. This is the same multiply-rotate scheme used
//! by rustc's `FxHasher`, implemented in-tree to keep the dependency set to
//! the allowed list. Determinism also keeps analysis runs reproducible,
//! which the differential tests rely on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for small keys (ids, packed tuples).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let mut h1 = FxHasher::default();
        h1.write_u64(0xdead_beef);
        let mut h2 = FxHasher::default();
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut h = FxHasher::default();
        h.write(b"hello world, this is more than eight bytes");
        assert_ne!(h.finish(), 0);
    }
}
