//! The refinement heuristics of §3: Heuristic A and Heuristic B, which turn
//! [`IntrospectionMetrics`] into a [`RefinementSet`].
//!
//! Both heuristics work in complement form: they pick the (small) sets of
//! program elements that must *not* be refined because their metrics
//! predict disproportionate cost. Everything else is refined, i.e. analyzed
//! with the precise context.
//!
//! - **Heuristic A** (paper defaults K=100, L=100, M=200): exclude objects
//!   with pointed-by-vars > K; exclude call sites with in-flow > L or
//!   invoking methods with max var-field points-to > M.
//! - **Heuristic B** (paper defaults P=Q=10000): exclude call sites
//!   invoking methods with total points-to volume > P; exclude objects with
//!   `total field points-to × pointed-by-vars > Q` — "an object's total
//!   potential for weighing down the analysis".

use rudoop_ir::Program;

use crate::introspection::IntrospectionMetrics;
use crate::policy::RefinementSet;
use crate::solver::PointsToResult;

/// A rule for selecting which program elements to refine.
pub trait RefinementHeuristic: std::fmt::Debug {
    /// Short label used in analysis names (`"IntroA"`, `"IntroB"`).
    fn label(&self) -> &str;

    /// Computes the refinement decision from the first (context-insensitive)
    /// pass.
    fn select(
        &self,
        program: &Program,
        metrics: &IntrospectionMetrics,
        insens: &PointsToResult,
    ) -> RefinementSet;
}

/// Heuristic A: aggressive scalability (§3).
///
/// Refine all allocation sites except those with pointed-by-vars (metric
/// #5) above `k`; refine all call sites except those with in-flow (metric
/// #1) above `l` or a target method max var-field points-to (metric #4)
/// above `m`.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicA {
    /// Pointed-by-vars cutoff (paper: 100).
    pub k: u32,
    /// In-flow cutoff (paper: 100).
    pub l: u32,
    /// Max var-field points-to cutoff (paper: 200).
    pub m: u32,
}

impl Default for HeuristicA {
    fn default() -> Self {
        HeuristicA {
            k: 100,
            l: 100,
            m: 200,
        }
    }
}

impl RefinementHeuristic for HeuristicA {
    fn label(&self) -> &str {
        "IntroA"
    }

    fn select(
        &self,
        program: &Program,
        metrics: &IntrospectionMetrics,
        _insens: &PointsToResult,
    ) -> RefinementSet {
        let mut set = RefinementSet::refine_all(program);
        for alloc in program.allocs.ids() {
            if metrics.pointed_by_vars[alloc] > self.k {
                set.no_refine_objects.insert(alloc);
            }
        }
        for invoke in program.invokes.ids() {
            if metrics.in_flow[invoke] > self.l {
                set.no_refine_invokes.insert(invoke);
            }
        }
        for method in program.methods.ids() {
            if metrics.method_max_var_field_pts[method] > self.m {
                set.no_refine_methods.insert(method);
            }
        }
        set
    }
}

/// Heuristic B: selective, precision-preserving (§3).
///
/// Refine all call sites except those invoking methods with total points-to
/// volume (metric #2) above `p`; refine all objects except those whose
/// `total field points-to × pointed-by-vars` (metrics #3 × #5) exceeds `q`.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicB {
    /// Method total points-to volume cutoff (paper: 10000).
    pub p: u32,
    /// Object cost-product cutoff (paper: 10000).
    pub q: u32,
}

impl Default for HeuristicB {
    fn default() -> Self {
        HeuristicB {
            p: 10_000,
            q: 10_000,
        }
    }
}

impl RefinementHeuristic for HeuristicB {
    fn label(&self) -> &str {
        "IntroB"
    }

    fn select(
        &self,
        program: &Program,
        metrics: &IntrospectionMetrics,
        _insens: &PointsToResult,
    ) -> RefinementSet {
        let mut set = RefinementSet::refine_all(program);
        for method in program.methods.ids() {
            if metrics.method_total_pts[method] > self.p {
                set.no_refine_methods.insert(method);
            }
        }
        for alloc in program.allocs.ids() {
            let product = u64::from(metrics.obj_total_field_pts[alloc])
                * u64::from(metrics.pointed_by_vars[alloc]);
            if product > u64::from(self.q) {
                set.no_refine_objects.insert(alloc);
            }
        }
        set
    }
}

/// Which of the six §3 metrics a [`CustomHeuristic`] rule reads.
///
/// The paper's point is that the metrics "can vary in sophistication but
/// all of them attempt to estimate the cost" and that their value lies in
/// "simplicity and ease of composition". [`CustomHeuristic`] makes that
/// composition a first-class API: build your own heuristic from metric
/// cutoffs and products, like Heuristics A and B are built from theirs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// #1 — argument in-flow of an invocation site.
    InFlow,
    /// #2 — a method's total points-to volume.
    MethodTotalPts,
    /// #2 (variant) — a method's max var points-to.
    MethodMaxVarPts,
    /// #3 — an object's max field points-to.
    ObjMaxFieldPts,
    /// #3 (variant) — an object's total field points-to.
    ObjTotalFieldPts,
    /// #4 — a method's max var-field points-to.
    MethodMaxVarFieldPts,
    /// #5 — an object's pointed-by-vars.
    PointedByVars,
    /// #6 — an object's pointed-by-objs.
    PointedByObjs,
}

impl Metric {
    fn of_invoke(self, m: &IntrospectionMetrics, i: rudoop_ir::InvokeId) -> Option<u64> {
        match self {
            Metric::InFlow => Some(u64::from(m.in_flow[i])),
            _ => None,
        }
    }
    fn of_method(self, m: &IntrospectionMetrics, id: rudoop_ir::MethodId) -> Option<u64> {
        match self {
            Metric::MethodTotalPts => Some(u64::from(m.method_total_pts[id])),
            Metric::MethodMaxVarPts => Some(u64::from(m.method_max_var_pts[id])),
            Metric::MethodMaxVarFieldPts => Some(u64::from(m.method_max_var_field_pts[id])),
            _ => None,
        }
    }
    fn of_object(self, m: &IntrospectionMetrics, id: rudoop_ir::AllocId) -> Option<u64> {
        match self {
            Metric::ObjMaxFieldPts => Some(u64::from(m.obj_max_field_pts[id])),
            Metric::ObjTotalFieldPts => Some(u64::from(m.obj_total_field_pts[id])),
            Metric::PointedByVars => Some(u64::from(m.pointed_by_vars[id])),
            Metric::PointedByObjs => Some(u64::from(m.pointed_by_objs[id])),
            _ => None,
        }
    }
}

/// One exclusion rule of a [`CustomHeuristic`]: exclude the element when
/// the metric expression exceeds the cutoff.
#[derive(Debug, Clone, Copy)]
enum Rule {
    Single(Metric, u64),
    Product(Metric, Metric, u64),
}

impl Rule {
    fn fires(self, value: impl Fn(Metric) -> Option<u64>) -> bool {
        match self {
            Rule::Single(m, cutoff) => value(m).map(|v| v > cutoff).unwrap_or(false),
            Rule::Product(a, b, cutoff) => match (value(a), value(b)) {
                (Some(x), Some(y)) => x.saturating_mul(y) > cutoff,
                _ => false,
            },
        }
    }
}

/// A user-composed refinement heuristic: any number of exclusion rules
/// over the §3 metrics (single cutoffs or pairwise products), applied in
/// complement form like Heuristics A and B.
///
/// # Examples
///
/// Heuristic B, rebuilt from parts:
///
/// ```
/// use rudoop_core::heuristics::{CustomHeuristic, Metric};
///
/// use rudoop_core::heuristics::RefinementHeuristic as _;
///
/// let b = CustomHeuristic::new("MyB")
///     .exclude_methods_when(Metric::MethodTotalPts, 10_000)
///     .exclude_objects_when_product(
///         Metric::ObjTotalFieldPts,
///         Metric::PointedByVars,
///         10_000,
///     );
/// assert_eq!(b.label(), "MyB");
/// ```
#[derive(Debug, Clone)]
pub struct CustomHeuristic {
    label: String,
    object_rules: Vec<Rule>,
    invoke_rules: Vec<Rule>,
    method_rules: Vec<Rule>,
}

impl CustomHeuristic {
    /// An empty heuristic (refines everything) named `label`.
    pub fn new(label: &str) -> Self {
        CustomHeuristic {
            label: label.to_owned(),
            object_rules: Vec::new(),
            invoke_rules: Vec::new(),
            method_rules: Vec::new(),
        }
    }

    /// Excludes allocation sites whose `metric` exceeds `cutoff`.
    pub fn exclude_objects_when(mut self, metric: Metric, cutoff: u64) -> Self {
        self.object_rules.push(Rule::Single(metric, cutoff));
        self
    }

    /// Excludes allocation sites whose `a × b` product exceeds `cutoff`
    /// (the paper's "total potential for weighing down the analysis").
    pub fn exclude_objects_when_product(mut self, a: Metric, b: Metric, cutoff: u64) -> Self {
        self.object_rules.push(Rule::Product(a, b, cutoff));
        self
    }

    /// Excludes invocation sites whose `metric` exceeds `cutoff`.
    pub fn exclude_invokes_when(mut self, metric: Metric, cutoff: u64) -> Self {
        self.invoke_rules.push(Rule::Single(metric, cutoff));
        self
    }

    /// Excludes target methods whose `metric` exceeds `cutoff`.
    pub fn exclude_methods_when(mut self, metric: Metric, cutoff: u64) -> Self {
        self.method_rules.push(Rule::Single(metric, cutoff));
        self
    }
}

impl RefinementHeuristic for CustomHeuristic {
    fn label(&self) -> &str {
        &self.label
    }

    fn select(
        &self,
        program: &Program,
        metrics: &IntrospectionMetrics,
        _insens: &PointsToResult,
    ) -> RefinementSet {
        let mut set = RefinementSet::refine_all(program);
        for alloc in program.allocs.ids() {
            if self
                .object_rules
                .iter()
                .any(|r| r.fires(|m| m.of_object(metrics, alloc)))
            {
                set.no_refine_objects.insert(alloc);
            }
        }
        for invoke in program.invokes.ids() {
            if self
                .invoke_rules
                .iter()
                .any(|r| r.fires(|m| m.of_invoke(metrics, invoke)))
            {
                set.no_refine_invokes.insert(invoke);
            }
        }
        for method in program.methods.ids() {
            if self
                .method_rules
                .iter()
                .any(|r| r.fires(|m| m.of_method(metrics, method)))
            {
                set.no_refine_methods.insert(method);
            }
        }
        set
    }
}

/// Percentages for the paper's Figure 4: how many call sites and objects
/// were selected to *not* be refined, relative to the reachable program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementStats {
    /// Reachable virtual/special call sites excluded from refinement.
    pub call_sites_not_refined: usize,
    /// Reachable call sites total.
    pub call_sites_total: usize,
    /// Reachable allocation sites excluded from refinement.
    pub objects_not_refined: usize,
    /// Reachable allocation sites total.
    pub objects_total: usize,
}

impl RefinementStats {
    /// Computes Figure-4 statistics for `set`, counting only program
    /// elements reachable in the first pass (unreachable code has no
    /// metrics and is never analyzed anyway).
    ///
    /// A call site counts as "not refined" when the site itself is excluded
    /// or every first-pass target of it is an excluded method.
    pub fn compute(program: &Program, insens: &PointsToResult, set: &RefinementSet) -> Self {
        let mut call_sites_total = 0usize;
        let mut call_sites_not_refined = 0usize;
        for (iid, invoke) in program.invokes.iter() {
            if !insens.reachable_methods.contains(invoke.method) {
                continue;
            }
            call_sites_total += 1;
            if set.no_refine_invokes.contains(iid) {
                call_sites_not_refined += 1;
                continue;
            }
            if let Some(targets) = insens.call_targets.get(&iid) {
                if !targets.is_empty() && targets.iter().all(|&t| set.no_refine_methods.contains(t))
                {
                    call_sites_not_refined += 1;
                }
            }
        }

        let mut objects_total = 0usize;
        let mut objects_not_refined = 0usize;
        for (aid, alloc) in program.allocs.iter() {
            if !insens.reachable_methods.contains(alloc.method) {
                continue;
            }
            objects_total += 1;
            if set.no_refine_objects.contains(aid) {
                objects_not_refined += 1;
            }
        }

        RefinementStats {
            call_sites_not_refined,
            call_sites_total,
            objects_not_refined,
            objects_total,
        }
    }

    /// Percentage of call sites not refined (Figure 4, left columns).
    pub fn call_site_pct(&self) -> f64 {
        percentage(self.call_sites_not_refined, self.call_sites_total)
    }

    /// Percentage of objects not refined (Figure 4, right columns).
    pub fn object_pct(&self) -> f64 {
        percentage(self.objects_not_refined, self.objects_total)
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introspection::IntrospectionMetrics;
    use crate::policy::Insensitive;
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    /// A program with one "hub" object pointed to by many variables and one
    /// ordinary object.
    fn hub_program(fanout: usize) -> rudoop_ir::Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let hub = b.var(main, "hub");
        b.alloc(main, hub, obj);
        for i in 0..fanout {
            let v = b.var(main, &format!("v{i}"));
            b.mov(main, v, hub);
        }
        let lone = b.var(main, "lone");
        b.alloc(main, lone, obj);
        b.entry(main);
        b.finish()
    }

    fn select(
        p: &rudoop_ir::Program,
        h: &dyn RefinementHeuristic,
    ) -> (RefinementSet, PointsToResult) {
        let hier = ClassHierarchy::new(p);
        let insens = analyze(p, &hier, &Insensitive, &SolverConfig::default());
        let metrics = IntrospectionMetrics::compute(p, &insens);
        (h.select(p, &metrics, &insens), insens)
    }

    #[test]
    fn heuristic_a_excludes_heavily_pointed_objects() {
        let p = hub_program(12);
        let small = HeuristicA {
            k: 5,
            l: 100,
            m: 200,
        };
        let (set, _) = select(&p, &small);
        // The hub (alloc 0) exceeds pointed-by-vars 5; the lone object not.
        assert!(!set.object_refined(rudoop_ir::AllocId(0)));
        assert!(set.object_refined(rudoop_ir::AllocId(1)));
    }

    #[test]
    fn heuristic_a_paper_constants_refine_small_programs_fully() {
        let p = hub_program(12);
        let (set, _) = select(&p, &HeuristicA::default());
        assert!(set.no_refine_objects.is_empty());
        assert!(set.no_refine_invokes.is_empty());
        assert!(set.no_refine_methods.is_empty());
    }

    #[test]
    fn heuristic_b_uses_cost_product_for_objects() {
        // Hub object holding many field targets and pointed by many vars.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let f = b.field(obj, "f");
        let main = b.method(obj, "main", &[], true);
        let hub = b.var(main, "hub");
        b.alloc(main, hub, obj);
        for i in 0..4 {
            let v = b.var(main, &format!("p{i}"));
            b.mov(main, v, hub);
        }
        for i in 0..4 {
            let v = b.var(main, &format!("t{i}"));
            b.alloc(main, v, obj);
            b.store(main, hub, f, v);
        }
        b.entry(main);
        let p = b.finish();
        // total field pts = 4, pointed-by-vars = 5 (hub + 4 copies) => 20.
        let tight = HeuristicB { p: 10_000, q: 19 };
        let (set, _) = select(&p, &tight);
        assert!(!set.object_refined(rudoop_ir::AllocId(0)));
        let loose = HeuristicB { p: 10_000, q: 20 };
        let (set, _) = select(&p, &loose);
        assert!(set.object_refined(rudoop_ir::AllocId(0)));
    }

    #[test]
    fn heuristic_b_excludes_high_volume_methods() {
        let p = hub_program(40);
        // main has ~42 var-points-to tuples; cutoff below that.
        let tight = HeuristicB { p: 10, q: 10_000 };
        let (set, insens) = select(&p, &tight);
        let main = p.entry_points[0];
        assert!(!set.site_refined(rudoop_ir::InvokeId(0), main) || p.invokes.is_empty());
        assert!(set.no_refine_methods.contains(main));
        let stats = RefinementStats::compute(&p, &insens, &set);
        assert_eq!(stats.objects_not_refined, 0);
    }

    #[test]
    fn refinement_stats_percentages() {
        let p = hub_program(12);
        let small = HeuristicA {
            k: 5,
            l: 100,
            m: 200,
        };
        let (set, insens) = select(&p, &small);
        let stats = RefinementStats::compute(&p, &insens, &set);
        assert_eq!(stats.objects_total, 2);
        assert_eq!(stats.objects_not_refined, 1);
        assert!((stats.object_pct() - 50.0).abs() < 1e-9);
        assert_eq!(stats.call_sites_total, 0);
        assert_eq!(stats.call_site_pct(), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(HeuristicA::default().label(), "IntroA");
        assert_eq!(HeuristicB::default().label(), "IntroB");
    }

    #[test]
    fn custom_heuristic_reproduces_heuristic_a() {
        let p = hub_program(12);
        let builtin = HeuristicA {
            k: 5,
            l: 100,
            m: 200,
        };
        let custom = CustomHeuristic::new("A-rebuilt")
            .exclude_objects_when(Metric::PointedByVars, 5)
            .exclude_invokes_when(Metric::InFlow, 100)
            .exclude_methods_when(Metric::MethodMaxVarFieldPts, 200);
        let (sa, insens) = select(&p, &builtin);
        let metrics = IntrospectionMetrics::compute(&p, &insens);
        let sc = custom.select(&p, &metrics, &insens);
        for a in p.allocs.ids() {
            assert_eq!(sa.object_refined(a), sc.object_refined(a), "{a:?}");
        }
        for m in p.methods.ids() {
            assert_eq!(
                sa.no_refine_methods.contains(m),
                sc.no_refine_methods.contains(m)
            );
        }
    }

    #[test]
    fn custom_heuristic_reproduces_heuristic_b() {
        let p = hub_program(40);
        let builtin = HeuristicB { p: 10, q: 19 };
        let custom = CustomHeuristic::new("B-rebuilt")
            .exclude_methods_when(Metric::MethodTotalPts, 10)
            .exclude_objects_when_product(Metric::ObjTotalFieldPts, Metric::PointedByVars, 19);
        let (sb, insens) = select(&p, &builtin);
        let metrics = IntrospectionMetrics::compute(&p, &insens);
        let sc = custom.select(&p, &metrics, &insens);
        for a in p.allocs.ids() {
            assert_eq!(sb.object_refined(a), sc.object_refined(a), "{a:?}");
        }
        for m in p.methods.ids() {
            assert_eq!(
                sb.no_refine_methods.contains(m),
                sc.no_refine_methods.contains(m)
            );
        }
    }

    #[test]
    fn empty_custom_heuristic_refines_everything() {
        let p = hub_program(8);
        let custom = CustomHeuristic::new("noop");
        let (_, insens) = select(&p, &HeuristicA::default());
        let metrics = IntrospectionMetrics::compute(&p, &insens);
        let set = custom.select(&p, &metrics, &insens);
        assert!(set.no_refine_objects.is_empty());
        assert!(set.no_refine_invokes.is_empty());
        assert!(set.no_refine_methods.is_empty());
    }
}
