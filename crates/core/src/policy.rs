//! Context policies: the paper's constructor functions RECORD and MERGE.
//!
//! A [`ContextPolicy`] decides, at each allocation and each call, what
//! context the new object or callee gets. The base rules of the analysis
//! (in [`crate::solver`]) are policy-agnostic, exactly as in §2 of the
//! paper: "the base rules are not concerned with what kind of
//! context-sensitivity is used".
//!
//! The provided policies are the three classic flavors the paper evaluates
//! — call-site-sensitivity ([`CallSiteSensitive`]), object-sensitivity
//! ([`ObjectSensitive`]), type-sensitivity ([`TypeSensitive`]) — plus the
//! context-insensitive baseline and [`Introspective`], which dispatches
//! between a *default* and a *refined* policy per program element. That
//! per-element dispatch is the paper's duplicated-rule mechanism
//! (RECORDREFINED / MERGEREFINED guarded by OBJECTTOREFINE /
//! SITETOREFINE), folded into one constructor call.

use std::fmt;
use std::sync::Arc;

use rudoop_ir::{AllocId, ClassId, IdxVec, InvokeId, MethodId, Program};

use crate::bitset::IdBitSet;
use crate::context::{ContextElem, CtxId, CtxTables, HCtxId};

/// A context-abstraction: how calling and heap contexts are constructed.
///
/// Mirrors Figure 2's constructor functions:
///
/// - [`record`](ContextPolicy::record) is `RECORD(heap, ctx) = hctx`,
/// - [`merge`](ContextPolicy::merge) is
///   `MERGE(heap, hctx, invo, ctx) = calleeCtx` (with the resolved target
///   also available, which the introspective policy needs for its
///   SITETOREFINE `(invo, meth)` pairs),
/// - [`merge_static`](ContextPolicy::merge_static) handles static calls,
///   which have no receiver object.
pub trait ContextPolicy: fmt::Debug + Send + Sync {
    /// Short name used in reports, e.g. `"2objH"`.
    fn name(&self) -> String;

    /// Heap context for an object allocated at `heap` by a method running
    /// in `ctx`.
    fn record(&self, tables: &mut CtxTables, heap: AllocId, ctx: CtxId) -> HCtxId;

    /// Calling context for `target` invoked at `invoke` on receiver
    /// `(heap, hctx)` from a caller running in `caller`.
    fn merge(
        &self,
        tables: &mut CtxTables,
        heap: AllocId,
        hctx: HCtxId,
        invoke: InvokeId,
        target: MethodId,
        caller: CtxId,
    ) -> CtxId;

    /// Calling context for a static call (no receiver).
    fn merge_static(
        &self,
        tables: &mut CtxTables,
        invoke: InvokeId,
        target: MethodId,
        caller: CtxId,
    ) -> CtxId;
}

/// Truncates `elems` to the first `k` entries.
fn truncate(elems: Vec<ContextElem>, k: usize) -> Vec<ContextElem> {
    let mut elems = elems;
    elems.truncate(k);
    elems
}

/// The context-insensitive policy: every context is the constant `★`.
///
/// This is the paper's first-pass configuration:
/// `RECORD(heap, ctx) = ★`, `MERGE(heap, hctx, invo, ctx) = ★`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Insensitive;

impl ContextPolicy for Insensitive {
    fn name(&self) -> String {
        "insens".to_owned()
    }

    fn record(&self, _tables: &mut CtxTables, _heap: AllocId, _ctx: CtxId) -> HCtxId {
        HCtxId::EMPTY
    }

    fn merge(
        &self,
        _tables: &mut CtxTables,
        _heap: AllocId,
        _hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }

    fn merge_static(
        &self,
        _tables: &mut CtxTables,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }
}

/// The cut-shortcut policy: context-free like [`Insensitive`] — every
/// context is `★` — but under a distinct analysis name, because its
/// precision does not come from contexts at all. The solver applies the
/// flow-graph cuts and shortcut edges of a precomputed
/// [`crate::cutshortcut::CutSummary`] (carried in
/// [`crate::solver::SolverConfig::cuts`]) at every call edge, rerouting
/// per-site value flow that the plain insensitive analysis would merge
/// through shared formals. The distinct name keeps reports, telemetry
/// counters and the differential reference model apart from `insens`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CutShortcut;

impl ContextPolicy for CutShortcut {
    fn name(&self) -> String {
        "cutshortcut".to_owned()
    }

    fn record(&self, _tables: &mut CtxTables, _heap: AllocId, _ctx: CtxId) -> HCtxId {
        HCtxId::EMPTY
    }

    fn merge(
        &self,
        _tables: &mut CtxTables,
        _heap: AllocId,
        _hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }

    fn merge_static(
        &self,
        _tables: &mut CtxTables,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }
}

/// The summary-based compositional policy: context-free like
/// [`Insensitive`] — every context is `★` — but under a distinct analysis
/// name, because its precision comes from bottom-up method summaries, not
/// contexts. The solver replaces the conflating `ret → result` edge of
/// every call to a distilled method with per-site instantiations of the
/// method's [`crate::summaries::SummaryAtom`]s (carried in
/// [`crate::solver::SolverConfig::summaries`]); non-distilled methods keep
/// the ordinary edge — the hybrid split. The distinct name keeps reports,
/// telemetry counters and the differential reference model apart from
/// `insens` and `cutshortcut`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summaries;

impl ContextPolicy for Summaries {
    fn name(&self) -> String {
        "summaries".to_owned()
    }

    fn record(&self, _tables: &mut CtxTables, _heap: AllocId, _ctx: CtxId) -> HCtxId {
        HCtxId::EMPTY
    }

    fn merge(
        &self,
        _tables: &mut CtxTables,
        _heap: AllocId,
        _hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }

    fn merge_static(
        &self,
        _tables: &mut CtxTables,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        CtxId::EMPTY
    }
}

/// k-call-site-sensitivity with a heap-context depth (`2callH` is
/// `CallSiteSensitive::new(2, 1)`).
///
/// The callee context is the call site prepended to the caller's context,
/// truncated to `k`; the heap context of an allocation is the allocating
/// method's context truncated to `heap_k`.
#[derive(Debug, Clone, Copy)]
pub struct CallSiteSensitive {
    k: usize,
    heap_k: usize,
}

impl CallSiteSensitive {
    /// A `k`-call-site-sensitive policy with `heap_k` heap-context depth.
    pub fn new(k: usize, heap_k: usize) -> Self {
        CallSiteSensitive { k, heap_k }
    }
}

impl ContextPolicy for CallSiteSensitive {
    fn name(&self) -> String {
        if self.heap_k > 0 {
            format!(
                "{}call{}H",
                self.k,
                if self.heap_k == 1 {
                    "".into()
                } else {
                    format!("+{}", self.heap_k)
                }
            )
        } else {
            format!("{}call", self.k)
        }
    }

    fn record(&self, tables: &mut CtxTables, _heap: AllocId, ctx: CtxId) -> HCtxId {
        let elems = truncate(tables.ctx_elems(ctx).to_vec(), self.heap_k);
        tables.intern_hctx(&elems)
    }

    fn merge(
        &self,
        tables: &mut CtxTables,
        _heap: AllocId,
        _hctx: HCtxId,
        invoke: InvokeId,
        _target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        let mut elems = Vec::with_capacity(self.k);
        elems.push(ContextElem::Site(invoke));
        elems.extend_from_slice(tables.ctx_elems(caller));
        let elems = truncate(elems, self.k);
        tables.intern_ctx(&elems)
    }

    fn merge_static(
        &self,
        tables: &mut CtxTables,
        invoke: InvokeId,
        target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        // Call-site-sensitivity treats static calls like any other call.
        self.merge(tables, AllocId(0), HCtxId::EMPTY, invoke, target, caller)
    }
}

/// k-full-object-sensitivity with a heap-context depth (`2objH` is
/// `ObjectSensitive::new(2, 1)`).
///
/// The callee context is the receiver's allocation site prepended to the
/// receiver's heap context, truncated to `k` (Milanova et al.'s
/// full-object-sensitivity, as configured in the paper's baseline). Static
/// calls propagate the caller's context unchanged.
#[derive(Debug, Clone, Copy)]
pub struct ObjectSensitive {
    k: usize,
    heap_k: usize,
}

impl ObjectSensitive {
    /// A `k`-object-sensitive policy with `heap_k` heap-context depth.
    pub fn new(k: usize, heap_k: usize) -> Self {
        ObjectSensitive { k, heap_k }
    }
}

impl ContextPolicy for ObjectSensitive {
    fn name(&self) -> String {
        if self.heap_k > 0 {
            format!("{}objH", self.k)
        } else {
            format!("{}obj", self.k)
        }
    }

    fn record(&self, tables: &mut CtxTables, _heap: AllocId, ctx: CtxId) -> HCtxId {
        let elems = truncate(tables.ctx_elems(ctx).to_vec(), self.heap_k);
        tables.intern_hctx(&elems)
    }

    fn merge(
        &self,
        tables: &mut CtxTables,
        heap: AllocId,
        hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        let mut elems = Vec::with_capacity(self.k);
        elems.push(ContextElem::Heap(heap));
        elems.extend_from_slice(tables.hctx_elems(hctx));
        let elems = truncate(elems, self.k);
        tables.intern_ctx(&elems)
    }

    fn merge_static(
        &self,
        _tables: &mut CtxTables,
        _invoke: InvokeId,
        _target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        caller
    }
}

/// k-type-sensitivity with a heap-context depth (`2typeH` is
/// `TypeSensitive::new(2, 1, &program)`).
///
/// Like object-sensitivity, but each context element is coarsened to the
/// class *declaring the method that contains* the receiver's allocation
/// site (Smaragdakis et al., POPL 2011 — the upcast that keeps
/// type-sensitivity comparable to object-sensitivity).
#[derive(Debug, Clone)]
pub struct TypeSensitive {
    k: usize,
    heap_k: usize,
    /// Precomputed `H → T` coarsening.
    alloc_type: Arc<IdxVec<AllocId, ClassId>>,
}

impl TypeSensitive {
    /// A `k`-type-sensitive policy with `heap_k` heap-context depth for
    /// `program`.
    pub fn new(k: usize, heap_k: usize, program: &Program) -> Self {
        let alloc_type = program
            .allocs
            .values()
            .map(|a| program.methods[a.method].class)
            .collect();
        TypeSensitive {
            k,
            heap_k,
            alloc_type: Arc::new(alloc_type),
        }
    }
}

impl ContextPolicy for TypeSensitive {
    fn name(&self) -> String {
        if self.heap_k > 0 {
            format!("{}typeH", self.k)
        } else {
            format!("{}type", self.k)
        }
    }

    fn record(&self, tables: &mut CtxTables, _heap: AllocId, ctx: CtxId) -> HCtxId {
        let elems = truncate(tables.ctx_elems(ctx).to_vec(), self.heap_k);
        tables.intern_hctx(&elems)
    }

    fn merge(
        &self,
        tables: &mut CtxTables,
        heap: AllocId,
        hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        let mut elems = Vec::with_capacity(self.k);
        elems.push(ContextElem::Type(self.alloc_type[heap]));
        elems.extend_from_slice(tables.hctx_elems(hctx));
        let elems = truncate(elems, self.k);
        tables.intern_ctx(&elems)
    }

    fn merge_static(
        &self,
        _tables: &mut CtxTables,
        _invoke: InvokeId,
        _target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        caller
    }
}

/// Hybrid context-sensitivity (Kastrinis & Smaragdakis, PLDI 2013 — the
/// paper's related work \[12\]): object-sensitivity for virtual calls,
/// call-site-sensitivity for static calls, merged in one context string.
///
/// A static call pushes its call site onto the caller's context; a virtual
/// call rebuilds the context from the receiver as plain object-sensitivity
/// does. As the paper notes, for heavyweight benchmarks hybrid analyses
/// scale like their object-sensitive component — which our evaluation
/// harness can confirm empirically.
#[derive(Debug, Clone, Copy)]
pub struct HybridObjectSensitive {
    k: usize,
    heap_k: usize,
}

impl HybridObjectSensitive {
    /// A `k`-hybrid-object-sensitive policy with `heap_k` heap depth
    /// (`S2objH` is `HybridObjectSensitive::new(2, 1)`).
    pub fn new(k: usize, heap_k: usize) -> Self {
        HybridObjectSensitive { k, heap_k }
    }
}

impl ContextPolicy for HybridObjectSensitive {
    fn name(&self) -> String {
        format!("S{}obj{}", self.k, if self.heap_k > 0 { "H" } else { "" })
    }

    fn record(&self, tables: &mut CtxTables, _heap: AllocId, ctx: CtxId) -> HCtxId {
        let elems = truncate(tables.ctx_elems(ctx).to_vec(), self.heap_k);
        tables.intern_hctx(&elems)
    }

    fn merge(
        &self,
        tables: &mut CtxTables,
        heap: AllocId,
        hctx: HCtxId,
        _invoke: InvokeId,
        _target: MethodId,
        _caller: CtxId,
    ) -> CtxId {
        // Virtual dispatch: rebuild from the receiver, dropping any call
        // sites the receiver's heap context may carry beyond depth k-1.
        let mut elems = Vec::with_capacity(self.k);
        elems.push(ContextElem::Heap(heap));
        elems.extend_from_slice(tables.hctx_elems(hctx));
        let elems = truncate(elems, self.k);
        tables.intern_ctx(&elems)
    }

    fn merge_static(
        &self,
        tables: &mut CtxTables,
        invoke: InvokeId,
        _target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        // Static dispatch: remember the call site on top of the caller's
        // context (the hybrid twist).
        let mut elems = Vec::with_capacity(self.k + 1);
        elems.push(ContextElem::Site(invoke));
        elems.extend_from_slice(tables.ctx_elems(caller));
        let elems = truncate(elems, self.k + 1);
        tables.intern_ctx(&elems)
    }
}

/// The program elements selected for refinement, stored in complement form
/// (footnote 4 of the paper): the sets hold the elements that should *not*
/// be refined, because they are small.
///
/// A call site/target pair `(invo, meth)` is refined unless the invocation
/// or the target method is excluded; an object is refined unless its
/// allocation site is excluded.
#[derive(Debug, Clone)]
pub struct RefinementSet {
    /// Allocation sites that must keep the default (cheap) context.
    pub no_refine_objects: IdBitSet<AllocId>,
    /// Invocation sites whose calls keep the default context.
    pub no_refine_invokes: IdBitSet<InvokeId>,
    /// Methods whose invocations keep the default context (any call site).
    pub no_refine_methods: IdBitSet<MethodId>,
}

impl RefinementSet {
    /// A refinement set that refines everything (both exclusion sets empty):
    /// equivalent to running the refined policy unconditionally.
    pub fn refine_all(program: &Program) -> Self {
        RefinementSet {
            no_refine_objects: IdBitSet::new(program.allocs.len()),
            no_refine_invokes: IdBitSet::new(program.invokes.len()),
            no_refine_methods: IdBitSet::new(program.methods.len()),
        }
    }

    /// The model's `OBJECTTOREFINE(heap)`: should this object be analyzed
    /// with the refined (precise) context?
    #[inline]
    pub fn object_refined(&self, heap: AllocId) -> bool {
        !self.no_refine_objects.contains(heap)
    }

    /// The model's `SITETOREFINE(invo, meth)`: should this call be analyzed
    /// with the refined (precise) context?
    #[inline]
    pub fn site_refined(&self, invoke: InvokeId, target: MethodId) -> bool {
        !self.no_refine_invokes.contains(invoke) && !self.no_refine_methods.contains(target)
    }
}

/// Introspective context-sensitivity: per-element choice between a
/// *default* (cheap) and a *refined* (precise) policy.
///
/// This is the paper's §2 model collapsed into a policy: the duplicated
/// rules with `RECORD`/`RECORDREFINED` and `MERGE`/`MERGEREFINED` guarded
/// by the (complement-form) refinement sets.
#[derive(Debug)]
pub struct Introspective<D, R> {
    default: D,
    refined: R,
    refinement: RefinementSet,
    label: String,
}

impl<D: ContextPolicy, R: ContextPolicy> Introspective<D, R> {
    /// A policy applying `refined` to refined elements and `default`
    /// elsewhere, per `refinement`. `label` names the heuristic for
    /// reports, e.g. `"IntroA"`.
    pub fn new(default: D, refined: R, refinement: RefinementSet, label: &str) -> Self {
        let label = format!("{}-{}", refined.name(), label);
        Introspective {
            default,
            refined,
            refinement,
            label,
        }
    }

    /// The refinement decisions this policy applies.
    pub fn refinement(&self) -> &RefinementSet {
        &self.refinement
    }
}

impl<D: ContextPolicy, R: ContextPolicy> ContextPolicy for Introspective<D, R> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn record(&self, tables: &mut CtxTables, heap: AllocId, ctx: CtxId) -> HCtxId {
        if self.refinement.object_refined(heap) {
            self.refined.record(tables, heap, ctx)
        } else {
            self.default.record(tables, heap, ctx)
        }
    }

    fn merge(
        &self,
        tables: &mut CtxTables,
        heap: AllocId,
        hctx: HCtxId,
        invoke: InvokeId,
        target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        if self.refinement.site_refined(invoke, target) {
            self.refined
                .merge(tables, heap, hctx, invoke, target, caller)
        } else {
            self.default
                .merge(tables, heap, hctx, invoke, target, caller)
        }
    }

    fn merge_static(
        &self,
        tables: &mut CtxTables,
        invoke: InvokeId,
        target: MethodId,
        caller: CtxId,
    ) -> CtxId {
        if self.refinement.site_refined(invoke, target) {
            self.refined.merge_static(tables, invoke, target, caller)
        } else {
            self.default.merge_static(tables, invoke, target, caller)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        let mut b = rudoop_ir::ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn insensitive_always_returns_empty() {
        let mut t = CtxTables::new();
        let p = Insensitive;
        assert_eq!(p.record(&mut t, AllocId(3), CtxId::EMPTY), HCtxId::EMPTY);
        assert_eq!(
            p.merge(
                &mut t,
                AllocId(3),
                HCtxId::EMPTY,
                InvokeId(1),
                MethodId(0),
                CtxId::EMPTY
            ),
            CtxId::EMPTY
        );
        assert_eq!(t.ctx_count(), 1);
    }

    #[test]
    fn call_site_pushes_and_truncates() {
        let mut t = CtxTables::new();
        let p = CallSiteSensitive::new(2, 1);
        let c1 = p.merge_static(&mut t, InvokeId(1), MethodId(0), CtxId::EMPTY);
        let c2 = p.merge_static(&mut t, InvokeId(2), MethodId(0), c1);
        let c3 = p.merge_static(&mut t, InvokeId(3), MethodId(0), c2);
        assert_eq!(
            t.ctx_elems(c2),
            &[
                ContextElem::Site(InvokeId(2)),
                ContextElem::Site(InvokeId(1))
            ]
        );
        assert_eq!(
            t.ctx_elems(c3),
            &[
                ContextElem::Site(InvokeId(3)),
                ContextElem::Site(InvokeId(2))
            ]
        );
    }

    #[test]
    fn call_site_heap_context_takes_allocating_context_prefix() {
        let mut t = CtxTables::new();
        let p = CallSiteSensitive::new(2, 1);
        let c = p.merge_static(&mut t, InvokeId(9), MethodId(0), CtxId::EMPTY);
        let h = p.record(&mut t, AllocId(0), c);
        assert_eq!(t.hctx_elems(h), &[ContextElem::Site(InvokeId(9))]);
    }

    #[test]
    fn object_sensitive_context_is_receiver_chain() {
        let mut t = CtxTables::new();
        let p = ObjectSensitive::new(2, 1);
        // Receiver o1 with empty heap ctx: callee ctx = [o1].
        let c1 = p.merge(
            &mut t,
            AllocId(1),
            HCtxId::EMPTY,
            InvokeId(0),
            MethodId(0),
            CtxId::EMPTY,
        );
        assert_eq!(t.ctx_elems(c1), &[ContextElem::Heap(AllocId(1))]);
        // Object o2 allocated under c1: heap ctx = [o1].
        let h2 = p.record(&mut t, AllocId(2), c1);
        assert_eq!(t.hctx_elems(h2), &[ContextElem::Heap(AllocId(1))]);
        // Call on (o2, [o1]): callee ctx = [o2, o1].
        let c2 = p.merge(
            &mut t,
            AllocId(2),
            h2,
            InvokeId(0),
            MethodId(0),
            CtxId::EMPTY,
        );
        assert_eq!(
            t.ctx_elems(c2),
            &[ContextElem::Heap(AllocId(2)), ContextElem::Heap(AllocId(1))]
        );
        // Static calls pass the caller context through.
        assert_eq!(p.merge_static(&mut t, InvokeId(5), MethodId(0), c2), c2);
    }

    #[test]
    fn type_sensitive_coarsens_to_allocator_class() {
        let program = tiny_program();
        let mut t = CtxTables::new();
        let p = TypeSensitive::new(2, 1, &program);
        let c = p.merge(
            &mut t,
            AllocId(0),
            HCtxId::EMPTY,
            InvokeId(0),
            MethodId(0),
            CtxId::EMPTY,
        );
        assert_eq!(t.ctx_elems(c), &[ContextElem::Type(ClassId(0))]);
    }

    #[test]
    fn introspective_dispatches_per_element() {
        let program = tiny_program();
        let mut refinement = RefinementSet::refine_all(&program);
        refinement.no_refine_objects.insert(AllocId(0));
        let p = Introspective::new(
            Insensitive,
            ObjectSensitive::new(2, 1),
            refinement,
            "IntroT",
        );
        let mut t = CtxTables::new();
        // AllocId(0) excluded: default (insensitive) record.
        let deep = t.intern_ctx(&[ContextElem::Heap(AllocId(0))]);
        assert_eq!(p.record(&mut t, AllocId(0), deep), HCtxId::EMPTY);
        // Sites are all refined: merge builds an object-sensitive context.
        let c = p.merge(
            &mut t,
            AllocId(0),
            HCtxId::EMPTY,
            InvokeId(0),
            MethodId(0),
            CtxId::EMPTY,
        );
        assert_eq!(t.ctx_elems(c), &[ContextElem::Heap(AllocId(0))]);
        assert!(p.name().contains("IntroT"));
    }

    #[test]
    fn refinement_set_semantics_match_complement_form() {
        let program = tiny_program();
        let mut r = RefinementSet::refine_all(&program);
        assert!(r.object_refined(AllocId(0)));
        assert!(r.site_refined(InvokeId(0), MethodId(0)));
        r.no_refine_methods.insert(MethodId(0));
        assert!(!r.site_refined(InvokeId(0), MethodId(0)));
    }

    #[test]
    fn policy_names_are_doop_style() {
        let program = tiny_program();
        assert_eq!(Insensitive.name(), "insens");
        assert_eq!(CutShortcut.name(), "cutshortcut");
        assert_eq!(Summaries.name(), "summaries");
        assert_eq!(CallSiteSensitive::new(2, 1).name(), "2callH");
        assert_eq!(ObjectSensitive::new(2, 1).name(), "2objH");
        assert_eq!(TypeSensitive::new(2, 1, &program).name(), "2typeH");
        assert_eq!(HybridObjectSensitive::new(2, 1).name(), "S2objH");
    }

    #[test]
    fn hybrid_pushes_sites_for_static_and_objects_for_virtual() {
        let mut t = CtxTables::new();
        let p = HybridObjectSensitive::new(2, 1);
        // Static call from the empty context: remembers the site.
        let c1 = p.merge_static(&mut t, InvokeId(5), MethodId(0), CtxId::EMPTY);
        assert_eq!(t.ctx_elems(c1), &[ContextElem::Site(InvokeId(5))]);
        // Virtual call inside it: rebuilds from the receiver.
        let c2 = p.merge(
            &mut t,
            AllocId(3),
            HCtxId::EMPTY,
            InvokeId(9),
            MethodId(0),
            c1,
        );
        assert_eq!(t.ctx_elems(c2), &[ContextElem::Heap(AllocId(3))]);
        // Static call inside a virtual context keeps the object below.
        let c3 = p.merge_static(&mut t, InvokeId(7), MethodId(0), c2);
        assert_eq!(
            t.ctx_elems(c3),
            &[
                ContextElem::Site(InvokeId(7)),
                ContextElem::Heap(AllocId(3))
            ]
        );
    }
}
