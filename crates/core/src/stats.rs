//! Analysis-result statistics: the "introspection dashboard".
//!
//! The paper's §3 intuition — "there are many program elements whose
//! analysis cost is vastly disproportionate to their importance" — is an
//! empirical claim about the *distribution* of points-to sizes. This module
//! computes that distribution and the heavy hitters, both for inspection
//! (the CLI's `--stats` flag) and for documentation of workload shapes.

use rudoop_ir::{MethodId, Program, VarId};

use crate::introspection::IntrospectionMetrics;
use crate::solver::PointsToResult;
use crate::supervisor::{SupervisedRun, SupervisionVerdict};

/// A log₂ histogram of points-to set sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeHistogram {
    /// `buckets[i]` counts sets with size in `[2^i, 2^(i+1))`; bucket 0
    /// counts singletons, and `empty` counts empty sets.
    pub buckets: Vec<u64>,
    /// Number of empty sets.
    pub empty: u64,
    /// Largest set observed.
    pub max: usize,
    /// Total elements over all sets.
    pub total: u64,
}

impl SizeHistogram {
    fn from_sizes(sizes: impl Iterator<Item = usize>) -> Self {
        let mut buckets = vec![0u64; 1];
        let mut empty = 0u64;
        let mut max = 0usize;
        let mut total = 0u64;
        for s in sizes {
            total += s as u64;
            max = max.max(s);
            if s == 0 {
                empty += 1;
                continue;
            }
            let b = (usize::BITS - 1 - s.leading_zeros()) as usize;
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        SizeHistogram {
            buckets,
            empty,
            max,
            total,
        }
    }

    /// Renders like `0:12 1:5 2-3:9 4-7:2 …`.
    pub fn render(&self) -> String {
        let mut parts = vec![format!("empty:{}", self.empty)];
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1usize << i;
            let hi = (1usize << (i + 1)) - 1;
            if lo == hi {
                parts.push(format!("{lo}:{count}"));
            } else {
                parts.push(format!("{lo}-{hi}:{count}"));
            }
        }
        parts.join(" ")
    }
}

/// Distribution statistics for one analysis result.
#[derive(Debug, Clone)]
pub struct ResultStats {
    /// Histogram of projected var-points-to sizes.
    pub var_pts_histogram: SizeHistogram,
    /// Histogram of projected field-points-to sizes.
    pub field_pts_histogram: SizeHistogram,
    /// The `n` variables with the largest points-to sets.
    pub fattest_vars: Vec<(VarId, usize)>,
    /// The `n` methods with the largest total points-to volume (metric #2).
    pub fattest_methods: Vec<(MethodId, u32)>,
}

impl ResultStats {
    /// Computes distribution statistics, keeping the top `n` heavy hitters.
    pub fn compute(program: &Program, result: &PointsToResult, n: usize) -> Self {
        let var_pts_histogram = SizeHistogram::from_sizes(result.var_pts.values().map(Vec::len));
        let field_pts_histogram =
            SizeHistogram::from_sizes(result.field_pts.values().map(Vec::len));

        let mut fattest_vars: Vec<(VarId, usize)> = result
            .var_pts
            .iter()
            .map(|(v, pts)| (v, pts.len()))
            .collect();
        fattest_vars.sort_by_key(|&(v, len)| (std::cmp::Reverse(len), v));
        fattest_vars.truncate(n);

        let metrics = IntrospectionMetrics::compute(program, result);
        let mut fattest_methods: Vec<(MethodId, u32)> = metrics
            .method_total_pts
            .iter()
            .map(|(m, &vol)| (m, vol))
            .collect();
        fattest_methods.sort_by_key(|&(m, vol)| (std::cmp::Reverse(vol), m));
        fattest_methods.truncate(n);

        ResultStats {
            var_pts_histogram,
            field_pts_histogram,
            fattest_vars,
            fattest_methods,
        }
    }

    /// Renders a human-readable dashboard.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "var-points-to sizes:   {}",
            self.var_pts_histogram.render()
        );
        let _ = writeln!(
            out,
            "field-points-to sizes: {}",
            self.field_pts_histogram.render()
        );
        let _ = writeln!(out, "fattest variables:");
        for &(v, len) in &self.fattest_vars {
            let _ = writeln!(out, "  {:>8}  {}", len, program.var_display(v));
        }
        let _ = writeln!(out, "fattest methods (total points-to volume):");
        for &(m, vol) in &self.fattest_methods {
            let _ = writeln!(out, "  {:>8}  {}", vol, program.method_display(m));
        }
        out
    }
}

/// Busiest shard's work relative to the per-shard mean; `1.0` for empty or
/// all-idle slices.
fn shard_imbalance(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 1.0;
    }
    let max = *work.iter().max().expect("non-empty");
    let mean = work.iter().sum::<u64>() as f64 / work.len() as f64;
    if mean > 0.0 {
        max as f64 / mean
    } else {
        1.0
    }
}

/// Renders the attempt history of a supervised run as a ladder table —
/// one line per rung with its outcome, stop cause, work counters, and
/// salvage summary — followed by the verdict line the CLI prints.
pub fn render_supervised(run: &SupervisedRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "degradation ladder:");
    for (i, a) in run.attempts.iter().enumerate() {
        let marker = if Some(i) == run.completed_rung {
            '*'
        } else {
            ' '
        };
        let status = match a.exhaustion {
            None => "complete".to_owned(),
            Some(cause) => format!("stopped: {cause}"),
        };
        // Sharded rungs get an imbalance column: the worst epoch's ratio of
        // busiest-shard derivations to the per-shard mean (1.00x = a
        // perfectly balanced partition). Whole-run totals average out
        // transient skew, so the column reports the max over epochs; the
        // per-epoch series itself is available through telemetry. Runs
        // recorded before per-epoch tracking fall back to the cumulative
        // ratio.
        let imbalance = match (&a.epoch_shard_work, &a.shard_work) {
            (Some(epochs), Some(work)) if !work.is_empty() => {
                let worst = epochs
                    .iter()
                    .map(|e| shard_imbalance(e))
                    .fold(1.0f64, f64::max);
                format!("  threads={} imbalance={worst:.2}x", work.len())
            }
            (None, Some(work)) if !work.is_empty() => {
                format!(
                    "  threads={} imbalance={:.2}x",
                    work.len(),
                    shard_imbalance(work)
                )
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{marker} [{i}] {:<18} {:<28} derivations={:<10} bytes~{:<12} salvaged: {} vars / {} calls / {} methods{imbalance}",
            a.rung.spec(),
            status,
            a.stats.derivations,
            a.stats.bytes_estimate(),
            a.salvaged.vars_with_facts,
            a.salvaged.resolved_call_sites,
            a.salvaged.reachable_methods,
        );
        if a.ran_first_pass {
            let _ = writeln!(out, "      (computed shared insensitive first pass)");
        }
    }
    match run.verdict {
        SupervisionVerdict::Complete => {
            let _ = writeln!(
                out,
                "verdict: complete — {} finished within budget",
                run.final_analysis().unwrap_or("?")
            );
        }
        SupervisionVerdict::Degraded => {
            let _ = writeln!(
                out,
                "verdict: degraded — fell back to {} (rung {})",
                run.final_analysis().unwrap_or("?"),
                run.completed_rung.unwrap_or(0)
            );
        }
        SupervisionVerdict::Exhausted => {
            let salvage = run
                .salvaged
                .as_ref()
                .map(|s| {
                    let f = crate::supervisor::SalvagedFacts::of(s);
                    format!(
                        "best partial result kept: {} vars with facts, {} resolved calls",
                        f.vars_with_facts, f.resolved_call_sites
                    )
                })
                .unwrap_or_else(|| "no partial result".to_owned());
            let _ = writeln!(
                out,
                "verdict: exhausted — every rung ran out of budget; {salvage}"
            );
        }
    }
    out
}

/// Renders the full non-empty points-to dump as the CLI's `--dump` report:
/// one `var -> {Class, ...}` line per variable with facts, in variable
/// order. The daemon serves this exact string so service responses are
/// byte-identical to batch stdout.
pub fn render_dump(program: &Program, result: &PointsToResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (v, pts) in result.var_pts.iter() {
        if pts.is_empty() {
            continue;
        }
        let names: Vec<String> = pts
            .iter()
            .map(|&h| program.classes[program.allocs[h].class].name.clone())
            .collect();
        let _ = writeln!(
            out,
            "{} -> {{{}}}",
            program.var_display(v),
            names.join(", ")
        );
    }
    out
}

/// Renders the CLI's `--pts` report for one variable query: one
/// `var -> {Class@alloc, ...}` line per matching variable, or `None` when
/// nothing matches (the CLI notes that on stderr; the daemon answers with
/// a typed error). The daemon serves this exact string so service
/// responses are byte-identical to batch stdout.
pub fn render_pts(program: &Program, result: &PointsToResult, query: &str) -> Option<String> {
    use std::fmt::Write as _;
    let matched: Vec<_> = program
        .vars
        .iter()
        .filter(|&(v, _)| program.var_display(v) == *query || program.vars[v].name == *query)
        .collect();
    if matched.is_empty() {
        return None;
    }
    let mut out = String::new();
    for (v, _) in matched {
        let names: Vec<String> = result
            .points_to(v)
            .iter()
            .map(|&h| format!("{}@{}", program.classes[program.allocs[h].class].name, h))
            .collect();
        let _ = writeln!(
            out,
            "{} -> {{{}}}",
            program.var_display(v),
            names.join(", ")
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Insensitive;
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    fn fixture() -> (Program, PointsToResult) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let fat = b.var(main, "fat");
        for i in 0..5 {
            let v = b.var(main, &format!("v{i}"));
            b.alloc(main, v, obj);
            b.mov(main, fat, v);
        }
        let _lonely = b.var(main, "lonely");
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        (p, r)
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = SizeHistogram::from_sizes([0, 1, 1, 2, 3, 5, 9].into_iter());
        assert_eq!(h.empty, 1);
        assert_eq!(h.buckets[0], 2); // size 1
        assert_eq!(h.buckets[1], 2); // sizes 2-3
        assert_eq!(h.buckets[2], 1); // sizes 4-7
        assert_eq!(h.buckets[3], 1); // sizes 8-15
        assert_eq!(h.max, 9);
        assert_eq!(h.total, 21);
        assert!(h.render().starts_with("empty:1 1:2"));
    }

    #[test]
    fn fattest_vars_are_sorted_descending() {
        let (p, r) = fixture();
        let stats = ResultStats::compute(&p, &r, 3);
        assert_eq!(stats.fattest_vars.len(), 3);
        assert_eq!(stats.fattest_vars[0].1, 5, "the `fat` variable leads");
        assert!(stats.fattest_vars[0].1 >= stats.fattest_vars[1].1);
        let rendered = stats.render(&p);
        assert!(rendered.contains("fat"), "{rendered}");
    }

    #[test]
    fn empty_sets_are_counted() {
        let (p, r) = fixture();
        let stats = ResultStats::compute(&p, &r, 2);
        assert!(
            stats.var_pts_histogram.empty >= 1,
            "lonely var has no objects"
        );
    }
}
