//! Context-sensitive data-race detection, layered on the points-to substrate.
//!
//! The race client reinterprets the solver's context-sensitive call graph:
//! every [`Instruction::Spawn`] site is an ordinary virtual call of `run/0`
//! to the solver, so the resolved edges out of spawn sites *are* the
//! thread-creation graph, at full context precision. From them the client
//! computes
//!
//! 1. **EXEC** — which `(method, context)` instances each abstract thread
//!    (main, plus one per reachable spawn site) may execute, a least
//!    fixpoint over the context-sensitive call graph where spawn edges
//!    switch threads and all other edges stay in-thread;
//! 2. **MHP** — which access instances may happen in parallel: distinct
//!    threads always may, except accesses structurally ordered inside a
//!    once-executed spawning body (before the spawn, or after a matching
//!    `join` of the spawn's receiver); a thread is parallel with itself iff
//!    its spawn site may execute more than once (the once/multi method
//!    classification over the projected call graph);
//! 3. **lock sets** — structural `monitorenter`/`monitorexit` regions plus
//!    an interprocedural must-lock greatest fixpoint, with each lock
//!    variable resolved through points-to. A region *guards* only when the
//!    lock variable points to exactly one allocation site (must-alias); a
//!    region whose lock points to nothing is dead and its accesses are
//!    excluded.
//!
//! A **race** is a pair of accesses to the same field (or the same static
//! field) where the base objects may alias under their contexts, at least
//! one side writes, the instances may happen in parallel, and the sides
//! hold no common abstract lock. Witnesses are deterministic: one per
//! `(field, site, site)` triple, each side carrying a shortest
//! thread-root-to-access call chain, mirroring the taint client's traces.
//!
//! Precision and soundness: merging contexts only grows points-to sets, so
//! base aliasing and MHP only grow under a coarser policy, while the
//! must-alias lock resolution can only *lose* singletons — under
//! refinement a coarse singleton `{h}` either stays `{h}` or becomes
//! empty (a dead region, also excluded). Hence `races(2objH) ⊆
//! races(introspective) ⊆ races(insens)`: the differential suite asserts
//! this chain, and the Datalog reference model in `rudoop-datalog` pins
//! the race set byte-identical. The deliberate soundness gap — a singleton
//! allocation site may still stand for many runtime objects — is not
//! hidden but surfaced as the R002 lint via
//! [`RaceResult::suspect_guards`].

use std::collections::BTreeSet;
use std::fmt;

use rudoop_ir::{
    AllocId, FieldId, GlobalId, Instruction, InvokeId, InvokeKind, MethodId, Program, VarId,
};

use crate::context::CtxId;
use crate::hash::{FxHashMap, FxHashSet};
use crate::solver::PointsToResult;
use crate::supervisor::SupervisedRun;
use crate::taint::{json_escape, CtxCanon};

/// A statement position: `(method, statement index)`.
pub type Site = (MethodId, usize);
/// A method analyzed under a calling context.
type CtxNode = (MethodId, CtxId);

/// What a racy access touches: an instance field or a static field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKey {
    /// An instance field (the base objects must may-alias to conflict).
    Field(FieldId),
    /// A static field (a single slot; accesses always conflict).
    Global(GlobalId),
}

/// One side of a race witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceAccess {
    /// Method containing the access.
    pub method: MethodId,
    /// Body index of the access instruction.
    pub index: usize,
    /// Whether this side writes.
    pub is_write: bool,
    /// Rendered label of the thread performing the access (`main` or
    /// `spawn@Class.m/…:i`).
    pub thread: String,
    /// Shortest call chain from the thread root to the access, one
    /// rendered line per step, ending with the access itself.
    pub trace: Vec<String>,
}

/// One data-race witness: two conflicting, parallel, unguarded accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The contended field or static slot.
    pub key: RaceKey,
    /// Rendered location, e.g. `Counter.hits` or `static Registry.all`.
    pub location: String,
    /// First access, site-ordered: `(a.method, a.index) <= (b.method,
    /// b.index)`.
    pub a: RaceAccess,
    /// Second access.
    pub b: RaceAccess,
}

/// A monitor region whose singleton lock abstraction may stand for more
/// than one runtime object — the exclusion it provides is suspect (R002).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SuspectGuard {
    /// Method containing the `monitorenter`.
    pub method: MethodId,
    /// Body index of the `monitorenter`.
    pub index: usize,
    /// The abstract lock object.
    pub lock: AllocId,
}

/// An object reachable from a thread other than the one whose code
/// allocated it (R003).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Escape {
    /// The escaping allocation site.
    pub alloc: AllocId,
    /// Method containing the foreign access.
    pub method: MethodId,
    /// Body index of the foreign access.
    pub index: usize,
}

/// The output of [`analyze_races`]: deterministic race witnesses plus the
/// observations the R-series lints consume.
#[derive(Debug, Clone)]
pub struct RaceResult {
    /// `analysis` name of the underlying points-to run.
    pub analysis: String,
    /// All witnesses, sorted by `(key, a-site, b-site)`; exactly one
    /// witness per such triple.
    pub races: Vec<Race>,
    /// Rendered thread labels, `main` first, then spawn sites in id order.
    pub threads: Vec<String>,
    /// Distinct reachable access sites `(method, index)`.
    pub access_sites: usize,
    /// Access sites holding at least one must-lock in some instance.
    pub guarded_sites: usize,
    /// Access sites excluded because an enclosing lock points to nothing.
    pub dead_sites: usize,
    /// Monitor regions with a singleton lock whose allocation site may
    /// have multiple live instances, sorted (R002).
    pub suspect_guards: Vec<SuspectGuard>,
    /// Monitor regions with no access and no call strictly inside,
    /// sorted (R004).
    pub dead_regions: Vec<(MethodId, usize)>,
    /// Cross-thread object escapes, sorted (R003).
    pub escapes: Vec<Escape>,
}

impl RaceResult {
    /// The context-free projection of the race set, sorted: `(key, site A,
    /// site B)` with A ≤ B. This is the canonical form the differential
    /// tests compare against the Datalog reference model.
    pub fn race_set(&self) -> Vec<(RaceKey, Site, Site)> {
        self.races
            .iter()
            .map(|r| (r.key, (r.a.method, r.a.index), (r.b.method, r.b.index)))
            .collect()
    }
}

/// Why race analysis could not run on a points-to result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceError {
    /// The result carries no context-sensitive dump (`record_contexts` was
    /// off).
    MissingContextDump,
    /// The points-to run did not complete; an MHP relation over partial
    /// facts would under-report races.
    IncompleteAnalysis(String),
}

impl fmt::Display for RaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceError::MissingContextDump => f.write_str(
                "points-to result has no context-sensitive dump (enable record_contexts)",
            ),
            RaceError::IncompleteAnalysis(name) => write!(
                f,
                "points-to run {name:?} is incomplete; refusing to report a partial race list"
            ),
        }
    }
}

impl std::error::Error for RaceError {}

/// The outcome of running race detection under the supervisor's exit
/// contract.
#[derive(Debug, Clone)]
pub enum SupervisedRaces {
    /// Races ran on a *complete* (possibly degraded-but-sound) rung result.
    Analyzed(RaceResult),
    /// No complete rung result was available; race detection was skipped
    /// rather than reporting a partial race list as if it were complete.
    Skipped {
        /// Human-readable explanation for the report.
        reason: String,
    },
}

impl SupervisedRaces {
    /// The analyzed result, when race detection ran.
    pub fn as_analyzed(&self) -> Option<&RaceResult> {
        match self {
            SupervisedRaces::Analyzed(r) => Some(r),
            SupervisedRaces::Skipped { .. } => None,
        }
    }
}

/// Runs race detection over the outcome of a supervised ladder run,
/// honoring the degradation contract: a completed rung (even a degraded
/// one) is a sound points-to abstraction and the client runs on it; an
/// exhausted ladder yields [`SupervisedRaces::Skipped`].
pub fn supervised_races(program: &Program, run: &SupervisedRun) -> SupervisedRaces {
    supervised_races_traced(program, run, &None)
}

/// [`supervised_races`] with telemetry: wraps the run in a `races` span and
/// emits a `races-skipped` instant when the degradation contract forces a
/// skip. Passing `&None` is equivalent to the untraced entry point.
pub fn supervised_races_traced(
    program: &Program,
    run: &SupervisedRun,
    tele: &crate::telemetry::TelemetryHandle,
) -> SupervisedRaces {
    let outcome = match &run.result {
        Some(result) => match analyze_races_traced(program, result, tele) {
            Ok(r) => SupervisedRaces::Analyzed(r),
            Err(e) => SupervisedRaces::Skipped {
                reason: e.to_string(),
            },
        },
        None => SupervisedRaces::Skipped {
            reason: format!(
                "all {} ladder rung(s) exhausted; points-to facts are partial and race \
                 detection would under-report races",
                run.attempts.len()
            ),
        },
    };
    if let (Some(t), SupervisedRaces::Skipped { reason }) = (tele.as_deref(), &outcome) {
        t.instant("races-skipped", vec![("reason".into(), reason.clone())]);
    }
    outcome
}

/// Runs the race client over a completed points-to result.
///
/// The result must have been produced with
/// [`record_contexts`](crate::solver::SolverConfig::record_contexts) so the
/// context-sensitive relations are available.
///
/// # Errors
///
/// [`RaceError::MissingContextDump`] without a dump,
/// [`RaceError::IncompleteAnalysis`] when the run was cut short.
pub fn analyze_races(program: &Program, pts: &PointsToResult) -> Result<RaceResult, RaceError> {
    analyze_races_traced(program, pts, &None)
}

/// How a lock variable resolves under a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockRes {
    /// Points to nothing: the region is dead.
    Dead,
    /// Points to several allocation sites: no must-alias, no guard.
    Many,
    /// Points to exactly one allocation site: guards by that lock.
    One(AllocId),
}

/// Structural concurrency shape of one method body.
#[derive(Debug, Default)]
struct BodyShape {
    /// `(enter index, exit index, lock var)` per well-bracketed region.
    regions: Vec<(usize, usize, VarId)>,
    /// `(index, invoke, receiver var)` per spawn site.
    spawns: Vec<(usize, InvokeId, VarId)>,
    /// `(index, var)` per join.
    joins: Vec<(usize, VarId)>,
    /// Number of body instructions defining each var (for the
    /// single-assignment guard on join matching).
    defs: FxHashMap<VarId, usize>,
}

/// One context-qualified access instance, with the threads executing it.
#[derive(Debug)]
struct AccessInst {
    site: (MethodId, usize),
    ctx: CtxId,
    key: RaceKey,
    base: Option<VarId>,
    write: bool,
    locks: BTreeSet<AllocId>,
    threads: Vec<usize>,
}

/// [`analyze_races`] with telemetry: the whole client runs under a `races`
/// span with nested `races-mhp` (thread/EXEC/once-multi computation) and
/// `races-locks` (regions plus the interprocedural must-lock fixpoint)
/// spans, and the structural tallies land in the deterministic counter
/// stream. Passing `&None` is equivalent to the untraced entry point.
pub fn analyze_races_traced(
    program: &Program,
    pts: &PointsToResult,
    tele: &crate::telemetry::TelemetryHandle,
) -> Result<RaceResult, RaceError> {
    let span = crate::telemetry::span_opt(tele, "races");
    if let Some(s) = &span {
        s.arg("analysis", &pts.analysis);
    }
    if !pts.outcome.is_complete() {
        return Err(RaceError::IncompleteAnalysis(pts.analysis.clone()));
    }
    let dump = pts.cs_dump.as_ref().ok_or(RaceError::MissingContextDump)?;
    let canon = CtxCanon::build(dump, &pts.tables);

    // Canonicalized relations, exactly as the taint client builds them:
    // everything order-sensitive downstream runs on content-ranked ids.
    let mut vpt: FxHashMap<(VarId, CtxId), Vec<(AllocId, crate::context::HCtxId)>> =
        FxHashMap::default();
    for &(var, ctx, heap, hctx) in &dump.var_points_to {
        vpt.entry((var, canon.ctx(ctx)))
            .or_default()
            .push((heap, canon.hctx(hctx)));
    }
    for objs in vpt.values_mut() {
        objs.sort_unstable();
        objs.dedup();
    }
    let mut reachable: Vec<(MethodId, CtxId)> = dump
        .reachable
        .iter()
        .map(|&(m, c)| (m, canon.ctx(c)))
        .collect();
    reachable.sort_unstable();
    reachable.dedup();
    let mut call_graph: Vec<(InvokeId, CtxId, MethodId, CtxId)> = dump
        .call_graph
        .iter()
        .map(|&(i, cc, m, ec)| (i, canon.ctx(cc), m, canon.ctx(ec)))
        .collect();
    call_graph.sort_unstable();
    call_graph.dedup();

    // Body index of every invoke site, and the structural shape of every
    // method body.
    let mut invoke_at: FxHashMap<InvokeId, (MethodId, usize)> = FxHashMap::default();
    let mut shapes: FxHashMap<MethodId, BodyShape> = FxHashMap::default();
    for (mid, m) in program.methods.iter() {
        let mut shape = BodyShape::default();
        let mut stack: Vec<(usize, VarId)> = Vec::new();
        for (i, instr) in m.body.iter().enumerate() {
            match *instr {
                Instruction::Call { invoke } => {
                    invoke_at.insert(invoke, (mid, i));
                }
                Instruction::Spawn { invoke } => {
                    invoke_at.insert(invoke, (mid, i));
                    let base = match program.invokes[invoke].kind {
                        InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => base,
                        // The validator rejects static spawns; tolerate by
                        // treating the (absent) receiver as a fresh var.
                        InvokeKind::Static { .. } => continue,
                    };
                    shape.spawns.push((i, invoke, base));
                }
                Instruction::Join { var } => shape.joins.push((i, var)),
                Instruction::MonitorEnter { var } => stack.push((i, var)),
                Instruction::MonitorExit { var } => {
                    if let Some((enter, v)) = stack.pop() {
                        if v == var {
                            shape.regions.push((enter, i, v));
                        }
                    }
                }
                _ => {}
            }
            if let Some(d) = defined_var(program, instr) {
                *shape.defs.entry(d).or_insert(0) += 1;
            }
        }
        shape.regions.sort_unstable();
        shapes.insert(mid, shape);
    }

    // ---- Threads and the EXEC relation (races-mhp span) -----------------
    let mhp_span = crate::telemetry::span_opt(tele, "races-mhp");

    let spawn_site_set: FxHashSet<InvokeId> =
        program.spawn_sites().map(|(_, _, inv)| inv).collect();
    let mut spawn_threads: Vec<InvokeId> = call_graph
        .iter()
        .filter(|&&(inv, _, _, _)| spawn_site_set.contains(&inv))
        .map(|&(inv, _, _, _)| inv)
        .collect();
    spawn_threads.sort_unstable();
    spawn_threads.dedup();
    // Thread 0 is main; thread i+1 is the thread of spawn site i.
    let thread_roots: Vec<Option<InvokeId>> = std::iter::once(None)
        .chain(spawn_threads.iter().copied().map(Some))
        .collect();
    let thread_of: FxHashMap<InvokeId, usize> = spawn_threads
        .iter()
        .enumerate()
        .map(|(i, &inv)| (inv, i + 1))
        .collect();

    let mut edges_from: FxHashMap<CtxNode, Vec<(InvokeId, MethodId, CtxId)>> = FxHashMap::default();
    for &(inv, cctx, m, ectx) in &call_graph {
        edges_from
            .entry((program.invokes[inv].method, cctx))
            .or_default()
            .push((inv, m, ectx));
    }
    for out in edges_from.values_mut() {
        out.sort_unstable();
        out.dedup();
    }

    let entry_set: FxHashSet<MethodId> = program.entry_points.iter().copied().collect();
    let entry_seeds: Vec<(MethodId, CtxId)> = reachable
        .iter()
        .copied()
        .filter(|&(m, c)| {
            entry_set.contains(&m) && pts.tables.ctx_elems(canon.orig_ctx(c)).is_empty()
        })
        .collect();

    let mut exec: FxHashMap<(MethodId, CtxId), BTreeSet<usize>> = FxHashMap::default();
    let mut worklist: Vec<(MethodId, CtxId, usize)> =
        entry_seeds.iter().map(|&(m, c)| (m, c, 0usize)).collect();
    while let Some((m, c, t)) = worklist.pop() {
        if !exec.entry((m, c)).or_default().insert(t) {
            continue;
        }
        if let Some(out) = edges_from.get(&(m, c)) {
            for &(inv, m2, c2) in out {
                let t2 = match thread_of.get(&inv) {
                    Some(&spawned) => spawned,
                    None => t,
                };
                worklist.push((m2, c2, t2));
            }
        }
    }

    // Once/multi classification over the projected (context-insensitive)
    // call graph: a method may execute more than once if it has two
    // distinct incoming call sites (counting the entry seed as one), sits
    // in a call-graph cycle, or is reachable from a multi caller. Spawn
    // edges participate like any other edge — a spawn site executes once
    // per execution of its enclosing body.
    let mut incoming: FxHashMap<MethodId, BTreeSet<InvokeId>> = FxHashMap::default();
    let mut proj_succ: FxHashMap<MethodId, BTreeSet<MethodId>> = FxHashMap::default();
    for &(inv, _, callee, _) in &call_graph {
        incoming.entry(callee).or_default().insert(inv);
        proj_succ
            .entry(program.invokes[inv].method)
            .or_default()
            .insert(callee);
    }
    let mut methods: Vec<MethodId> = reachable.iter().map(|&(m, _)| m).collect();
    methods.sort_unstable();
    methods.dedup();

    let mut multi: FxHashSet<MethodId> = FxHashSet::default();
    for &m in &methods {
        let sites = incoming.get(&m).map_or(0, BTreeSet::len);
        let seeds = usize::from(entry_set.contains(&m));
        if sites + seeds >= 2 {
            multi.insert(m);
        }
    }
    for m in cyclic_methods(&methods, &proj_succ) {
        multi.insert(m);
    }
    // Propagate multi down call edges to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for &m in &methods {
            if multi.contains(&m) {
                continue;
            }
            let from_multi = incoming.get(&m).is_some_and(|sites| {
                sites
                    .iter()
                    .any(|&inv| multi.contains(&program.invokes[inv].method))
            });
            if from_multi {
                multi.insert(m);
                changed = true;
            }
        }
    }
    let self_parallel: Vec<bool> = thread_roots
        .iter()
        .map(|root| match root {
            None => false,
            Some(s) => multi.contains(&program.invokes[*s].method),
        })
        .collect();

    if let Some(s) = &mhp_span {
        s.arg("threads", thread_roots.len());
        s.arg("exec_size", exec.len());
    }
    drop(mhp_span);

    // ---- Lock sets (races-locks span) -----------------------------------
    let locks_span = crate::telemetry::span_opt(tele, "races-locks");

    let resolve = |v: VarId, c: CtxId| -> LockRes {
        match vpt.get(&(v, c)) {
            None => LockRes::Dead,
            Some(objs) => {
                let mut allocs: Vec<AllocId> = objs.iter().map(|&(a, _)| a).collect();
                allocs.sort_unstable();
                allocs.dedup();
                match allocs.as_slice() {
                    [] => LockRes::Dead,
                    [one] => LockRes::One(*one),
                    _ => LockRes::Many,
                }
            }
        }
    };
    // Structural locks enclosing a body index, resolved in a context.
    // `None` when some enclosing lock is dead (the index is unreachable).
    let enclosing_locks = |m: MethodId, idx: usize, c: CtxId| -> Option<BTreeSet<AllocId>> {
        let mut locks = BTreeSet::new();
        for &(enter, exit, v) in &shapes[&m].regions {
            if enter < idx && idx < exit {
                match resolve(v, c) {
                    LockRes::Dead => return None,
                    LockRes::Many => {}
                    LockRes::One(h) => {
                        locks.insert(h);
                    }
                }
            }
        }
        Some(locks)
    };

    // Interprocedural must-lock sets: the greatest fixpoint of
    //   MLS(callee) ⊆ MLS(caller) ∪ structural-locks-at-call-site
    // over every non-spawn call edge, seeded at ∅ for entry methods and
    // spawn targets (a fresh thread holds nothing). Dead call sites (an
    // enclosing lock resolves to nothing) impose no constraint, matching
    // the dead-region exclusion at accesses.
    let mut mls: FxHashMap<(MethodId, CtxId), BTreeSet<AllocId>> = FxHashMap::default();
    let mut queue: Vec<(MethodId, CtxId)> = Vec::new();
    for &(m, c) in &entry_seeds {
        mls.insert((m, c), BTreeSet::new());
        queue.push((m, c));
    }
    for &(inv, _, m, c) in &call_graph {
        if spawn_site_set.contains(&inv) && !mls.contains_key(&(m, c)) {
            mls.insert((m, c), BTreeSet::new());
            queue.push((m, c));
        }
    }
    while let Some((m, c)) = queue.pop() {
        let held = mls[&(m, c)].clone();
        let Some(out) = edges_from.get(&(m, c)) else {
            continue;
        };
        for &(inv, m2, c2) in out {
            if spawn_site_set.contains(&inv) {
                continue; // spawn targets are seeded at ∅ above
            }
            let (_, idx) = invoke_at[&inv];
            let Some(site_locks) = enclosing_locks(m, idx, c) else {
                continue; // dead call site: no constraint
            };
            let mut contrib = held.clone();
            contrib.extend(site_locks);
            match mls.get_mut(&(m2, c2)) {
                None => {
                    mls.insert((m2, c2), contrib);
                    queue.push((m2, c2));
                }
                Some(cur) => {
                    let met: BTreeSet<AllocId> = cur.intersection(&contrib).copied().collect();
                    if met.len() != cur.len() {
                        *cur = met;
                        queue.push((m2, c2));
                    }
                }
            }
        }
    }

    if let Some(s) = &locks_span {
        s.arg("mls_nodes", mls.len());
    }
    drop(locks_span);

    // ---- Access instances ------------------------------------------------
    let mut exec_nodes: Vec<((MethodId, CtxId), Vec<usize>)> = exec
        .iter()
        .map(|(&k, ts)| (k, ts.iter().copied().collect()))
        .collect();
    exec_nodes.sort_unstable();

    // Threads each method runs in (any context) — for escapes and suspect
    // guards.
    let mut method_threads: FxHashMap<MethodId, BTreeSet<usize>> = FxHashMap::default();
    for ((m, _), ts) in &exec_nodes {
        method_threads
            .entry(*m)
            .or_default()
            .extend(ts.iter().copied());
    }
    // Heap contexts each allocation site appears under — a second
    // instance dimension for suspect guards.
    let mut alloc_hctxs: FxHashMap<AllocId, BTreeSet<crate::context::HCtxId>> =
        FxHashMap::default();
    for objs in vpt.values() {
        for &(a, h) in objs {
            alloc_hctxs.entry(a).or_default().insert(h);
        }
    }
    let multi_instance = |h: AllocId| -> bool {
        let m = program.allocs[h].method;
        alloc_hctxs.get(&h).map_or(0, BTreeSet::len) >= 2
            || multi.contains(&m)
            || method_threads
                .get(&m)
                .is_some_and(|ts| ts.len() >= 2 || ts.iter().any(|&t| self_parallel[t]))
    };

    let mut insts: Vec<AccessInst> = Vec::new();
    let mut site_set: FxHashSet<(MethodId, usize)> = FxHashSet::default();
    let mut guarded: FxHashSet<(MethodId, usize)> = FxHashSet::default();
    let mut dead: FxHashSet<(MethodId, usize)> = FxHashSet::default();
    let mut suspect_guards: BTreeSet<SuspectGuard> = BTreeSet::new();

    for ((m, c), threads) in &exec_nodes {
        let (m, c) = (*m, *c);
        for &(enter, _, v) in &shapes[&m].regions {
            if let LockRes::One(h) = resolve(v, c) {
                if multi_instance(h) {
                    suspect_guards.insert(SuspectGuard {
                        method: m,
                        index: enter,
                        lock: h,
                    });
                }
            }
        }
        for (i, instr) in program.methods[m].body.iter().enumerate() {
            let (key, base, write) = match *instr {
                Instruction::Load { base, field, .. } => (RaceKey::Field(field), Some(base), false),
                Instruction::Store { base, field, .. } => (RaceKey::Field(field), Some(base), true),
                Instruction::LoadGlobal { global, .. } => (RaceKey::Global(global), None, false),
                Instruction::StoreGlobal { global, .. } => (RaceKey::Global(global), None, true),
                _ => continue,
            };
            site_set.insert((m, i));
            let Some(mut locks) = enclosing_locks(m, i, c) else {
                dead.insert((m, i));
                continue;
            };
            if let Some(held) = mls.get(&(m, c)) {
                locks.extend(held.iter().copied());
            }
            if !locks.is_empty() {
                guarded.insert((m, i));
            }
            insts.push(AccessInst {
                site: (m, i),
                ctx: c,
                key,
                base,
                write,
                locks,
                threads: threads.clone(),
            });
        }
    }

    // ---- Race candidates -------------------------------------------------
    let aliases = |a: &AccessInst, b: &AccessInst| -> bool {
        match (a.base, b.base) {
            (Some(ba), Some(bb)) => {
                let (Some(pa), Some(pb)) = (vpt.get(&(ba, a.ctx)), vpt.get(&(bb, b.ctx))) else {
                    return false;
                };
                // Both sorted: merge-intersect on (alloc, hctx).
                let (mut i, mut j) = (0, 0);
                while i < pa.len() && j < pb.len() {
                    match pa[i].cmp(&pb[j]) {
                        std::cmp::Ordering::Equal => return true,
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                    }
                }
                false
            }
            (None, None) => true, // same global slot (keys already match)
            _ => false,
        }
    };
    // Whether an access at `site` is structurally ordered (not parallel)
    // with everything the thread `t` executes: the access sits in the
    // once-executed body containing `t`'s spawn site, either before the
    // spawn or after a matching single-assignment join.
    let ordered_against = |site: (MethodId, usize), t: usize| -> bool {
        let Some(s) = thread_roots[t] else {
            return false;
        };
        let (sm, sidx) = invoke_at[&s];
        if site.0 != sm || multi.contains(&sm) {
            return false;
        }
        if site.1 < sidx {
            return true;
        }
        let shape = &shapes[&sm];
        let Some(&(_, _, sbase)) = shape.spawns.iter().find(|&&(i, _, _)| i == sidx) else {
            return false;
        };
        if shape.defs.get(&sbase).copied().unwrap_or(0) > 1 {
            return false;
        }
        shape
            .joins
            .iter()
            .any(|&(jidx, jv)| jv == sbase && jidx > sidx && site.1 > jidx)
    };
    let mhp = |a: &AccessInst, t1: usize, b: &AccessInst, t2: usize| -> bool {
        if t1 == t2 {
            return self_parallel[t1];
        }
        !(ordered_against(a.site, t2) || ordered_against(b.site, t1))
    };

    let mut by_key: FxHashMap<RaceKey, Vec<usize>> = FxHashMap::default();
    for (i, inst) in insts.iter().enumerate() {
        by_key.entry(inst.key).or_default().push(i);
    }
    let mut keys: Vec<RaceKey> = by_key.keys().copied().collect();
    keys.sort_unstable();

    // Best (minimal-rank) witness instance pair per projected race triple.
    type Projected = (RaceKey, (MethodId, usize), (MethodId, usize));
    type Witness = (usize, CtxId, usize, CtxId); // (thread, ctx) per side, site-ordered
    let mut best: FxHashMap<Projected, Witness> = FxHashMap::default();
    for &key in &keys {
        let list = &by_key[&key];
        if !list.iter().any(|&i| insts[i].write) {
            continue;
        }
        for (pos, &ia) in list.iter().enumerate() {
            for &ib in &list[pos..] {
                let (a, b) = (&insts[ia], &insts[ib]);
                if !(a.write || b.write) {
                    continue;
                }
                if !a.locks.is_disjoint(&b.locks) {
                    continue;
                }
                if !aliases(a, b) {
                    continue;
                }
                for &t1 in &a.threads {
                    for &t2 in &b.threads {
                        if ia == ib && t2 < t1 {
                            continue;
                        }
                        if !mhp(a, t1, b, t2) {
                            continue;
                        }
                        // Site-order the witness sides deterministically.
                        let (proj, wit) = if (a.site, a.ctx, t1) <= (b.site, b.ctx, t2) {
                            ((key, a.site, b.site), (t1, a.ctx, t2, b.ctx))
                        } else {
                            ((key, b.site, a.site), (t2, b.ctx, t1, a.ctx))
                        };
                        match best.get_mut(&proj) {
                            None => {
                                best.insert(proj, wit);
                            }
                            Some(cur) => {
                                if wit < *cur {
                                    *cur = wit;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- Escapes (R003) --------------------------------------------------
    let mut escapes: BTreeSet<Escape> = BTreeSet::new();
    for inst in &insts {
        let Some(base) = inst.base else { continue };
        let Some(objs) = vpt.get(&(base, inst.ctx)) else {
            continue;
        };
        for &(h, _) in objs {
            let creators = method_threads.get(&program.allocs[h].method);
            for &t in &inst.threads {
                if creators.is_none_or(|ts| !ts.contains(&t)) {
                    escapes.insert(Escape {
                        alloc: h,
                        method: inst.site.0,
                        index: inst.site.1,
                    });
                }
            }
        }
    }

    // ---- Dead regions (R004): no access and no call strictly inside -----
    let mut dead_regions: BTreeSet<(MethodId, usize)> = BTreeSet::new();
    for &m in &methods {
        for &(enter, exit, _) in &shapes[&m].regions {
            let busy = program.methods[m].body[enter + 1..exit].iter().any(|ins| {
                matches!(
                    ins,
                    Instruction::Load { .. }
                        | Instruction::Store { .. }
                        | Instruction::LoadGlobal { .. }
                        | Instruction::StoreGlobal { .. }
                        | Instruction::Call { .. }
                        | Instruction::Spawn { .. }
                )
            });
            if !busy {
                dead_regions.insert((m, enter));
            }
        }
    }

    // ---- Witness rendering -----------------------------------------------
    let thread_label = |t: usize| -> String {
        match thread_roots[t] {
            None => "main".to_owned(),
            Some(s) => {
                let (sm, sidx) = invoke_at[&s];
                format!("spawn@{}:{}", program.method_display(sm), sidx)
            }
        }
    };
    // Shortest-path parents per thread, computed lazily per used thread.
    let mut bfs_cache: FxHashMap<usize, FxHashMap<CtxNode, Option<CtxNode>>> = FxHashMap::default();
    let mut bfs_for = |t: usize| -> FxHashMap<CtxNode, Option<CtxNode>> {
        if let Some(p) = bfs_cache.get(&t) {
            return p.clone();
        }
        let mut roots: Vec<(MethodId, CtxId)> = match thread_roots[t] {
            None => entry_seeds.clone(),
            Some(s) => call_graph
                .iter()
                .filter(|&&(inv, _, _, _)| inv == s)
                .map(|&(_, _, m, c)| (m, c))
                .collect(),
        };
        roots.sort_unstable();
        roots.dedup();
        let mut parent: FxHashMap<(MethodId, CtxId), Option<(MethodId, CtxId)>> =
            FxHashMap::default();
        let mut order: Vec<(MethodId, CtxId)> = Vec::new();
        for r in roots {
            if exec.get(&r).is_some_and(|ts| ts.contains(&t)) && !parent.contains_key(&r) {
                parent.insert(r, None);
                order.push(r);
            }
        }
        let mut head = 0;
        while head < order.len() {
            let n = order[head];
            head += 1;
            if let Some(out) = edges_from.get(&n) {
                for &(inv, m2, c2) in out {
                    if spawn_site_set.contains(&inv) {
                        continue;
                    }
                    let next = (m2, c2);
                    if exec.get(&next).is_some_and(|ts| ts.contains(&t))
                        && !parent.contains_key(&next)
                    {
                        parent.insert(next, Some(n));
                        order.push(next);
                    }
                }
            }
        }
        bfs_cache.insert(t, parent.clone());
        parent
    };
    let location = |key: RaceKey| -> String {
        match key {
            RaceKey::Field(f) => format!(
                "{}.{}",
                program.classes[program.fields[f].class].name, program.fields[f].name
            ),
            RaceKey::Global(g) => format!(
                "static {}.{}",
                program.classes[program.globals[g].class].name, program.globals[g].name
            ),
        }
    };
    let mut render_access =
        |site: (MethodId, usize), ctx: CtxId, t: usize, key: RaceKey| -> RaceAccess {
            let parents = bfs_for(t);
            let mut chain = vec![(site.0, ctx)];
            while let Some(Some(prev)) = parents.get(chain.last().unwrap()) {
                chain.push(*prev);
            }
            chain.reverse();
            let is_write = matches!(
                program.methods[site.0].body[site.1],
                Instruction::Store { .. } | Instruction::StoreGlobal { .. }
            );
            let mut trace: Vec<String> = chain
                .iter()
                .map(|&(m, c)| {
                    format!(
                        "{} {}",
                        program.method_display(m),
                        pts.tables.display_ctx(canon.orig_ctx(c), program)
                    )
                })
                .collect();
            let span = program.methods[site.0].span_of(site.1);
            let at = if span.is_known() {
                format!(" @ {span}")
            } else {
                String::new()
            };
            trace.push(format!(
                "{} {}{}",
                if is_write { "write" } else { "read" },
                location(key),
                at
            ));
            RaceAccess {
                method: site.0,
                index: site.1,
                is_write,
                thread: thread_label(t),
                trace,
            }
        };

    let mut projected: Vec<(Projected, Witness)> = best.into_iter().collect();
    projected.sort_unstable();
    let races: Vec<Race> = projected
        .into_iter()
        .map(|((key, sa, sb), (t1, c1, t2, c2))| Race {
            key,
            location: location(key),
            a: render_access(sa, c1, t1, key),
            b: render_access(sb, c2, t2, key),
        })
        .collect();

    let result = RaceResult {
        analysis: pts.analysis.clone(),
        races,
        threads: (0..thread_roots.len()).map(thread_label).collect(),
        access_sites: site_set.len(),
        guarded_sites: guarded.len(),
        dead_sites: dead.len(),
        suspect_guards: suspect_guards.into_iter().collect(),
        dead_regions: dead_regions.into_iter().collect(),
        escapes: escapes.into_iter().collect(),
    };
    if let Some(t) = tele.as_deref() {
        t.counter("races.threads", result.threads.len() as u64);
        t.counter("races.access_sites", result.access_sites as u64);
        t.counter("races.guarded_sites", result.guarded_sites as u64);
        t.counter("races.dead_sites", result.dead_sites as u64);
        t.counter("races.races", result.races.len() as u64);
        t.counter("races.suspect_guards", result.suspect_guards.len() as u64);
        t.counter("races.dead_regions", result.dead_regions.len() as u64);
        t.counter("races.escapes", result.escapes.len() as u64);
    }
    Ok(result)
}

/// The variables a single instruction defines (at most one).
fn defined_var(program: &Program, instr: &Instruction) -> Option<VarId> {
    match *instr {
        Instruction::Alloc { var, .. } => Some(var),
        Instruction::Move { to, .. }
        | Instruction::Cast { to, .. }
        | Instruction::Load { to, .. }
        | Instruction::LoadGlobal { to, .. } => Some(to),
        Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
            program.invokes[invoke].result
        }
        Instruction::Store { .. }
        | Instruction::StoreGlobal { .. }
        | Instruction::Return { .. }
        | Instruction::Join { .. }
        | Instruction::MonitorEnter { .. }
        | Instruction::MonitorExit { .. } => None,
    }
}

/// Methods that sit in a call-graph cycle (a strongly connected component
/// with more than one node, or a self-loop). Iterative Tarjan, so deep
/// call chains cannot overflow the stack.
fn cyclic_methods(
    methods: &[MethodId],
    succ: &FxHashMap<MethodId, BTreeSet<MethodId>>,
) -> Vec<MethodId> {
    let index_of: FxHashMap<MethodId, usize> =
        methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let n = methods.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut cyclic = Vec::new();

    // Explicit DFS frames: (node, iterator position over its successors).
    for &root in methods {
        let r = index_of[&root];
        if index[r] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs_of = |v: usize| -> Vec<usize> {
            succ.get(&methods[v])
                .map(|s| s.iter().filter_map(|m| index_of.get(m).copied()).collect())
                .unwrap_or_default()
        };
        index[r] = next_index;
        low[r] = next_index;
        next_index += 1;
        stack.push(r);
        on_stack[r] = true;
        frames.push((r, succs_of(r), 0));
        while !frames.is_empty() {
            let (v, advanced) = {
                let frame = frames.last_mut().unwrap();
                let v = frame.0;
                if frame.2 < frame.1.len() {
                    let w = frame.1[frame.2];
                    frame.2 += 1;
                    (v, Some(w))
                } else {
                    (v, None)
                }
            };
            match advanced {
                Some(w) => {
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        let kids = succs_of(w);
                        frames.push((w, kids, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                None => {
                    frames.pop();
                    if let Some(frame) = frames.last_mut() {
                        low[frame.0] = low[frame.0].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = comp.len() == 1
                            && succ
                                .get(&methods[comp[0]])
                                .is_some_and(|s| s.contains(&methods[comp[0]]));
                        if comp.len() > 1 || self_loop {
                            cyclic.extend(comp.into_iter().map(|i| methods[i]));
                        }
                    }
                }
            }
        }
    }
    cyclic.sort_unstable();
    cyclic
}

/// Renders a supervised race outcome as a JSON document for `rudoop races
/// --format json`.
///
/// The schema is part of the CLI contract and only grows, never changes.
/// The document always carries exactly the keys `analysis`, `skipped`,
/// `threads`, `access_sites`, `races`, `suspect_guards`, `dead_regions`,
/// and `escapes`, in that order. When race detection was skipped,
/// `analysis` is `null`, `skipped` holds the reason, `threads` and the
/// arrays are empty, and `access_sites` is 0. Each race object carries
/// `location`, `a`, and `b`; each side carries `method`, `span`, `kind`
/// (`read`/`write`), `thread`, and `trace` (the rendered shortest
/// root-to-access chain); spans are `"line:col"` or `null` for programs
/// without source text.
pub fn render_json(program: &Program, races: &SupervisedRaces) -> String {
    let mut out = String::from("{\n");
    match races {
        SupervisedRaces::Skipped { reason } => {
            out.push_str(&format!(
                "  \"analysis\": null,\n  \"skipped\": \"{}\",\n  \"threads\": [],\n  \
                 \"access_sites\": 0,\n  \"races\": [],\n  \"suspect_guards\": [],\n  \
                 \"dead_regions\": [],\n  \"escapes\": []\n",
                json_escape(reason)
            ));
        }
        SupervisedRaces::Analyzed(r) => {
            let threads: Vec<String> = r
                .threads
                .iter()
                .map(|t| format!("\"{}\"", json_escape(t)))
                .collect();
            out.push_str(&format!(
                "  \"analysis\": \"{}\",\n  \"skipped\": null,\n  \"threads\": [{}],\n  \
                 \"access_sites\": {},\n",
                json_escape(&r.analysis),
                threads.join(","),
                r.access_sites
            ));
            out.push_str("  \"races\": [");
            for (i, race) in r.races.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"location\":\"{}\",\"a\":{},\"b\":{}}}",
                    json_escape(&race.location),
                    access_json(program, &race.a),
                    access_json(program, &race.b)
                ));
            }
            out.push_str(if r.races.is_empty() {
                "],\n"
            } else {
                "\n  ],\n"
            });
            out.push_str("  \"suspect_guards\": [");
            for (i, g) in r.suspect_guards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"method\":\"{}\",\"span\":{},\"lock_class\":\"{}\"}}",
                    json_escape(&program.method_display(g.method)),
                    site_span_json(program, g.method, g.index),
                    json_escape(&program.classes[program.allocs[g.lock].class].name)
                ));
            }
            out.push_str(if r.suspect_guards.is_empty() {
                "],\n"
            } else {
                "\n  ],\n"
            });
            out.push_str("  \"dead_regions\": [");
            for (i, &(m, idx)) in r.dead_regions.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"method\":\"{}\",\"span\":{}}}",
                    json_escape(&program.method_display(m)),
                    site_span_json(program, m, idx)
                ));
            }
            out.push_str(if r.dead_regions.is_empty() {
                "],\n"
            } else {
                "\n  ],\n"
            });
            out.push_str("  \"escapes\": [");
            for (i, e) in r.escapes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"alloc_class\":\"{}\",\"method\":\"{}\",\"span\":{}}}",
                    json_escape(&program.classes[program.allocs[e.alloc].class].name),
                    json_escape(&program.method_display(e.method)),
                    site_span_json(program, e.method, e.index)
                ));
            }
            out.push_str(if r.escapes.is_empty() {
                "]\n"
            } else {
                "\n  ]\n"
            });
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a supervised race run as the human-readable report printed by
/// `rudoop races` — the summary line, up to twenty races with both
/// access chains, and the overflow line. The daemon serves this exact
/// string so service responses are byte-identical to batch stdout.
pub fn render_text(races: &SupervisedRaces) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match races {
        SupervisedRaces::Analyzed(r) => {
            let _ = writeln!(
                out,
                "races ({}): {} thread(s), {} access site(s), {} race(s), \
                 {} suspect guard(s), {} dead region(s), {} escape(s)",
                r.analysis,
                r.threads.len(),
                r.access_sites,
                r.races.len(),
                r.suspect_guards.len(),
                r.dead_regions.len(),
                r.escapes.len(),
            );
            const MAX_RACES: usize = 20;
            for race in r.races.iter().take(MAX_RACES) {
                let _ = writeln!(
                    out,
                    "race: {}: {} in {} vs {} in {}",
                    race.location,
                    if race.a.is_write { "write" } else { "read" },
                    race.a.thread,
                    if race.b.is_write { "write" } else { "read" },
                    race.b.thread,
                );
                for step in &race.a.trace {
                    let _ = writeln!(out, "    A: {step}");
                }
                for step in &race.b.trace {
                    let _ = writeln!(out, "    B: {step}");
                }
            }
            if r.races.len() > MAX_RACES {
                let _ = writeln!(out, "... {} more race(s)", r.races.len() - MAX_RACES);
            }
        }
        SupervisedRaces::Skipped { reason } => {
            let _ = writeln!(out, "races: SKIPPED — {reason}");
        }
    }
    out
}

fn access_json(program: &Program, a: &RaceAccess) -> String {
    let trace: Vec<String> = a
        .trace
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"method\":\"{}\",\"span\":{},\"kind\":\"{}\",\"thread\":\"{}\",\"trace\":[{}]}}",
        json_escape(&program.method_display(a.method)),
        site_span_json(program, a.method, a.index),
        if a.is_write { "write" } else { "read" },
        json_escape(&a.thread),
        trace.join(",")
    )
}

/// The span of a body instruction as a JSON value, `null` when unknown.
fn site_span_json(program: &Program, method: MethodId, index: usize) -> String {
    let span = program.methods[method].span_of(index);
    if span.is_known() {
        format!("\"{span}\"")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Insensitive, ObjectSensitive};
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    fn run(p: &Program, policy: &dyn crate::policy::ContextPolicy) -> PointsToResult {
        let h = ClassHierarchy::new(p);
        let config = SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        };
        analyze(p, &h, policy, &config)
    }

    /// main writes a shared field, spawns a worker that also writes it.
    fn shared_counter() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.spawn(main, w);
        b.alloc(main, v, obj);
        b.store(main, c, hits, v);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn shared_write_write_races() {
        let p = shared_counter();
        let result = run(&p, &Insensitive);
        let races = analyze_races(&p, &result).unwrap();
        assert_eq!(races.threads.len(), 2, "main plus one spawned thread");
        assert_eq!(races.races.len(), 1, "one witness: {:?}", races.race_set());
        let race = &races.races[0];
        assert!(race.location.ends_with("Counter.hits"));
        assert!(race.a.is_write && race.b.is_write);
        assert_ne!(race.a.thread, race.b.thread);
        assert!(!race.a.trace.is_empty() && !race.b.trace.is_empty());
        // The worker accessed the counter allocated by main: an escape.
        assert!(!races.escapes.is_empty());
    }

    /// Both accesses guarded by the same singleton lock: no race, but the
    /// main-side store before the spawn is ordered anyway.
    #[test]
    fn common_singleton_lock_excludes_race() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.monitor_enter(runm, rc);
        b.store(runm, rc, hits, rv);
        b.monitor_exit(runm, rc);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.alloc(main, v, obj);
        b.spawn(main, w);
        b.monitor_enter(main, c);
        b.store(main, c, hits, v);
        b.monitor_exit(main, c);
        b.entry(main);
        let p = b.finish();
        let result = run(&p, &Insensitive);
        let races = analyze_races(&p, &result).unwrap();
        assert!(races.races.is_empty(), "guarded: {:?}", races.race_set());
        assert!(races.guarded_sites >= 2);
    }

    /// An access after `join w` is ordered after the whole spawned thread.
    #[test]
    fn join_orders_later_accesses() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.alloc(main, v, obj);
        b.spawn(main, w);
        b.join(main, w);
        b.store(main, c, hits, v);
        b.entry(main);
        let p = b.finish();
        let result = run(&p, &Insensitive);
        let races = analyze_races(&p, &result).unwrap();
        assert!(races.races.is_empty(), "joined: {:?}", races.race_set());
    }

    /// Two workers each get a *private* counter. Insensitively the two
    /// counter allocations merge into one points-to set for the `run`
    /// receiver field load, so the two writes appear to alias — a false
    /// race 2obj eliminates. This is the committed monotonicity witness:
    /// races(2objH) ⊂ races(insens) on this program.
    #[test]
    fn object_sensitivity_eliminates_false_race() {
        let p = private_counters();
        let coarse = analyze_races(&p, &run(&p, &Insensitive)).unwrap();
        let fine = analyze_races(&p, &run(&p, &ObjectSensitive::new(2, 1))).unwrap();
        assert!(
            !coarse.races.is_empty(),
            "insens must report the false race"
        );
        assert!(
            fine.races.is_empty(),
            "2objH must see distinct counters: {:?}",
            fine.race_set()
        );
        // Soundness chain direction on this pair.
        let fine_set: BTreeSet<_> = fine.race_set().into_iter().collect();
        let coarse_set: BTreeSet<_> = coarse.race_set().into_iter().collect();
        assert!(fine_set.is_subset(&coarse_set));
    }

    fn private_counters() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let w1 = b.var(main, "w1");
        let w2 = b.var(main, "w2");
        let c1 = b.var(main, "c1");
        let c2 = b.var(main, "c2");
        b.alloc(main, w1, worker);
        b.alloc(main, c1, counter);
        b.store(main, w1, cfld, c1);
        b.alloc(main, w2, worker);
        b.alloc(main, c2, counter);
        b.store(main, w2, cfld, c2);
        b.spawn(main, w1);
        b.spawn(main, w2);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn missing_dump_is_an_error() {
        let p = shared_counter();
        let h = ClassHierarchy::new(&p);
        let result = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        assert_eq!(
            analyze_races(&p, &result).unwrap_err(),
            RaceError::MissingContextDump
        );
    }

    #[test]
    fn globals_race_without_aliasing() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let worker = b.class("Worker", Some(obj));
        let reg = b.global(obj, "registry");
        let runm = b.method(worker, "run", &[], false);
        let rv = b.var(runm, "rv");
        b.alloc(runm, rv, obj);
        b.store_global(runm, reg, rv);
        let main = b.method(obj, "main", &[], true);
        let w = b.var(main, "w");
        let g = b.var(main, "g");
        b.alloc(main, w, worker);
        b.spawn(main, w);
        b.load_global(main, g, reg);
        b.entry(main);
        let p = b.finish();
        let races = analyze_races(&p, &run(&p, &Insensitive)).unwrap();
        assert_eq!(races.races.len(), 1);
        assert!(races.races[0].location.starts_with("static "));
        // One side reads, one writes.
        assert!(races.races[0].a.is_write != races.races[0].b.is_write);
    }

    /// A suspect guard: the lock is a singleton allocation *site* but that
    /// site sits in a method executed by a self-parallel thread.
    #[test]
    fn multi_instance_lock_is_suspect() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let worker = b.class("Worker", Some(obj));
        let lock = b.field(worker, "lock");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let l = b.var(runm, "l");
        b.alloc(runm, l, obj);
        b.store(runm, this, lock, l);
        let l2 = b.var(runm, "l2");
        b.monitor_enter(runm, l);
        b.load(runm, l2, this, lock);
        b.monitor_exit(runm, l);
        // Two spawn sites -> run's alloc has two instances even insens.
        let main = b.method(obj, "main", &[], true);
        let w1 = b.var(main, "w1");
        let w2 = b.var(main, "w2");
        b.alloc(main, w1, worker);
        b.alloc(main, w2, worker);
        b.spawn(main, w1);
        b.spawn(main, w2);
        b.entry(main);
        let p = b.finish();
        let races = analyze_races(&p, &run(&p, &Insensitive)).unwrap();
        assert!(
            !races.suspect_guards.is_empty(),
            "run's lock alloc is multi-instance (run reachable from two spawn sites)"
        );
    }

    #[test]
    fn empty_monitor_region_is_dead() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let l = b.var(main, "l");
        b.alloc(main, l, obj);
        b.monitor_enter(main, l);
        b.monitor_exit(main, l);
        b.entry(main);
        let p = b.finish();
        let races = analyze_races(&p, &run(&p, &Insensitive)).unwrap();
        assert_eq!(races.dead_regions.len(), 1);
    }

    #[test]
    fn json_report_has_stable_schema() {
        let p = shared_counter();
        let races = SupervisedRaces::Analyzed(analyze_races(&p, &run(&p, &Insensitive)).unwrap());
        let json = render_json(&p, &races);
        assert!(json.starts_with("{\n  \"analysis\": \"insens\""));
        assert!(json.contains("\"skipped\": null"));
        assert!(json.contains("\"threads\": [\"main\",\"spawn@"));
        assert!(json.contains("\"location\":\"Counter.hits\""));
        assert!(json.contains("\"kind\":\"write\""));
        assert!(json.ends_with("}\n"));

        let skipped = SupervisedRaces::Skipped {
            reason: "say \"why\"".to_owned(),
        };
        let json = render_json(&p, &skipped);
        assert!(json.contains("\"analysis\": null"));
        assert!(json.contains("\"skipped\": \"say \\\"why\\\"\""));
        assert!(json.contains("\"races\": []"));
        assert!(json.contains("\"escapes\": []"));
    }

    /// Renumbering the context tables (as a different solver engine might)
    /// must not change witnesses or traces: the race client canonicalizes
    /// context ids by content before anything order-sensitive.
    #[test]
    fn witnesses_are_invariant_under_context_renumbering() {
        use crate::context::{CtxId, CtxTables, HCtxId};
        let p = private_counters();
        let result = run(&p, &ObjectSensitive::new(2, 1));
        assert!(result.outcome.is_complete());

        let mut tables = CtxTables::new();
        let mut cmap = vec![CtxId::EMPTY; result.tables.ctx_count()];
        for id in (0..result.tables.ctx_count() as u32).rev() {
            cmap[id as usize] = tables.intern_ctx(result.tables.ctx_elems(CtxId(id)));
        }
        let mut hmap = vec![HCtxId::EMPTY; result.tables.hctx_count()];
        for id in (0..result.tables.hctx_count() as u32).rev() {
            hmap[id as usize] = tables.intern_hctx(result.tables.hctx_elems(HCtxId(id)));
        }
        let mut twin = result.clone();
        twin.tables = tables;
        let d = twin.cs_dump.as_mut().unwrap();
        for t in &mut d.var_points_to {
            t.1 = cmap[t.1 .0 as usize];
            t.3 = hmap[t.3 .0 as usize];
        }
        for t in &mut d.call_graph {
            t.1 = cmap[t.1 .0 as usize];
            t.3 = cmap[t.3 .0 as usize];
        }
        for t in &mut d.reachable {
            t.1 = cmap[t.1 .0 as usize];
        }

        let a = analyze_races(&p, &result).unwrap();
        let b = analyze_races(&p, &twin).unwrap();
        assert_eq!(a.race_set(), b.race_set());
        assert_eq!(a.suspect_guards, b.suspect_guards);
        assert_eq!(a.escapes, b.escapes);
        for (ra, rb) in a.races.iter().zip(&b.races) {
            assert_eq!(ra.a.trace, rb.a.trace, "traces must be engine-invariant");
            assert_eq!(ra.b.trace, rb.b.trace);
        }
    }
}
