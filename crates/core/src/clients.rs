//! The three precision clients the paper's Figures 5–7 report, all
//! "lower is better":
//!
//! - **calls that cannot be devirtualized** — reachable virtual call sites
//!   with more than one resolved target,
//! - **reachable methods** — size of the computed call graph's node set,
//! - **casts that may fail** — reachable cast instructions whose incoming
//!   points-to set contains an object of a non-conforming type.

use rudoop_ir::{ClassHierarchy, InvokeKind, Program, VarId};

use crate::solver::PointsToResult;

/// The precision triple reported in the paper's evaluation charts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionMetrics {
    /// Reachable virtual call sites that cannot be devirtualized
    /// (≥ 2 possible targets).
    pub polymorphic_call_sites: usize,
    /// Reachable methods.
    pub reachable_methods: usize,
    /// Reachable casts that may fail.
    pub casts_may_fail: usize,
}

impl PrecisionMetrics {
    /// Computes all three metrics from an analysis result.
    pub fn compute(program: &Program, hierarchy: &ClassHierarchy, result: &PointsToResult) -> Self {
        PrecisionMetrics {
            polymorphic_call_sites: polymorphic_call_sites(program, result),
            reachable_methods: result.reachable_method_count(),
            casts_may_fail: casts_may_fail(program, hierarchy, result),
        }
    }
}

/// Reachable virtual call sites whose resolved target set has ≥ 2 methods —
/// "calls that cannot be devirtualized".
pub fn polymorphic_call_sites(program: &Program, result: &PointsToResult) -> usize {
    program
        .invokes
        .iter()
        .filter(|(iid, invoke)| {
            matches!(invoke.kind, InvokeKind::Virtual { .. })
                && result.reachable_methods.contains(invoke.method)
                && result.call_targets.get(iid).is_some_and(|t| t.len() >= 2)
        })
        .count()
}

/// Reachable cast instructions for which the analysis cannot prove success:
/// the source variable may point to an object whose class is not a subtype
/// of the cast's target class.
pub fn casts_may_fail(
    program: &Program,
    hierarchy: &ClassHierarchy,
    result: &PointsToResult,
) -> usize {
    program
        .cast_sites()
        .filter(|(site, from, class)| {
            result.reachable_methods.contains(site.method)
                && result.var_pts[*from]
                    .iter()
                    .any(|&h| !hierarchy.is_subtype(program.allocs[h].class, *class))
        })
        .count()
}

/// Whether `a` and `b` may refer to the same object — the classic alias
/// query, answered by points-to set intersection. The sets are sorted, so
/// this is a linear merge.
pub fn may_alias(result: &PointsToResult, a: VarId, b: VarId) -> bool {
    let (pa, pb) = (result.points_to(a), result.points_to(b));
    let (mut i, mut j) = (0, 0);
    while i < pa.len() && j < pb.len() {
        match pa[i].cmp(&pb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Summary of the computed call graph, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallGraphSummary {
    /// Call sites with at least one resolved target.
    pub resolved_sites: usize,
    /// Projected call-graph edges (site → target pairs).
    pub edges: usize,
    /// The largest target set of any single site.
    pub max_targets: usize,
}

/// Computes a [`CallGraphSummary`] from an analysis result.
pub fn call_graph_summary(result: &PointsToResult) -> CallGraphSummary {
    let mut edges = 0usize;
    let mut max_targets = 0usize;
    for targets in result.call_targets.values() {
        edges += targets.len();
        max_targets = max_targets.max(targets.len());
    }
    CallGraphSummary {
        resolved_sites: result.call_targets.len(),
        edges,
        max_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CallSiteSensitive, Insensitive};
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    /// A program where imprecision creates a spurious polymorphic call and
    /// a spurious failing cast, both of which 1-call-site-sensitivity
    /// eliminates: an `id` method conflates a Dog and a Cat insensitively.
    fn litmus() -> rudoop_ir::Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let animal = b.class("Animal", Some(obj));
        let dog = b.class("Dog", Some(animal));
        let cat = b.class("Cat", Some(animal));
        b.method(dog, "speak", &[], false);
        b.method(cat, "speak", &[], false);

        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);

        let main = b.method(obj, "main", &[], true);
        let d = b.var(main, "d");
        let c = b.var(main, "c");
        let rd = b.var(main, "rd");
        let rc = b.var(main, "rc");
        let dd = b.var(main, "dd");
        b.alloc(main, d, dog);
        b.alloc(main, c, cat);
        b.scall(main, Some(rd), id_m, &[d]);
        b.scall(main, Some(rc), id_m, &[c]);
        // rd is dynamically always a Dog; imprecision says it may be a Cat.
        b.vcall(main, None, rd, "speak", &[]);
        b.cast(main, dd, rd, dog);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn insensitive_analysis_reports_spurious_imprecision() {
        let p = litmus();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let m = PrecisionMetrics::compute(&p, &h, &r);
        assert_eq!(m.polymorphic_call_sites, 1);
        assert_eq!(m.casts_may_fail, 1);
        // Both speak methods spuriously reachable.
        assert_eq!(m.reachable_methods, 4); // main, id, Dog.speak, Cat.speak
    }

    #[test]
    fn context_sensitivity_restores_precision() {
        let p = litmus();
        let h = ClassHierarchy::new(&p);
        let r = analyze(
            &p,
            &h,
            &CallSiteSensitive::new(1, 0),
            &SolverConfig::default(),
        );
        let m = PrecisionMetrics::compute(&p, &h, &r);
        assert_eq!(m.polymorphic_call_sites, 0);
        assert_eq!(m.casts_may_fail, 0);
        assert_eq!(m.reachable_methods, 3); // main, id, Dog.speak
    }

    #[test]
    fn unreachable_casts_do_not_count() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let dead = b.method(obj, "dead", &[], true);
        let x = b.var(dead, "x");
        let y = b.var(dead, "y");
        b.alloc(dead, x, obj);
        b.cast(dead, y, x, a);
        let main = b.method(obj, "main", &[], true);
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        assert_eq!(casts_may_fail(&p, &h, &r), 0);
    }

    #[test]
    fn may_alias_is_set_intersection() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        let z = b.var(main, "z");
        b.alloc(main, x, obj);
        b.mov(main, y, x);
        b.alloc(main, z, obj);
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        assert!(may_alias(&r, x, y));
        assert!(!may_alias(&r, x, z));
        assert!(may_alias(&r, x, x));
    }

    #[test]
    fn call_graph_summary_counts_edges() {
        let p = litmus();
        let h = ClassHierarchy::new(&p);
        let insens = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let cs = analyze(
            &p,
            &h,
            &CallSiteSensitive::new(1, 0),
            &SolverConfig::default(),
        );
        let si = call_graph_summary(&insens);
        let sc = call_graph_summary(&cs);
        assert!(si.edges > sc.edges, "context removes spurious edges");
        assert_eq!(si.max_targets, 2);
        assert_eq!(sc.max_targets, 1);
    }

    #[test]
    fn monomorphic_calls_are_devirtualizable() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        b.method(a, "f", &[], false);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, a);
        b.vcall(main, None, x, "f", &[]);
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        assert_eq!(polymorphic_call_sites(&p, &r), 0);
    }
}
