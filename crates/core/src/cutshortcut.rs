//! The cut-shortcut pre-analysis: context-sensitivity *without* contexts.
//!
//! PAPERS.md's *Context Sensitivity without Contexts: A Cut-Shortcut
//! Approach* (arXiv 2304.12034) observes that most of what a
//! context-sensitive analysis buys can be had by editing the pointer flow
//! graph instead of cloning it: **cut** the interprocedural value-flow
//! edges through methods whose bodies are transparent, and **shortcut**
//! the flow directly from each call site's actuals to its uses. The
//! callee's conflation point (the shared formal parameter or return
//! variable under the `★` context) is simply bypassed, so every call site
//! keeps its own values — near-2objH precision on the cut patterns at
//! near-insensitive cost.
//!
//! This module is the deterministic pre-analysis: it builds the static
//! pointer flow graph ([`rudoop_ir::FlowGraph`]), classifies methods
//! against three syntactic patterns, and emits a [`CutSummary`] that the
//! solver (sequential and sharded) consumes at call-edge time:
//!
//! - **identity parameter**: the parameter flows *only* into the method's
//!   return through copies — cut the `arg → param` edge and shortcut
//!   `arg → result` at each call site;
//! - **setter parameter**: the parameter's only use is
//!   `this.f = param` — cut the `arg → param` edge and store the actual
//!   into `f` of each call site's *own* receiver objects;
//! - **getter return**: the method returns exactly `this.f` — cut the
//!   `ret → result` edge and load `f` of each call site's own receiver
//!   objects straight into the result.
//!
//! Every pattern is checked conservatively (no opaque uses, no
//! reassignment of `this`, single-definition temporaries), which keeps the
//! transformed analysis sound and pointwise at least as precise as the
//! context-insensitive baseline: each shortcut edge reroutes a flow the
//! insensitive analysis merges through a shared callee variable. The
//! executable Datalog reference model mirrors the same cuts rule for rule
//! (`rudoop-datalog`), and differential tests pin the two byte-identical.

use rudoop_ir::{
    FieldId, FlowGraph, IdxVec, Instruction, Method, MethodId, Program, VarId, VarUse,
};

use crate::telemetry::TelemetryHandle;

/// How a formal parameter's incoming interprocedural edge is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamCut {
    /// The parameter flows only to the method's return: replace
    /// `arg → param` with a direct `arg → result` shortcut per call site.
    Identity,
    /// The parameter's only use is `this.field = param`: replace
    /// `arg → param` with a per-call-site store of the actual into
    /// `field` of the site's receiver objects.
    Setter(FieldId),
}

/// The cut decisions for one method.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodCuts {
    /// Per formal parameter (by position), the cut applied to its incoming
    /// interprocedural edge, if any.
    pub params: Vec<Option<ParamCut>>,
    /// When the method is a getter of `this.field`, the field whose
    /// per-site load replaces the `ret → result` edge.
    pub getter_return: Option<FieldId>,
}

impl MethodCuts {
    fn is_empty(&self) -> bool {
        self.getter_return.is_none() && self.params.iter().all(Option::is_none)
    }
}

/// Size counters of a [`CutSummary`] — the pass's stats block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutStats {
    /// Methods in the program.
    pub methods: usize,
    /// Methods with at least one cut.
    pub methods_with_cuts: usize,
    /// Identity-parameter cut points.
    pub identity_params: usize,
    /// Setter-parameter cut points.
    pub setter_params: usize,
    /// Getter-return cut points.
    pub getter_returns: usize,
    /// Copy edges in the static pointer flow graph the pass classified.
    pub flow_copy_edges: usize,
    /// Non-copy uses in the static pointer flow graph.
    pub flow_uses: usize,
}

impl CutStats {
    /// Total cut points (identity + setter + getter).
    pub fn cut_points(&self) -> usize {
        self.identity_params + self.setter_params + self.getter_returns
    }
}

/// The output of the cut-shortcut pre-analysis: per-method cut decisions
/// plus pass statistics. Pure function of the program — two computations
/// are identical, which the pass determinism test pins byte-for-byte via
/// [`CutSummary::render`].
#[derive(Debug, Clone, Default)]
pub struct CutSummary {
    cuts: IdxVec<MethodId, MethodCuts>,
    /// Pass statistics.
    pub stats: CutStats,
}

impl CutSummary {
    /// Runs the pre-analysis over `program`.
    pub fn compute(program: &Program) -> CutSummary {
        let flow = FlowGraph::build(program);
        let mut stats = CutStats {
            methods: program.methods.len(),
            flow_copy_edges: flow.copy_edge_count,
            flow_uses: flow.use_count,
            ..CutStats::default()
        };
        let mut cuts: IdxVec<MethodId, MethodCuts> = (0..program.methods.len())
            .map(|_| MethodCuts::default())
            .collect();
        for (mid, method) in program.methods.iter() {
            let mc = &mut cuts[mid];
            mc.params = method
                .params
                .iter()
                .map(|&p| classify_param(&flow, method, p))
                .collect();
            mc.getter_return = classify_getter(&flow, method);
            for c in mc.params.iter().flatten() {
                match c {
                    ParamCut::Identity => stats.identity_params += 1,
                    ParamCut::Setter(_) => stats.setter_params += 1,
                }
            }
            if mc.getter_return.is_some() {
                stats.getter_returns += 1;
            }
            if !mc.is_empty() {
                stats.methods_with_cuts += 1;
            }
        }
        CutSummary { cuts, stats }
    }

    /// Like [`CutSummary::compute`], wrapped in a `cutshortcut-pass`
    /// telemetry span with the pass's deterministic counters (all pure
    /// functions of the program, so the counter stream stays reproducible).
    pub fn compute_traced(program: &Program, telemetry: &TelemetryHandle) -> CutSummary {
        let span = crate::telemetry::span_opt(telemetry, "cutshortcut-pass");
        let summary = CutSummary::compute(program);
        if let Some(span) = &span {
            span.arg("cut_points", summary.stats.cut_points() as u64);
        }
        if let Some(tele) = telemetry.as_deref() {
            let s = &summary.stats;
            tele.counter("cutshortcut.identity_params", s.identity_params as u64);
            tele.counter("cutshortcut.setter_params", s.setter_params as u64);
            tele.counter("cutshortcut.getter_returns", s.getter_returns as u64);
            tele.counter("cutshortcut.methods_with_cuts", s.methods_with_cuts as u64);
            tele.counter("cutshortcut.flow_copy_edges", s.flow_copy_edges as u64);
            tele.counter("cutshortcut.flow_uses", s.flow_uses as u64);
        }
        summary
    }

    /// The cut applied to parameter `index` of `method`, if any.
    #[inline]
    pub fn param_cut(&self, method: MethodId, index: usize) -> Option<ParamCut> {
        self.cuts
            .get(method)
            .and_then(|mc| mc.params.get(index).copied().flatten())
    }

    /// The getter field of `method`, if its `ret → result` edges are cut.
    #[inline]
    pub fn getter_return(&self, method: MethodId) -> Option<FieldId> {
        self.cuts.get(method).and_then(|mc| mc.getter_return)
    }

    /// The cut decisions of `method`.
    pub fn method_cuts(&self, method: MethodId) -> Option<&MethodCuts> {
        self.cuts.get(method)
    }

    /// Whether the pass found nothing to cut.
    pub fn is_empty(&self) -> bool {
        self.stats.cut_points() == 0
    }

    /// A deterministic textual dump of all cut points and shortcut edges —
    /// the golden-test and `--dump-cuts` format. One line per cut point,
    /// in method-table order, followed by a stats trailer.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (mid, mc) in self.cuts.iter() {
            for (i, cut) in mc.params.iter().enumerate() {
                let Some(cut) = cut else { continue };
                let param = program.methods[mid].params[i];
                match cut {
                    ParamCut::Identity => {
                        out.push_str(&format!(
                            "cut {}#arg{} ({}): identity; shortcut arg -> result\n",
                            program.method_display(mid),
                            i,
                            program.var_display(param),
                        ));
                    }
                    ParamCut::Setter(field) => {
                        out.push_str(&format!(
                            "cut {}#arg{} ({}): setter of .{}; shortcut arg -> receiver.{}\n",
                            program.method_display(mid),
                            i,
                            program.var_display(param),
                            program.fields[*field].name,
                            program.fields[*field].name,
                        ));
                    }
                }
            }
            if let Some(field) = mc.getter_return {
                out.push_str(&format!(
                    "cut {}#ret: getter of .{}; shortcut receiver.{} -> result\n",
                    program.method_display(mid),
                    program.fields[field].name,
                    program.fields[field].name,
                ));
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "stats: methods={} with_cuts={} identity={} setter={} getter={} \
             flow_copy_edges={} flow_uses={}\n",
            s.methods,
            s.methods_with_cuts,
            s.identity_params,
            s.setter_params,
            s.getter_returns,
            s.flow_copy_edges,
            s.flow_uses,
        ));
        out
    }
}

/// Classifies one formal parameter against the identity and setter
/// patterns.
fn classify_param(flow: &FlowGraph, method: &Method, param: VarId) -> Option<ParamCut> {
    if let Some(field) = setter_param(flow, method, param) {
        return Some(ParamCut::Setter(field));
    }
    if identity_param(flow, method, param) {
        return Some(ParamCut::Identity);
    }
    None
}

/// Identity pattern: every flow out of `param` is a copy, and the copies
/// reach the formal return. Intermediate variables may receive other
/// values (those still flow through the kept `ret → result` edges); what
/// matters is that no reachable variable has an opaque use — a store,
/// load base, call argument/receiver, global write, or sync instruction —
/// that the cut would starve.
fn identity_param(flow: &FlowGraph, method: &Method, param: VarId) -> bool {
    let Some(ret) = method.ret else { return false };
    let closure = flow.copy_closure(param);
    if !closure.contains(&ret) {
        // The parameter never reaches the return: a shortcut edge would
        // *add* flow the insensitive analysis does not have.
        return false;
    }
    closure.iter().all(|&v| flow.uses[v].is_empty())
}

/// Setter pattern: the parameter's single use is `this.field = param`,
/// it is never copied onward, and `this` is never reassigned in the body
/// (so the per-site receiver capture covers every possible store base).
fn setter_param(flow: &FlowGraph, method: &Method, param: VarId) -> Option<FieldId> {
    let this = method.this?;
    if flow.defs[this] != 0 || !flow.copy_out[param].is_empty() {
        return None;
    }
    match flow.uses[param].as_slice() {
        [VarUse::StoreValue { base, field }] if *base == this => Some(*field),
        _ => None,
    }
}

/// Getter pattern: the method body returns exactly `this.field` through a
/// single-definition, otherwise-unused temporary, and neither `this` nor
/// the formal return variable is touched by anything else. Parameters are
/// excluded as temporaries: their interprocedural inputs would be lost by
/// the `ret → result` cut.
fn classify_getter(flow: &FlowGraph, method: &Method) -> Option<FieldId> {
    let this = method.this?;
    let ret = method.ret?;
    if flow.defs[this] != 0 || flow.defs[ret] != 0 {
        return None;
    }
    if !flow.uses[ret].is_empty() || !flow.copy_out[ret].is_empty() {
        return None;
    }
    // Exactly one return instruction, of a non-parameter temporary.
    let mut returns = method.body.iter().filter_map(|i| match *i {
        Instruction::Return { var } => Some(var),
        _ => None,
    });
    let g = returns.next()?;
    if returns.next().is_some() || g == this || g == ret || method.params.contains(&g) {
        return None;
    }
    // The temporary is defined once — by a load off `this` — and used
    // nowhere but the return.
    if flow.defs[g] != 1 || !flow.uses[g].is_empty() {
        return None;
    }
    if flow.copy_out[g].as_slice() != [(ret, rudoop_ir::CopyKind::Return)] {
        return None;
    }
    method.body.iter().find_map(|i| match *i {
        Instruction::Load { to, base, field } if to == g && base == this => Some(field),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::ProgramBuilder;

    /// id(x) { return x }, set(v) { this.val = v }, get() { return this.val }
    fn patterns_program() -> (Program, MethodId, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let set_m = b.method(box_c, "set", &["v"], false);
        let set_this = b.this(set_m);
        let set_v = b.param(set_m, 0);
        b.store(set_m, set_this, f, set_v);
        let get_m = b.method(box_c, "get", &[], false);
        let get_this = b.this(get_m);
        let gr = b.var(get_m, "r");
        b.load(get_m, gr, get_this, f);
        b.ret(get_m, gr);
        let main = b.method(obj, "main", &[], true);
        let bx = b.var(main, "bx");
        let v = b.var(main, "v");
        let o = b.var(main, "o");
        let r = b.var(main, "r");
        b.alloc(main, bx, box_c);
        b.alloc(main, v, obj);
        b.vcall(main, None, bx, "set", &[v]);
        b.vcall(main, Some(o), bx, "get", &[]);
        b.scall(main, Some(r), id_m, &[v]);
        b.entry(main);
        (b.finish(), id_m, set_m, get_m)
    }

    #[test]
    fn classic_patterns_are_recognized() {
        let (p, id_m, set_m, get_m) = patterns_program();
        let s = CutSummary::compute(&p);
        assert_eq!(s.param_cut(id_m, 0), Some(ParamCut::Identity));
        assert!(matches!(s.param_cut(set_m, 0), Some(ParamCut::Setter(_))));
        assert!(s.getter_return(get_m).is_some());
        assert_eq!(s.stats.cut_points(), 3);
        assert_eq!(s.stats.methods_with_cuts, 3);
    }

    #[test]
    fn opaque_uses_disqualify_identity() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let g = b.global(obj, "leaked");
        let m = b.method(obj, "leak", &["x"], true);
        let xp = b.param(m, 0);
        b.store_global(m, g, xp);
        b.ret(m, xp);
        b.entry(m);
        let p = b.finish();
        let s = CutSummary::compute(&p);
        assert_eq!(s.param_cut(rudoop_ir::MethodId(0), 0), None);
        assert!(s.is_empty());
    }

    #[test]
    fn dead_end_param_is_not_identity() {
        // drop(x) { } — x never reaches a return, so a shortcut edge
        // would invent flow the insensitive analysis does not have.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "drop", &["x"], true);
        let _xp = b.param(m, 0);
        let other = b.var(m, "o");
        b.alloc(m, other, obj);
        b.ret(m, other);
        b.entry(m);
        let p = b.finish();
        let s = CutSummary::compute(&p);
        assert_eq!(s.param_cut(rudoop_ir::MethodId(0), 0), None);
    }

    #[test]
    fn identity_through_move_chain() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let m = b.method(obj, "id2", &["x"], true);
        let xp = b.param(m, 0);
        let t = b.var(m, "t");
        b.mov(m, t, xp);
        b.ret(m, t);
        b.entry(m);
        let p = b.finish();
        let s = CutSummary::compute(&p);
        assert_eq!(
            s.param_cut(rudoop_ir::MethodId(0), 0),
            Some(ParamCut::Identity)
        );
    }

    #[test]
    fn getter_with_extra_writer_is_rejected() {
        // get() { r = this.val; r = new ...; return r } — the temporary has
        // a second definition, so the per-site load would miss it.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let m = b.method(box_c, "get", &[], false);
        let this = b.this(m);
        let r = b.var(m, "r");
        b.load(m, r, this, f);
        b.alloc(m, r, obj);
        b.ret(m, r);
        b.entry(m);
        let p = b.finish();
        let s = CutSummary::compute(&p);
        assert_eq!(s.getter_return(rudoop_ir::MethodId(0)), None);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let (p, _, _, _) = patterns_program();
        let a = CutSummary::compute(&p).render(&p);
        let b2 = CutSummary::compute(&p).render(&p);
        assert_eq!(a, b2);
        assert!(a.contains("identity"));
        assert!(a.contains("setter of .val"));
        assert!(a.contains("getter of .val"));
        assert!(a.contains("stats: methods=4 with_cuts=3"));
    }
}
