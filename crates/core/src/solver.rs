//! The context-sensitive points-to solver: an explicit worklist
//! implementation of the Datalog rules in the paper's Figure 3.
//!
//! The solver computes, for a [`Program`] and a [`ContextPolicy`], the four
//! output relations of the model — VARPOINTSTO, FLDPOINTSTO, CALLGRAPH,
//! REACHABLE — with on-the-fly call-graph construction. Rule-for-rule
//! correspondence (tested against the executable Datalog model in
//! `rudoop-datalog`):
//!
//! - the ALLOC rules are the solver's `Alloc` instantiation arm (RECORD is
//!   `policy.record`; the OBJECTTOREFINE guard lives inside an
//!   [`crate::policy::Introspective`] policy),
//! - the MOVE rule is a graph edge between context-qualified variables,
//! - INTERPROCASSIGN is the argument/return edges added per call-graph edge,
//! - the LOAD/STORE rules are edges through *field nodes* — one node per
//!   (context-qualified object, field) pair,
//! - the VCALL rule (and its MERGEREFINED duplicate, again folded into the
//!   policy) is the solver's receiver-call processing step.
//!
//! A [`Budget`] models the paper's 90-minute/24 GB wall: when exceeded the
//! solver stops and reports [`Outcome::BudgetExhausted`], which the
//! evaluation harness renders the way the paper renders timed-out bars.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rudoop_ir::{
    AllocId, ClassHierarchy, FieldId, GlobalId, IdxVec, Instruction, InvokeId, InvokeKind,
    MethodId, Program, VarId,
};

use crate::bitset::IdBitSet;
use crate::context::{CObj, CtxId, CtxTables, HCtxId};
use crate::hash::{FxHashMap, FxHashSet};
use crate::policy::ContextPolicy;

/// Resource limits for one solver run.
///
/// `max_derivations` bounds the number of tuple insertions (context-
/// sensitive var-points-to facts plus call-graph edges); it is the
/// deterministic analogue of the paper's timeout and the preferred limit
/// for reproducible experiments. `max_bytes` bounds the solver's modeled
/// memory footprint ([`SolverStats::bytes_estimate`]) — the deterministic
/// analogue of the paper's 24 GB wall. `max_duration` is a wall-clock
/// backstop.
///
/// Limits compose with the `and_*` combinators:
///
/// ```
/// use std::time::Duration;
/// use rudoop_core::solver::Budget;
///
/// let b = Budget::derivations(1_000_000)
///     .and_bytes(24 * 1024 * 1024 * 1024)
///     .and_duration(Duration::from_secs(90 * 60));
/// assert_eq!(b.max_derivations, Some(1_000_000));
/// assert!(b.max_bytes.is_some() && b.max_duration.is_some());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Maximum tuple insertions; `None` = unlimited.
    pub max_derivations: Option<u64>,
    /// Maximum wall-clock time; `None` = unlimited.
    pub max_duration: Option<Duration>,
    /// Maximum modeled memory in bytes; `None` = unlimited.
    pub max_bytes: Option<u64>,
}

impl Budget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Budget of `n` tuple insertions.
    pub fn derivations(n: u64) -> Self {
        Budget {
            max_derivations: Some(n),
            ..Budget::default()
        }
    }

    /// Budget of `d` wall-clock time.
    pub fn duration(d: Duration) -> Self {
        Budget {
            max_duration: Some(d),
            ..Budget::default()
        }
    }

    /// Budget of `n` modeled bytes (see [`SolverStats::bytes_estimate`]).
    pub fn bytes(n: u64) -> Self {
        Budget {
            max_bytes: Some(n),
            ..Budget::default()
        }
    }

    /// Adds a derivation limit to this budget.
    pub fn and_derivations(mut self, n: u64) -> Self {
        self.max_derivations = Some(n);
        self
    }

    /// Adds a wall-clock limit to this budget.
    pub fn and_duration(mut self, d: Duration) -> Self {
        self.max_duration = Some(d);
        self
    }

    /// Adds a modeled-memory limit to this budget.
    pub fn and_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Whether no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_derivations.is_none() && self.max_duration.is_none() && self.max_bytes.is_none()
    }
}

/// A cooperative cancellation token, checked by the solver's worklist loop.
///
/// Clones share one flag. The supervisor's watchdog thread uses it to
/// enforce wall-clock deadlines from outside the solver; clients (CLIs,
/// servers) can use it to abort an analysis from a signal handler or a
/// request-timeout path.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a run stopped before reaching the fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExhaustionCause {
    /// [`Budget::max_derivations`] was reached.
    Derivations,
    /// [`Budget::max_bytes`] was reached (the modeled 24 GB wall).
    Memory,
    /// [`Budget::max_duration`] elapsed.
    WallClock,
    /// The run's [`CancelToken`] was cancelled (e.g. by a watchdog).
    Cancelled,
    /// The propagation-graph node table hit its capacity limit.
    NodeTable,
    /// A context table hit its capacity limit (contexts saturated to `★`).
    ContextTable,
}

impl ExhaustionCause {
    /// Whether the cause is an internal capacity limit rather than a
    /// user-supplied budget.
    pub fn is_capacity(self) -> bool {
        matches!(
            self,
            ExhaustionCause::NodeTable | ExhaustionCause::ContextTable
        )
    }

    /// A short human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            ExhaustionCause::Derivations => "derivation budget exhausted",
            ExhaustionCause::Memory => "memory budget exhausted",
            ExhaustionCause::WallClock => "wall-clock budget exhausted",
            ExhaustionCause::Cancelled => "cancelled",
            ExhaustionCause::NodeTable => "node table capacity exceeded",
            ExhaustionCause::ContextTable => "context table capacity exceeded",
        }
    }
}

impl fmt::Display for ExhaustionCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A structured solver-internal failure: a capacity table filled up.
///
/// These used to be `expect` panics on the hot path; they now surface as
/// [`Outcome::CapacityExceeded`] so callers (most importantly the
/// [`crate::supervisor`]) can degrade instead of crashing the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// The propagation graph needed more than `limit` nodes.
    NodeCapacity {
        /// The configured (or `u32`-intrinsic) node limit.
        limit: usize,
    },
    /// A context interner needed more than `limit` distinct contexts.
    ContextCapacity {
        /// The configured (or `u32`-intrinsic) context limit.
        limit: usize,
    },
}

impl SolverError {
    /// The exhaustion cause this error maps to.
    pub fn cause(self) -> ExhaustionCause {
        match self {
            SolverError::NodeCapacity { .. } => ExhaustionCause::NodeTable,
            SolverError::ContextCapacity { .. } => ExhaustionCause::ContextTable,
        }
    }
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NodeCapacity { limit } => {
                write!(f, "propagation graph exceeded {limit} nodes")
            }
            SolverError::ContextCapacity { limit } => {
                write!(f, "context table exceeded {limit} entries")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// How a solver run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fixpoint reached; the result is sound and complete for the abstraction.
    Complete,
    /// The budget ran out; the result is partial (an under-approximation of
    /// the fixpoint). The paper reports this as a timed-out analysis.
    BudgetExhausted,
    /// An internal capacity table (nodes, contexts) filled up; the result is
    /// partial, exactly as for budget exhaustion.
    CapacityExceeded,
}

impl Outcome {
    /// Whether the run completed.
    pub fn is_complete(self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// Whether the run stopped early (budget or capacity).
    pub fn is_partial(self) -> bool {
        !self.is_complete()
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Default)]
pub struct SolverConfig {
    /// Resource limits (default: unlimited).
    pub budget: Budget,
    /// Record the full context-sensitive tuples in
    /// [`PointsToResult::cs_dump`] (used by differential tests; costs
    /// memory, off by default).
    pub record_contexts: bool,
    /// Filter object flow at `cast` instructions by the cast's target type
    /// (Doop's assign-cast filtering). Off by default to match the paper's
    /// model, where casts are plain moves; turning it on makes every
    /// analysis more precise at a small cost.
    pub filter_casts: bool,
    /// Cooperative cancellation: when the token is cancelled the solver
    /// stops at the next worklist step with [`ExhaustionCause::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Capacity cap on propagation-graph nodes (default: the `u32`
    /// intrinsic limit). Exceeding it yields [`Outcome::CapacityExceeded`].
    pub max_nodes: Option<usize>,
    /// Capacity cap on each context table (default: the `u32` intrinsic
    /// limit). Exceeding it yields [`Outcome::CapacityExceeded`].
    pub max_contexts: Option<usize>,
    /// Cut-shortcut pre-analysis output. When present, the solver cuts the
    /// interprocedural `arg → param` / `ret → result` edges the summary
    /// marks and reroutes them per call site (identity shortcuts,
    /// caller-side stores and loads) — the [`crate::cutshortcut`] engine.
    /// `None` (the default) analyzes every call edge as written.
    pub cuts: Option<Arc<crate::cutshortcut::CutSummary>>,
    /// Summary-table output of the bottom-up compositional pre-analysis.
    /// When present, the solver replaces the `ret → result` edge of every
    /// call to a distilled method with per-site instantiations of its
    /// summary atoms — the [`crate::summaries`] engine. `None` (the
    /// default) analyzes every return edge as written.
    pub summaries: Option<Arc<crate::summaries::SummaryTable>>,
    /// Thread count (default: sequential). More than one thread runs the
    /// byte-identical sharded engine in [`crate::parallel`].
    pub parallelism: crate::parallel::Parallelism,
    /// Optional telemetry recorder. Instrumentation never feeds back into
    /// the analysis: results are byte-identical with and without it.
    pub telemetry: crate::telemetry::TelemetryHandle,
}

/// Counters describing the work and output size of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Tuple insertions performed (the budget currency).
    pub derivations: u64,
    /// Context-sensitive var-points-to tuples `(var, ctx, heap, hctx)`.
    pub cs_var_points_to: u64,
    /// Context-sensitive field-points-to tuples.
    pub cs_field_points_to: u64,
    /// Context-sensitive call-graph edges.
    pub call_graph_edges: u64,
    /// Context-qualified reachable methods `(meth, ctx)`.
    pub reachable_contexts: u64,
    /// Distinct calling contexts created.
    pub contexts: u64,
    /// Distinct heap contexts created.
    pub heap_contexts: u64,
    /// Graph nodes (context-qualified variables + field slots).
    pub nodes: u64,
    /// Copy edges in the propagation graph.
    pub edges: u64,
    /// Wall-clock time of the run.
    pub duration: Duration,
}

/// Deterministic per-entity cost constants of the solver's memory model.
/// A node owns slots in nine parallel arrays plus hash-table entries; a
/// tuple is a hash-set entry plus its delta slot; an edge is a successor
/// slot plus an `edge_set` entry; a context is an interned boxed sequence
/// plus its table entry.
const BYTES_PER_NODE: u64 = 168;
const BYTES_PER_TUPLE: u64 = 48;
const BYTES_PER_EDGE: u64 = 72;
const BYTES_PER_CTX: u64 = 96;
const BYTES_PER_REACHABLE: u64 = 16;

/// The modeled memory footprint given the live counters of a run. Shared
/// between [`SolverStats::bytes_estimate`], the solver's in-loop budget
/// check, and the parallel engine's barrier check so the three always
/// agree.
pub(crate) fn model_bytes(
    nodes: u64,
    edges: u64,
    derivations: u64,
    contexts: u64,
    heap_contexts: u64,
    reachable: u64,
) -> u64 {
    nodes * BYTES_PER_NODE
        + edges * BYTES_PER_EDGE
        + derivations * BYTES_PER_TUPLE
        + (contexts + heap_contexts) * BYTES_PER_CTX
        + reachable * BYTES_PER_REACHABLE
}

impl SolverStats {
    /// A deterministic estimate of the run's peak memory footprint, derived
    /// from relation and graph sizes (not from the allocator). This is the
    /// quantity [`Budget::max_bytes`] limits — the reproducible analogue of
    /// the paper's 24 GB memory wall.
    pub fn bytes_estimate(&self) -> u64 {
        model_bytes(
            self.nodes,
            self.edges,
            self.derivations,
            self.contexts,
            self.heap_contexts,
            self.reachable_contexts,
        )
    }

    /// A copy with the wall-clock duration zeroed: two runs of the same
    /// program under the same derivation/byte budget produce *identical*
    /// canonical stats, which is what reproducibility tests compare.
    pub fn canonical(&self) -> SolverStats {
        SolverStats {
            duration: Duration::ZERO,
            ..self.clone()
        }
    }
}

/// Full context-sensitive relations, recorded when
/// [`SolverConfig::record_contexts`] is set.
#[derive(Debug, Clone, Default)]
pub struct CsDump {
    /// VARPOINTSTO tuples.
    pub var_points_to: Vec<(VarId, CtxId, AllocId, HCtxId)>,
    /// FLDPOINTSTO tuples.
    pub field_points_to: Vec<(AllocId, HCtxId, FieldId, AllocId, HCtxId)>,
    /// CALLGRAPH tuples.
    pub call_graph: Vec<(InvokeId, CtxId, MethodId, CtxId)>,
    /// REACHABLE tuples.
    pub reachable: Vec<(MethodId, CtxId)>,
}

impl CsDump {
    /// Var-points-to indexed by `(var, ctx)`, each set sorted and
    /// deduplicated — the shape clients that re-traverse value flow (the
    /// taint analysis) consume.
    pub fn var_pts_index(&self) -> FxHashMap<(VarId, CtxId), Vec<(AllocId, HCtxId)>> {
        let mut index: FxHashMap<(VarId, CtxId), Vec<(AllocId, HCtxId)>> = FxHashMap::default();
        for &(var, ctx, heap, hctx) in &self.var_points_to {
            index.entry((var, ctx)).or_default().push((heap, hctx));
        }
        for objs in index.values_mut() {
            objs.sort_unstable();
            objs.dedup();
        }
        index
    }
}

/// The output of one analysis run: projected (context-insensitive)
/// relations for clients, statistics, and optionally the raw
/// context-sensitive tuples.
///
/// Projections are what the paper's precision metrics consume — e.g. "calls
/// that cannot be devirtualized" needs per-invocation target sets with
/// contexts collapsed.
#[derive(Debug, Clone)]
pub struct PointsToResult {
    /// `policy.name()` of the run.
    pub analysis: String,
    /// Completion status.
    pub outcome: Outcome,
    /// Why the run stopped early; `None` when it completed.
    pub exhaustion: Option<ExhaustionCause>,
    /// Work and size counters.
    pub stats: SolverStats,
    /// Projected var-points-to: per variable, the sorted set of allocation
    /// sites it may point to (over all contexts).
    pub var_pts: IdxVec<VarId, Vec<AllocId>>,
    /// Projected field-points-to: per (base allocation, field), the sorted
    /// set of pointed-to allocation sites.
    pub field_pts: FxHashMap<(AllocId, FieldId), Vec<AllocId>>,
    /// Projected static-field points-to: per global, the sorted set of
    /// pointed-to allocation sites.
    pub global_pts: FxHashMap<GlobalId, Vec<AllocId>>,
    /// Projected call graph: per invocation, the sorted set of target
    /// methods.
    pub call_targets: FxHashMap<InvokeId, Vec<MethodId>>,
    /// Methods reachable in at least one context.
    pub reachable_methods: IdBitSet<MethodId>,
    /// Context tables of the run (for inspecting context strings).
    pub tables: CtxTables,
    /// Raw context-sensitive tuples, when requested.
    pub cs_dump: Option<CsDump>,
    /// Per-shard tuple-insertion counts when the sharded engine ran
    /// (`None` for sequential runs and for parallel runs that fell back to
    /// a sequential replay). Feeds the work-imbalance column of
    /// [`crate::stats::render_supervised`].
    pub shard_work: Option<Vec<u64>>,
    /// Per-epoch per-shard tuple-insertion deltas from the sharded engine
    /// (outer index: epoch; inner: shard). The imbalance column reports
    /// the *max over epochs* of each epoch's skew so a lopsided epoch
    /// cannot hide inside a balanced cumulative total.
    pub epoch_shard_work: Option<Vec<Vec<u64>>>,
}

impl PointsToResult {
    /// Number of reachable methods (one of the paper's precision metrics).
    pub fn reachable_method_count(&self) -> usize {
        self.reachable_methods.count()
    }

    /// Projected points-to set of `var`.
    pub fn points_to(&self, var: VarId) -> &[AllocId] {
        &self.var_pts[var]
    }
}

/// Node identifier in the propagation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeId(u32);

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    /// A context-qualified variable.
    Var(VarId, CtxId),
    /// A field of a context-qualified object.
    Field(CObj, FieldId),
    /// A static field: one context-insensitive slot program-wide.
    Global(GlobalId),
}

/// Runs the analysis of `program` under `policy`.
///
/// This is the crate's main entry point for a single pass; the two-pass
/// introspective flow lives in [`crate::driver`]. With
/// [`SolverConfig::parallelism`] above one thread the byte-identical
/// sharded engine ([`crate::parallel`]) runs instead of the sequential
/// worklist.
pub fn analyze(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
    config: &SolverConfig,
) -> PointsToResult {
    let result = if config.parallelism.is_parallel() {
        crate::parallel::analyze_parallel(program, hierarchy, policy, config)
    } else {
        Solver::new(program, hierarchy, policy, config.clone()).run()
    };
    record_run_counters(&config.telemetry, &result);
    result
}

/// Records the deterministic post-run counter block for a finished
/// analysis. Called once per [`analyze`], *after* engine selection, so the
/// counter stream is byte-identical no matter which engine ran: every
/// value is derived from the final result, which the sharded engine
/// reproduces exactly (completing, or replaying deterministic exhaustion
/// sequentially).
fn record_run_counters(tele: &crate::telemetry::TelemetryHandle, result: &PointsToResult) {
    let Some(tele) = tele.as_deref() else { return };
    let name = &result.analysis;
    let s = &result.stats;
    tele.counter(&format!("{name}.derivations"), s.derivations);
    tele.counter(&format!("{name}.cs_var_points_to"), s.cs_var_points_to);
    tele.counter(&format!("{name}.cs_field_points_to"), s.cs_field_points_to);
    tele.counter(&format!("{name}.call_graph_edges"), s.call_graph_edges);
    tele.counter(&format!("{name}.reachable_contexts"), s.reachable_contexts);
    tele.counter(&format!("{name}.contexts"), s.contexts);
    tele.counter(&format!("{name}.heap_contexts"), s.heap_contexts);
    tele.counter(&format!("{name}.nodes"), s.nodes);
    tele.counter(&format!("{name}.edges"), s.edges);
    tele.counter(&format!("{name}.bytes_estimate"), s.bytes_estimate());
    let outcome = match result.outcome {
        Outcome::Complete => 0,
        Outcome::BudgetExhausted => 1,
        Outcome::CapacityExceeded => 2,
    };
    tele.counter(&format!("{name}.outcome"), outcome);
}

/// The sequential worklist solver, unconditionally — the parallel engine's
/// replay path calls this to reproduce exact budget-exhaustion states.
pub(crate) fn analyze_sequential(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
    config: &SolverConfig,
) -> PointsToResult {
    Solver::new(program, hierarchy, policy, config.clone()).run()
}

struct Solver<'p> {
    program: &'p Program,
    hierarchy: &'p ClassHierarchy,
    policy: &'p dyn ContextPolicy,
    config: SolverConfig,
    tables: CtxTables,

    nodes: Vec<NodeKind>,
    pts: Vec<FxHashSet<u64>>,
    delta: Vec<Vec<u64>>,
    succ: Vec<Vec<NodeId>>,
    loads: Vec<Vec<(FieldId, NodeId)>>,
    stores: Vec<Vec<(FieldId, NodeId)>>,
    calls: Vec<Vec<InvokeId>>,
    node_ctx: Vec<CtxId>,

    filter_succ: Vec<Vec<(rudoop_ir::ClassId, NodeId)>>,
    var_nodes: FxHashMap<u64, NodeId>,
    field_nodes: FxHashMap<(u64, u32), NodeId>,
    global_nodes: FxHashMap<u32, NodeId>,
    edge_set: FxHashSet<(u32, u32)>,

    reachable: FxHashSet<u64>,
    cg_edges: FxHashSet<(u64, u64)>,
    inst_queue: VecDeque<(MethodId, CtxId)>,

    worklist: VecDeque<NodeId>,
    in_worklist: Vec<bool>,

    derivations: u64,
    cg_edge_count: u64,
    drains: u64,
    start: Instant,
    exhausted: Option<ExhaustionCause>,
    node_cap: usize,
}

impl<'p> Solver<'p> {
    fn new(
        program: &'p Program,
        hierarchy: &'p ClassHierarchy,
        policy: &'p dyn ContextPolicy,
        config: SolverConfig,
    ) -> Self {
        let node_cap = config
            .max_nodes
            .unwrap_or(u32::MAX as usize)
            .min(u32::MAX as usize);
        let mut tables = CtxTables::new();
        if let Some(limit) = config.max_contexts {
            tables.set_capacity(limit);
        }
        Solver {
            program,
            hierarchy,
            policy,
            config,
            tables,
            nodes: Vec::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            succ: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            calls: Vec::new(),
            node_ctx: Vec::new(),
            filter_succ: Vec::new(),
            var_nodes: FxHashMap::default(),
            field_nodes: FxHashMap::default(),
            global_nodes: FxHashMap::default(),
            edge_set: FxHashSet::default(),
            reachable: FxHashSet::default(),
            cg_edges: FxHashSet::default(),
            inst_queue: VecDeque::new(),
            worklist: VecDeque::new(),
            in_worklist: Vec::new(),
            derivations: 0,
            cg_edge_count: 0,
            drains: 0,
            start: Instant::now(),
            exhausted: None,
            node_cap,
        }
    }

    /// Allocates a propagation-graph node. Fails (instead of panicking)
    /// when the node table is at capacity; the error propagates to the main
    /// loop, which stops the run with [`Outcome::CapacityExceeded`].
    fn new_node(&mut self, kind: NodeKind, ctx: CtxId) -> Result<NodeId, SolverError> {
        if self.nodes.len() >= self.node_cap {
            return Err(SolverError::NodeCapacity {
                limit: self.node_cap,
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.pts.push(FxHashSet::default());
        self.delta.push(Vec::new());
        self.succ.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.calls.push(Vec::new());
        self.node_ctx.push(ctx);
        self.filter_succ.push(Vec::new());
        self.in_worklist.push(false);
        Ok(id)
    }

    fn var_node(&mut self, var: VarId, ctx: CtxId) -> Result<NodeId, SolverError> {
        let key = (u64::from(var.0) << 32) | u64::from(ctx.0);
        if let Some(&n) = self.var_nodes.get(&key) {
            return Ok(n);
        }
        let n = self.new_node(NodeKind::Var(var, ctx), ctx)?;
        self.var_nodes.insert(key, n);
        Ok(n)
    }

    fn field_node(&mut self, obj: CObj, field: FieldId) -> Result<NodeId, SolverError> {
        let key = (obj.0, field.0);
        if let Some(&n) = self.field_nodes.get(&key) {
            return Ok(n);
        }
        let n = self.new_node(NodeKind::Field(obj, field), CtxId::EMPTY)?;
        self.field_nodes.insert(key, n);
        Ok(n)
    }

    fn global_node(&mut self, global: GlobalId) -> Result<NodeId, SolverError> {
        if let Some(&n) = self.global_nodes.get(&global.0) {
            return Ok(n);
        }
        let n = self.new_node(NodeKind::Global(global), CtxId::EMPTY)?;
        self.global_nodes.insert(global.0, n);
        Ok(n)
    }

    fn enqueue(&mut self, node: NodeId) {
        if !self.in_worklist[node.0 as usize] {
            self.in_worklist[node.0 as usize] = true;
            self.worklist.push_back(node);
        }
    }

    fn add_obj(&mut self, node: NodeId, obj: u64) {
        let i = node.0 as usize;
        if self.pts[i].insert(obj) {
            self.derivations += 1;
            self.delta[i].push(obj);
            self.enqueue(node);
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if from == to || !self.edge_set.insert((from.0, to.0)) {
            return;
        }
        self.succ[from.0 as usize].push(to);
        if !self.pts[from.0 as usize].is_empty() {
            let objs: Vec<u64> = self.pts[from.0 as usize].iter().copied().collect();
            for o in objs {
                self.add_obj(to, o);
            }
        }
    }

    /// A copy edge that only lets objects whose class conforms to `class`
    /// through (Doop's assign-cast filtering).
    fn add_filtered_edge(&mut self, from: NodeId, to: NodeId, class: rudoop_ir::ClassId) {
        self.filter_succ[from.0 as usize].push((class, to));
        if !self.pts[from.0 as usize].is_empty() {
            let objs: Vec<u64> = self.pts[from.0 as usize].iter().copied().collect();
            for o in objs {
                let heap_class = self.program.allocs[CObj(o).heap()].class;
                if self.hierarchy.is_subtype(heap_class, class) {
                    self.add_obj(to, o);
                }
            }
        }
    }

    fn ensure_reachable(&mut self, method: MethodId, ctx: CtxId) {
        let key = (u64::from(method.0) << 32) | u64::from(ctx.0);
        if self.reachable.insert(key) {
            self.inst_queue.push_back((method, ctx));
        }
    }

    /// The CALLGRAPH head plus INTERPROCASSIGN rules: adds a call edge and,
    /// if new, the argument/return copy edges and callee reachability.
    fn add_call_edge(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        target: MethodId,
        callee: CtxId,
    ) -> Result<(), SolverError> {
        let key = (
            (u64::from(invoke.0) << 32) | u64::from(caller.0),
            (u64::from(target.0) << 32) | u64::from(callee.0),
        );
        if !self.cg_edges.insert(key) {
            return Ok(());
        }
        self.cg_edge_count += 1;
        self.derivations += 1;
        self.ensure_reachable(target, callee);
        let inv = &self.program.invokes[invoke];
        let callee_m = &self.program.methods[target];
        let n_args = inv.args.len().min(callee_m.params.len());
        let cuts = self.config.cuts.clone();
        let cuts = cuts.as_deref();
        for i in 0..n_args {
            let arg = self.program.invokes[invoke].args[i];
            match cuts.and_then(|c| c.param_cut(target, i)) {
                // Identity cut: the actual flows straight to the call's
                // result, never through the shared formal. A result-less
                // call site drops the value entirely (the callee provably
                // only returned it).
                Some(crate::cutshortcut::ParamCut::Identity) => {
                    if let Some(result) = self.program.invokes[invoke].result {
                        let from = self.var_node(arg, caller)?;
                        let to = self.var_node(result, caller)?;
                        self.add_edge(from, to);
                    }
                }
                // Setter cut: store the actual into the field of *this
                // site's* receiver objects — registered on the base
                // variable exactly like a `Store` instruction, so later
                // receivers are handled by the worklist.
                Some(crate::cutshortcut::ParamCut::Setter(field)) => {
                    if let Some(base) = self.invoke_base(invoke) {
                        let b = self.var_node(base, caller)?;
                        let f = self.var_node(arg, caller)?;
                        self.stores[b.0 as usize].push((field, f));
                        let existing: Vec<u64> = self.pts[b.0 as usize].iter().copied().collect();
                        for o in existing {
                            let fnode = self.field_node(CObj(o), field)?;
                            self.add_edge(f, fnode);
                        }
                    }
                }
                None => {
                    let from = self.var_node(arg, caller)?;
                    let to = self.var_node(self.program.methods[target].params[i], callee)?;
                    self.add_edge(from, to);
                }
            }
        }
        if let (Some(result), Some(ret)) = (
            self.program.invokes[invoke].result,
            self.program.methods[target].ret,
        ) {
            // Distilled summary: instantiate the callee's atoms at this
            // site instead of the conflating `ret → result` edge — the
            // summary-based compositional engine.
            let summaries = self.config.summaries.clone();
            if let Some(atoms) = summaries.as_deref().and_then(|t| t.distilled_atoms(target)) {
                self.instantiate_summary(invoke, caller, callee, result, atoms)?;
                return Ok(());
            }
            // Getter cut: load the field off *this site's* receiver objects
            // straight into the result, skipping the shared formal return.
            let getter = cuts
                .and_then(|c| c.getter_return(target))
                .and_then(|field| self.invoke_base(invoke).map(|base| (field, base)));
            if let Some((field, base)) = getter {
                let b = self.var_node(base, caller)?;
                let to = self.var_node(result, caller)?;
                self.loads[b.0 as usize].push((field, to));
                let existing: Vec<u64> = self.pts[b.0 as usize].iter().copied().collect();
                for o in existing {
                    let fnode = self.field_node(CObj(o), field)?;
                    self.add_edge(fnode, to);
                }
            } else {
                let from = self.var_node(ret, callee)?;
                let to = self.var_node(result, caller)?;
                self.add_edge(from, to);
            }
        }
        Ok(())
    }

    /// Instantiates a distilled method summary at one call site: each atom
    /// becomes a shortcut edge from the callee's formal parameter
    /// (`ParamToRet`) or the global slot (`GlobalToRet`), a
    /// receiver-registered load (`ThisFieldToRet`, handled exactly like a
    /// getter cut), or a direct object insertion (`AllocToRet`, under the
    /// empty heap context the summaries policy records).
    ///
    /// `ParamToRet` deliberately reads the *formal* parameter (the union
    /// over all call sites) of the method the atom names — the summarized
    /// callee itself, or a transitive callee for atoms inherited through
    /// composition — not this site's actual argument: a per-site argument
    /// edge would make summaries strictly more precise than `2objH`
    /// wherever that flavor conflates call sites (static calls, shared
    /// receiver objects, conflated inner callees), breaking the pinned
    /// soundness chain `pts(2objH) ⊆ pts(summaries)`. The per-site
    /// precision win comes from `ThisFieldToRet`, which filters the field
    /// read through this site's receiver objects only. The formal is read
    /// under `callee` — the summaries policy is context-free, so this is
    /// the single context every method runs under.
    fn instantiate_summary(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        callee: CtxId,
        result: VarId,
        atoms: &[crate::summaries::SummaryAtom],
    ) -> Result<(), SolverError> {
        use crate::summaries::SummaryAtom;
        let to = self.var_node(result, caller)?;
        for &atom in atoms {
            match atom {
                SummaryAtom::ParamToRet(m, i) => {
                    let param = self.program.methods[m].params[i];
                    let from = self.var_node(param, callee)?;
                    self.add_edge(from, to);
                }
                SummaryAtom::ThisFieldToRet(field) => {
                    if let Some(base) = self.invoke_base(invoke) {
                        let b = self.var_node(base, caller)?;
                        self.loads[b.0 as usize].push((field, to));
                        let existing: Vec<u64> = self.pts[b.0 as usize].iter().copied().collect();
                        for o in existing {
                            let fnode = self.field_node(CObj(o), field)?;
                            self.add_edge(fnode, to);
                        }
                    }
                }
                SummaryAtom::AllocToRet(h) => {
                    self.add_obj(to, CObj::new(h, HCtxId::EMPTY).0);
                }
                SummaryAtom::GlobalToRet(g) => {
                    let from = self.global_node(g)?;
                    self.add_edge(from, to);
                }
            }
        }
        Ok(())
    }

    /// Receiver variable of `invoke`, when it has one (virtual/special
    /// calls and spawns; `None` for static calls).
    fn invoke_base(&self, invoke: InvokeId) -> Option<VarId> {
        match self.program.invokes[invoke].kind {
            InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => Some(base),
            InvokeKind::Static { .. } => None,
        }
    }

    /// The VCALL rule: one receiver object arriving at the base variable of
    /// a virtual or special call.
    fn process_receiver_call(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        obj: CObj,
    ) -> Result<(), SolverError> {
        let target = match self.program.invokes[invoke].kind {
            InvokeKind::Virtual { sig, .. } => {
                let class = self.program.allocs[obj.heap()].class;
                match self.hierarchy.lookup(class, sig) {
                    Some(t) => t,
                    None => return Ok(()), // no method of this signature: dead dispatch
                }
            }
            InvokeKind::Special { target, .. } => target,
            // Static calls are never registered as receiver calls; keep the
            // release hot path panic-free regardless.
            InvokeKind::Static { .. } => {
                debug_assert!(false, "static calls are not receiver calls");
                return Ok(());
            }
        };
        let callee = self.policy.merge(
            &mut self.tables,
            obj.heap(),
            obj.hctx(),
            invoke,
            target,
            caller,
        );
        if let Some(this) = self.program.methods[target].this {
            let tnode = self.var_node(this, callee)?;
            self.add_obj(tnode, obj.0);
        }
        self.add_call_edge(invoke, caller, target, callee)
    }

    /// Instantiates the body of `method` under `ctx`: the REACHABLE-guarded
    /// premises of every rule in Figure 3.
    fn instantiate(&mut self, method: MethodId, ctx: CtxId) -> Result<(), SolverError> {
        let body_len = self.program.methods[method].body.len();
        for idx in 0..body_len {
            let instr = self.program.methods[method].body[idx].clone();
            match instr {
                Instruction::Alloc { var, alloc } => {
                    let hctx = self.policy.record(&mut self.tables, alloc, ctx);
                    let node = self.var_node(var, ctx)?;
                    self.add_obj(node, CObj::new(alloc, hctx).0);
                }
                Instruction::Move { to, from } => {
                    let f = self.var_node(from, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    self.add_edge(f, t);
                }
                Instruction::Cast { to, from, class } => {
                    let f = self.var_node(from, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    if self.config.filter_casts {
                        self.add_filtered_edge(f, t, class);
                    } else {
                        self.add_edge(f, t);
                    }
                }
                Instruction::Load { to, base, field } => {
                    let b = self.var_node(base, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    self.loads[b.0 as usize].push((field, t));
                    let existing: Vec<u64> = self.pts[b.0 as usize].iter().copied().collect();
                    for o in existing {
                        let fnode = self.field_node(CObj(o), field)?;
                        self.add_edge(fnode, t);
                    }
                }
                Instruction::Store { base, field, from } => {
                    let b = self.var_node(base, ctx)?;
                    let f = self.var_node(from, ctx)?;
                    self.stores[b.0 as usize].push((field, f));
                    let existing: Vec<u64> = self.pts[b.0 as usize].iter().copied().collect();
                    for o in existing {
                        let fnode = self.field_node(CObj(o), field)?;
                        self.add_edge(f, fnode);
                    }
                }
                Instruction::LoadGlobal { to, global } => {
                    let g = self.global_node(global)?;
                    let t = self.var_node(to, ctx)?;
                    self.add_edge(g, t);
                }
                Instruction::StoreGlobal { global, from } => {
                    let f = self.var_node(from, ctx)?;
                    let g = self.global_node(global)?;
                    self.add_edge(f, g);
                }
                Instruction::Return { var } => {
                    if let Some(ret) = self.program.methods[method].ret {
                        let f = self.var_node(var, ctx)?;
                        let t = self.var_node(ret, ctx)?;
                        self.add_edge(f, t);
                    }
                }
                // A spawn's implied `var.run()` call resolves like any other
                // call: its call-graph edges *are* the thread-creation
                // graph the race client consumes.
                Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
                    match self.program.invokes[invoke].kind {
                        InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                            let b = self.var_node(base, ctx)?;
                            self.calls[b.0 as usize].push(invoke);
                            let existing: Vec<u64> =
                                self.pts[b.0 as usize].iter().copied().collect();
                            for o in existing {
                                self.process_receiver_call(invoke, ctx, CObj(o))?;
                            }
                        }
                        InvokeKind::Static { target } => {
                            let callee =
                                self.policy
                                    .merge_static(&mut self.tables, invoke, target, ctx);
                            self.add_call_edge(invoke, ctx, target, callee)?;
                        }
                    }
                }
                // Join and monitor instructions constrain the race client's
                // happens-before/lock-set reasoning only; they neither
                // create nor move references.
                Instruction::Join { .. }
                | Instruction::MonitorEnter { .. }
                | Instruction::MonitorExit { .. } => {}
            }
        }
        Ok(())
    }

    /// The per-step stopping check, evaluated between units of work. The
    /// first matching cause wins, in deterministic order: cancellation,
    /// context-table overflow, derivation budget, memory budget, wall clock.
    fn stop_cause(&self) -> Option<ExhaustionCause> {
        if let Some(cancel) = &self.config.cancel {
            if cancel.is_cancelled() {
                return Some(ExhaustionCause::Cancelled);
            }
        }
        if self.tables.overflowed() {
            return Some(ExhaustionCause::ContextTable);
        }
        if let Some(max) = self.config.budget.max_derivations {
            if self.derivations > max {
                return Some(ExhaustionCause::Derivations);
            }
        }
        if let Some(max) = self.config.budget.max_bytes {
            let bytes = model_bytes(
                self.nodes.len() as u64,
                self.edge_set.len() as u64,
                self.derivations,
                self.tables.ctx_count() as u64,
                self.tables.hctx_count() as u64,
                self.reachable.len() as u64,
            );
            if bytes > max {
                return Some(ExhaustionCause::Memory);
            }
        }
        if let Some(max) = self.config.budget.max_duration {
            // Amortize clock reads: only check every 4096 derivations would
            // complicate determinism; an Instant read is ~20ns, acceptable.
            if self.start.elapsed() > max {
                return Some(ExhaustionCause::WallClock);
            }
        }
        None
    }

    fn run(mut self) -> PointsToResult {
        let tele = self.config.telemetry.clone();
        let span = crate::telemetry::span_opt(&tele, "solve");
        if let Some(span) = &span {
            span.arg("analysis", self.policy.name());
        }
        for &entry in &self.program.entry_points {
            self.ensure_reachable(entry, CtxId::EMPTY);
        }
        if let Err(err) = self.solve() {
            self.exhausted = Some(err.cause());
        }
        if let Some(tele) = tele.as_deref() {
            // Engine metric: sequential worklist drains. Not in the counter
            // stream — the sharded engine batches the worklist differently,
            // so drain counts are topology-dependent.
            tele.metric("seq.worklist_drains", self.drains);
        }
        let result = self.finish();
        if let Some(span) = &span {
            span.arg("derivations", result.stats.derivations);
            span.arg("outcome", format!("{:?}", result.outcome));
        }
        result
    }

    fn solve(&mut self) -> Result<(), SolverError> {
        'outer: loop {
            while let Some((m, c)) = self.inst_queue.pop_front() {
                if let Some(cause) = self.stop_cause() {
                    self.exhausted = Some(cause);
                    break 'outer;
                }
                self.instantiate(m, c)?;
            }
            let Some(node) = self.worklist.pop_front() else {
                break;
            };
            self.in_worklist[node.0 as usize] = false;
            self.drains += 1;
            if let Some(cause) = self.stop_cause() {
                self.exhausted = Some(cause);
                break;
            }
            let d = std::mem::take(&mut self.delta[node.0 as usize]);
            if d.is_empty() {
                continue;
            }
            let succs = self.succ[node.0 as usize].clone();
            for s in succs {
                for &o in &d {
                    self.add_obj(s, o);
                }
            }
            if !self.filter_succ[node.0 as usize].is_empty() {
                let filtered = self.filter_succ[node.0 as usize].clone();
                for (class, s) in filtered {
                    for &o in &d {
                        let heap_class = self.program.allocs[CObj(o).heap()].class;
                        if self.hierarchy.is_subtype(heap_class, class) {
                            self.add_obj(s, o);
                        }
                    }
                }
            }
            let loads = self.loads[node.0 as usize].clone();
            for (field, to) in loads {
                for &o in &d {
                    let fnode = self.field_node(CObj(o), field)?;
                    self.add_edge(fnode, to);
                }
            }
            let stores = self.stores[node.0 as usize].clone();
            for (field, from) in stores {
                for &o in &d {
                    let fnode = self.field_node(CObj(o), field)?;
                    self.add_edge(from, fnode);
                }
            }
            let calls = self.calls[node.0 as usize].clone();
            if !calls.is_empty() {
                let caller = self.node_ctx[node.0 as usize];
                for invoke in calls {
                    for &o in &d {
                        self.process_receiver_call(invoke, caller, CObj(o))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> PointsToResult {
        let tele = self.config.telemetry.clone();
        let _span = crate::telemetry::span_opt(&tele, "project");
        let duration = self.start.elapsed();

        let mut var_pts: IdxVec<VarId, Vec<AllocId>> =
            (0..self.program.vars.len()).map(|_| Vec::new()).collect();
        let mut field_pts: FxHashMap<(AllocId, FieldId), Vec<AllocId>> = FxHashMap::default();
        let mut global_pts: FxHashMap<GlobalId, Vec<AllocId>> = FxHashMap::default();
        let mut cs_var = 0u64;
        let mut cs_field = 0u64;
        let mut dump = self.config.record_contexts.then(CsDump::default);

        for (i, kind) in self.nodes.iter().enumerate() {
            match *kind {
                NodeKind::Var(v, ctx) => {
                    cs_var += self.pts[i].len() as u64;
                    let set = &mut var_pts[v];
                    for &o in &self.pts[i] {
                        let obj = CObj(o);
                        set.push(obj.heap());
                        if let Some(d) = dump.as_mut() {
                            d.var_points_to.push((v, ctx, obj.heap(), obj.hctx()));
                        }
                    }
                }
                NodeKind::Global(global) => {
                    let set = global_pts.entry(global).or_default();
                    for &o in &self.pts[i] {
                        set.push(CObj(o).heap());
                    }
                }
                NodeKind::Field(base, field) => {
                    cs_field += self.pts[i].len() as u64;
                    let set = field_pts.entry((base.heap(), field)).or_default();
                    for &o in &self.pts[i] {
                        let obj = CObj(o);
                        set.push(obj.heap());
                        if let Some(d) = dump.as_mut() {
                            d.field_points_to.push((
                                base.heap(),
                                base.hctx(),
                                field,
                                obj.heap(),
                                obj.hctx(),
                            ));
                        }
                    }
                }
            }
        }
        for set in var_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
        for set in field_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
        for set in global_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }

        let mut call_targets: FxHashMap<InvokeId, Vec<MethodId>> = FxHashMap::default();
        for &(ic, mc) in &self.cg_edges {
            let invoke = InvokeId((ic >> 32) as u32);
            let target = MethodId((mc >> 32) as u32);
            call_targets.entry(invoke).or_default().push(target);
            if let Some(d) = dump.as_mut() {
                d.call_graph
                    .push((invoke, CtxId(ic as u32), target, CtxId(mc as u32)));
            }
        }
        for set in call_targets.values_mut() {
            set.sort_unstable();
            set.dedup();
        }

        let mut reachable_methods = IdBitSet::new(self.program.methods.len());
        for &key in &self.reachable {
            let m = MethodId((key >> 32) as u32);
            reachable_methods.insert(m);
            if let Some(d) = dump.as_mut() {
                d.reachable.push((m, CtxId(key as u32)));
            }
        }

        let stats = SolverStats {
            derivations: self.derivations,
            cs_var_points_to: cs_var,
            cs_field_points_to: cs_field,
            call_graph_edges: self.cg_edge_count,
            reachable_contexts: self.reachable.len() as u64,
            contexts: self.tables.ctx_count() as u64,
            heap_contexts: self.tables.hctx_count() as u64,
            nodes: self.nodes.len() as u64,
            edges: self.edge_set.len() as u64,
            duration,
        };

        PointsToResult {
            analysis: self.policy.name(),
            outcome: match self.exhausted {
                None => Outcome::Complete,
                Some(cause) if cause.is_capacity() => Outcome::CapacityExceeded,
                Some(_) => Outcome::BudgetExhausted,
            },
            exhaustion: self.exhausted,
            stats,
            var_pts,
            field_pts,
            global_pts,
            call_targets,
            reachable_methods,
            tables: self.tables,
            cs_dump: dump,
            shard_work: None,
            epoch_shard_work: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CallSiteSensitive, Insensitive, ObjectSensitive};
    use rudoop_ir::ProgramBuilder;

    fn run(program: &Program, policy: &dyn ContextPolicy) -> PointsToResult {
        let hierarchy = ClassHierarchy::new(program);
        analyze(program, &hierarchy, policy, &SolverConfig::default())
    }

    /// main: x = new A; y = x
    #[test]
    fn alloc_and_move_propagate() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        let h = b.alloc(main, x, a);
        b.mov(main, y, x);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        assert_eq!(r.points_to(x), &[h]);
        assert_eq!(r.points_to(y), &[h]);
        assert!(r.outcome.is_complete());
    }

    /// Store then load through the same object reaches the loaded var.
    #[test]
    fn field_store_load_flow() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let main = b.method(obj, "main", &[], true);
        let bx = b.var(main, "bx");
        let v = b.var(main, "v");
        let out = b.var(main, "out");
        let _hb = b.alloc(main, bx, box_c);
        let hv = b.alloc(main, v, obj);
        b.store(main, bx, f, v);
        b.load(main, out, bx, f);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        assert_eq!(r.points_to(out), &[hv]);
    }

    /// Load registered before the store still sees the value (fixpoint).
    #[test]
    fn load_before_store_is_order_insensitive() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let main = b.method(obj, "main", &[], true);
        let bx = b.var(main, "bx");
        let v = b.var(main, "v");
        let out = b.var(main, "out");
        b.load(main, out, bx, f); // before bx even points anywhere
        b.alloc(main, bx, box_c);
        let hv = b.alloc(main, v, obj);
        b.store(main, bx, f, v);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        assert_eq!(r.points_to(out), &[hv]);
    }

    /// Virtual dispatch selects the override matching the receiver's class.
    #[test]
    fn virtual_dispatch_resolves_by_receiver_type() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let animal = b.class("Animal", Some(obj));
        let dog = b.class("Dog", Some(animal));
        let cat = b.class("Cat", Some(animal));
        // Animal.sound returns a Generic marker; Dog/Cat override.
        let m_dog = b.method(dog, "sound", &[], false);
        let dog_ret = b.var(m_dog, "r");
        let h_dog_sound = b.alloc(m_dog, dog_ret, dog);
        b.ret(m_dog, dog_ret);
        let m_cat = b.method(cat, "sound", &[], false);
        let cat_ret = b.var(m_cat, "r");
        let _h_cat_sound = b.alloc(m_cat, cat_ret, cat);
        b.ret(m_cat, cat_ret);

        let main = b.method(obj, "main", &[], true);
        let d = b.var(main, "d");
        let out = b.var(main, "out");
        b.alloc(main, d, dog);
        b.vcall(main, Some(out), d, "sound", &[]);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        // Only Dog.sound runs: out points to the dog-sound allocation only.
        assert_eq!(r.points_to(out), &[h_dog_sound]);
        assert!(r.reachable_methods.contains(m_dog));
        assert!(!r.reachable_methods.contains(m_cat));
    }

    /// Arguments flow into formals; returns flow back.
    #[test]
    fn interprocedural_assignments() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let main = b.method(obj, "main", &[], true);
        let a = b.var(main, "a");
        let out = b.var(main, "out");
        let h = b.alloc(main, a, obj);
        b.scall(main, Some(out), id_m, &[a]);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        assert_eq!(r.points_to(out), &[h]);
        assert_eq!(r.points_to(xp), &[h]);
    }

    /// The classic context-sensitivity litmus: an identity method called
    /// with two different objects. Insensitive conflates; 1-call-site does
    /// not.
    #[test]
    fn call_site_sensitivity_separates_identity_calls() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let main = b.method(obj, "main", &[], true);
        let a = b.var(main, "a");
        let c = b.var(main, "c");
        let r1 = b.var(main, "r1");
        let r2 = b.var(main, "r2");
        let h1 = b.alloc(main, a, obj);
        let h2 = b.alloc(main, c, obj);
        b.scall(main, Some(r1), id_m, &[a]);
        b.scall(main, Some(r2), id_m, &[c]);
        b.entry(main);
        let p = b.finish();

        let insens = run(&p, &Insensitive);
        assert_eq!(insens.points_to(r1), &[h1, h2]);
        assert_eq!(insens.points_to(r2), &[h1, h2]);

        let cs = run(&p, &CallSiteSensitive::new(1, 0));
        assert_eq!(cs.points_to(r1), &[h1]);
        assert_eq!(cs.points_to(r2), &[h2]);
    }

    /// Object-sensitivity litmus: one wrapper class used from two sites via
    /// its `this`-carried state.
    #[test]
    fn object_sensitivity_separates_per_receiver_state() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        // Box.set(v) { this.val = v }  Box.get() { return this.val }
        let set_m = b.method(box_c, "set", &["v"], false);
        let set_this = b.this(set_m);
        let set_v = b.param(set_m, 0);
        b.store(set_m, set_this, f, set_v);
        let get_m = b.method(box_c, "get", &[], false);
        let get_this = b.this(get_m);
        let gr = b.var(get_m, "r");
        b.load(get_m, gr, get_this, f);
        b.ret(get_m, gr);

        let main = b.method(obj, "main", &[], true);
        let b1 = b.var(main, "b1");
        let b2 = b.var(main, "b2");
        let v1 = b.var(main, "v1");
        let v2 = b.var(main, "v2");
        let o1 = b.var(main, "o1");
        let o2 = b.var(main, "o2");
        let _hb1 = b.alloc(main, b1, box_c);
        let _hb2 = b.alloc(main, b2, box_c);
        let h1 = b.alloc(main, v1, obj);
        let h2 = b.alloc(main, v2, obj);
        b.vcall(main, None, b1, "set", &[v1]);
        b.vcall(main, None, b2, "set", &[v2]);
        b.vcall(main, Some(o1), b1, "get", &[]);
        b.vcall(main, Some(o2), b2, "get", &[]);
        b.entry(main);
        let p = b.finish();

        // Two distinct Box allocations: even insensitively the *objects*
        // separate the fields, so this needs method-level conflation to
        // show: the `set_v` parameter conflates insensitively...
        let insens = run(&p, &Insensitive);
        assert_eq!(insens.points_to(o1), &[h1, h2]);
        assert_eq!(insens.points_to(o2), &[h1, h2]);

        // ...but 1-object-sensitivity keeps the two receivers' set() calls
        // apart, so each get() returns only its own value.
        let objsens = run(&p, &ObjectSensitive::new(1, 0));
        assert_eq!(objsens.points_to(o1), &[h1]);
        assert_eq!(objsens.points_to(o2), &[h2]);
    }

    /// Budget exhaustion stops the solver and is reported.
    #[test]
    fn budget_exhaustion_reports_partial_outcome() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let mut prev = b.var(main, "v0");
        b.alloc(main, prev, obj);
        for i in 1..50 {
            let v = b.var(main, &format!("v{i}"));
            b.alloc(main, v, obj);
            b.mov(main, v, prev);
            prev = v;
        }
        b.entry(main);
        let p = b.finish();
        let hierarchy = ClassHierarchy::new(&p);
        let config = SolverConfig {
            budget: Budget::derivations(10),
            ..SolverConfig::default()
        };
        let r = analyze(&p, &hierarchy, &Insensitive, &config);
        assert_eq!(r.outcome, Outcome::BudgetExhausted);
        // And the unlimited run completes with more derivations.
        let full = analyze(&p, &hierarchy, &Insensitive, &SolverConfig::default());
        assert!(full.outcome.is_complete());
        assert!(full.stats.derivations > 10);
    }

    /// Unreachable code contributes nothing.
    #[test]
    fn unreachable_methods_are_not_analyzed() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let dead = b.method(obj, "dead", &[], true);
        let d = b.var(dead, "d");
        b.alloc(dead, d, obj);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.entry(main);
        let p = b.finish();
        let r = run(&p, &Insensitive);
        assert!(r.reachable_methods.contains(main));
        assert!(!r.reachable_methods.contains(dead));
        assert!(r.points_to(d).is_empty());
    }

    /// Recursion converges (fixpoint, no infinite context growth at k=1).
    #[test]
    fn recursion_terminates_with_bounded_context() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let rec = b.method(obj, "rec", &["x"], true);
        let xp = b.param(rec, 0);
        let y = b.var(rec, "y");
        b.alloc(rec, y, obj);
        b.scall(rec, None, rec, &[y]);
        b.scall(rec, None, rec, &[xp]);
        let main = b.method(obj, "main", &[], true);
        let a = b.var(main, "a");
        b.alloc(main, a, obj);
        b.scall(main, None, rec, &[a]);
        b.entry(main);
        let p = b.finish();
        for policy in [
            &CallSiteSensitive::new(1, 0) as &dyn ContextPolicy,
            &CallSiteSensitive::new(2, 1),
        ] {
            let r = run(&p, policy);
            assert!(r.outcome.is_complete());
            assert!(!r.points_to(xp).is_empty());
        }
    }

    /// Static fields act as single program-wide slots: a store in one
    /// method is visible to a load in another, across contexts.
    #[test]
    fn globals_flow_across_methods_and_contexts() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let g = b.global(obj, "shared");
        let writer = b.method(obj, "writer", &[], true);
        let w = b.var(writer, "w");
        let h = b.alloc(writer, w, obj);
        b.store_global(writer, g, w);
        let reader = b.method(obj, "reader", &[], true);
        let r = b.var(reader, "r");
        b.load_global(reader, r, g);
        let main = b.method(obj, "main", &[], true);
        b.scall(main, None, writer, &[]);
        b.scall(main, None, reader, &[]);
        b.entry(main);
        let p = b.finish();
        let hierarchy = ClassHierarchy::new(&p);
        for policy in [
            &Insensitive as &dyn ContextPolicy,
            &CallSiteSensitive::new(2, 1),
        ] {
            let result = analyze(&p, &hierarchy, policy, &SolverConfig::default());
            assert_eq!(result.points_to(r), &[h], "under {}", policy.name());
            assert_eq!(
                result
                    .global_pts
                    .get(&rudoop_ir::GlobalId(0))
                    .map(Vec::as_slice),
                Some(&[h][..])
            );
        }
    }

    /// Cast filtering blocks non-conforming objects at cast edges.
    #[test]
    fn cast_filtering_blocks_nonconforming_objects() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let c = b.class("C", Some(obj));
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        let ha = b.alloc(main, x, a);
        let _hc = b.alloc(main, x, c);
        b.cast(main, y, x, a);
        b.entry(main);
        let p = b.finish();
        let hierarchy = ClassHierarchy::new(&p);
        // Unfiltered: the cast is a move; both objects flow.
        let plain = analyze(
            &p,
            &hierarchy,
            &crate::policy::Insensitive,
            &SolverConfig::default(),
        );
        assert_eq!(plain.points_to(y).len(), 2);
        // Filtered: only the A-object conforms to `(A)`.
        let cfg = SolverConfig {
            filter_casts: true,
            ..SolverConfig::default()
        };
        let filtered = analyze(&p, &hierarchy, &crate::policy::Insensitive, &cfg);
        assert_eq!(filtered.points_to(y), &[ha]);
    }

    /// Filtering applies on later flow too (edge added before objects).
    #[test]
    fn cast_filtering_applies_to_late_arrivals() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.cast(main, y, x, a); // cast registered before x has any objects
        let ha = b.alloc(main, x, a);
        b.alloc(main, x, obj);
        b.entry(main);
        let p = b.finish();
        let hierarchy = ClassHierarchy::new(&p);
        let cfg = SolverConfig {
            filter_casts: true,
            ..SolverConfig::default()
        };
        let r = analyze(&p, &hierarchy, &crate::policy::Insensitive, &cfg);
        assert_eq!(r.points_to(y), &[ha]);
    }

    /// cs_dump carries the context-sensitive tuples when requested.
    #[test]
    fn record_contexts_dumps_tuples() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, obj);
        b.entry(main);
        let p = b.finish();
        let hierarchy = ClassHierarchy::new(&p);
        let config = SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        };
        let r = analyze(&p, &hierarchy, &Insensitive, &config);
        assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
        let dump = r.cs_dump.unwrap_or_default();
        assert_eq!(dump.var_points_to.len(), 1);
        assert_eq!(dump.reachable.len(), 1);
        assert!(r.stats.cs_var_points_to >= 1);
    }
}
