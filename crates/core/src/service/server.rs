//! The TCP server: accept loop, per-connection threads, admission,
//! disconnect-wired cancellation, and fault application.
//!
//! One thread per connection, frames handled in order per connection.
//! Failure isolation is per-connection by construction: a malformed,
//! truncated or oversized frame gets a typed `error` response (when the
//! socket can still carry one) and drops *that* connection; the listener
//! and every other connection keep serving.
//!
//! Telemetry discipline: each connection gets its own trace lane
//! (labelled `conn-N`) carrying strictly sequential `accept` / `queue` /
//! `rung` / `respond` spans — never nested, so the per-lane stack
//! discipline the Chrome-trace checker enforces holds under any
//! interleaving. Queue depth is a trace-only counter track; the
//! deterministic counter stream gets exactly one `service.*` push per
//! counter, at shutdown.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use super::protocol::{self, FrameError, Request, Response, MAX_REQUEST_FRAME};
use super::{faults, ServiceState};
use crate::solver::CancelToken;

/// Trace lanes below this are the analysis engine's (coordinator +
/// shards); per-connection service lanes start here.
const SERVICE_LANE_BASE: u32 = 1000;

/// How often blocked reads and the accept loop re-check shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Delay before a `cancel-mid-rung` fault fires: long enough for the
/// supervised run to enter its first rung, short enough to interrupt it.
const MID_RUNG_DELAY: Duration = Duration::from_millis(10);

/// A running server: the bound listener plus its shutdown flag.
pub struct Server {
    state: Arc<ServiceState>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

/// Handle for a server spawned on a background thread (tests and the
/// daemon's signal-free orderly stop).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener. `addr` is a `host:port` pair; port 0 picks a
    /// free one (read it back from [`Server::local_addr`]).
    pub fn bind(state: Arc<ServiceState>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            state,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the accept loop when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until shutdown. Connection threads are
    /// joined before returning, then the service counters are flushed
    /// into the deterministic counter stream.
    pub fn run(self) {
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut next_conn = 0u64;
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    next_conn += 1;
                    let conn_id = next_conn;
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    conns.push(thread::spawn(move || {
                        serve_connection(state, stream, conn_id, shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(_) => break,
            }
            // Reap finished connection threads so a long-lived daemon
            // does not accumulate handles.
            conns.retain(|h| !h.is_finished());
        }
        for handle in conns {
            let _ = handle.join();
        }
        self.state.counters.flush(&self.state.config.telemetry);
    }

    /// Spawns [`Server::run`] on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_flag();
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// What reading the next request frame yielded.
enum ConnRead {
    Frame(Vec<u8>),
    /// Peer closed cleanly between frames.
    Closed,
    /// Daemon shutdown while idle.
    Shutdown,
    /// Framing failure — answer if possible, then drop the connection.
    Bad(FrameError),
}

/// Reads one frame, polling so the daemon's shutdown flag is honored
/// while idle between frames. Mid-frame timeouts keep waiting (a slow
/// client is not an error) unless shutdown is requested.
fn read_request(stream: &mut TcpStream, shutdown: &AtomicBool) -> ConnRead {
    let mut header = [0u8; 4];
    match poll_read_full(stream, &mut header, shutdown, true) {
        PollRead::Done => {}
        PollRead::Eof { got: 0 } => return ConnRead::Closed,
        PollRead::Eof { got } => return ConnRead::Bad(FrameError::Truncated { got, want: 4 }),
        PollRead::Shutdown => return ConnRead::Shutdown,
        PollRead::Err(e) => return ConnRead::Bad(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_REQUEST_FRAME {
        return ConnRead::Bad(FrameError::Oversized {
            len,
            max: MAX_REQUEST_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    match poll_read_full(stream, &mut payload, shutdown, false) {
        PollRead::Done => ConnRead::Frame(payload),
        PollRead::Eof { got } => ConnRead::Bad(FrameError::Truncated { got, want: len }),
        PollRead::Shutdown => ConnRead::Shutdown,
        PollRead::Err(e) => ConnRead::Bad(FrameError::Io(e)),
    }
}

enum PollRead {
    Done,
    Eof { got: usize },
    Shutdown,
    Err(String),
}

fn poll_read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    idle_ok: bool,
) -> PollRead {
    let mut got = 0;
    while got < buf.len() {
        // Between frames (idle_ok, nothing read yet) shutdown exits
        // cleanly; mid-frame it also exits — the daemon is going away
        // and the connection with it.
        if shutdown.load(Ordering::SeqCst) {
            return PollRead::Shutdown;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return PollRead::Eof { got },
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let _ = idle_ok; // both cases poll; the flag documents intent
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return PollRead::Err(e.to_string()),
        }
    }
    PollRead::Done
}

/// Watches a connection for client disconnect while a query runs, and
/// cancels the request token when the peer goes away. Uses `peek` so
/// pipelined follow-up frames are left in the socket for the main loop.
struct DisconnectMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl DisconnectMonitor {
    fn watch(stream: &TcpStream, token: CancelToken) -> Option<DisconnectMonitor> {
        let peek = stream.try_clone().ok()?;
        peek.set_read_timeout(Some(Duration::from_millis(50)))
            .ok()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::spawn(move || {
            let mut byte = [0u8; 1];
            while !stop2.load(Ordering::SeqCst) {
                match peek.peek(&mut byte) {
                    // EOF: the client hung up — cancel the request.
                    Ok(0) => {
                        token.cancel();
                        return;
                    }
                    // Pipelined data waiting: the client is alive. Sleep
                    // instead of spinning on the instantly-ready peek.
                    Ok(_) => thread::sleep(Duration::from_millis(50)),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    // Any hard error counts as a disconnect.
                    Err(_) => {
                        token.cancel();
                        return;
                    }
                }
            }
        });
        Some(DisconnectMonitor {
            stop,
            thread: Some(thread),
        })
    }
}

impl Drop for DisconnectMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Writes a response frame, applying the `drop-after-bytes` fault when
/// armed for this request: the truncated prefix is written and the
/// socket shut down, simulating a peer that died mid-response.
fn write_response(
    stream: &mut TcpStream,
    payload: &[u8],
    drop_after: Option<u64>,
) -> std::io::Result<()> {
    match drop_after {
        None => protocol::write_frame(stream, payload),
        Some(n) => {
            let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(payload);
            framed.truncate(n as usize);
            stream.write_all(&framed)?;
            stream.flush()?;
            stream.shutdown(std::net::Shutdown::Both)
        }
    }
}

/// One connection's life: decode frames, run queries, answer in order.
fn serve_connection(
    state: Arc<ServiceState>,
    mut stream: TcpStream,
    conn_id: u64,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let lane = SERVICE_LANE_BASE + (conn_id % 1_000_000) as u32;
    let tele = state.config.telemetry.clone();
    if let Some(t) = tele.as_deref() {
        t.set_lane_label(lane, &format!("conn-{conn_id}"));
        let now = t.now_us();
        t.complete_span(lane, "accept", now, now, vec![]);
    }
    loop {
        let payload = match read_request(&mut stream, &shutdown) {
            ConnRead::Frame(payload) => payload,
            ConnRead::Closed | ConnRead::Shutdown => return,
            ConnRead::Bad(e) => {
                // Best-effort typed error, then drop this connection —
                // the framing is no longer trustworthy.
                let resp = Response::Error {
                    message: e.to_string(),
                };
                let _ = protocol::write_frame(&mut stream, resp.render().as_bytes());
                return;
            }
        };
        let request = match Request::parse(&payload) {
            Ok(request) => request,
            Err(e) => {
                // A parse failure is recoverable: framing is intact, so
                // answer and keep serving this connection.
                let resp = Response::Error {
                    message: format!("bad request: {e}"),
                };
                if protocol::write_frame(&mut stream, resp.render().as_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Ping => {
                if protocol::write_frame(&mut stream, Response::Ok.render().as_bytes()).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = protocol::write_frame(&mut stream, Response::Ok.render().as_bytes());
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Request::Query(query) => {
                let req = state.next_ordinal();
                let faults = &state.config.faults;
                if faults.garbage_frame(req) {
                    let _ = protocol::write_frame(&mut stream, &faults::garbage_payload(req));
                    continue;
                }
                let drop_after = faults.drop_after_bytes(req);

                // Admission: accepted (possibly after queueing) or shed
                // right here — never accepted and then dropped.
                let queue_start = tele.as_deref().map(|t| t.now_us());
                let guard = match state.admission().enter() {
                    Ok(guard) => guard,
                    Err(shed) => {
                        state
                            .counters
                            .shed
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let resp = Response::Busy {
                            retry_after_ms: shed.retry_after_ms,
                        };
                        if write_response(&mut stream, resp.render().as_bytes(), drop_after)
                            .is_err()
                            || drop_after.is_some()
                        {
                            return;
                        }
                        continue;
                    }
                };
                state
                    .counters
                    .accepted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let (Some(t), Some(start)) = (tele.as_deref(), queue_start) {
                    let now = t.now_us();
                    t.complete_span(
                        lane,
                        "queue",
                        start,
                        now,
                        vec![("req".to_owned(), req.to_string())],
                    );
                    let (active, waiting) = state.admission().occupancy();
                    t.sample("service.queue_depth", waiting as u64);
                    t.sample("service.active_requests", active as u64);
                }

                // Stall fault: sleep while holding the admission slot,
                // so concurrent arrivals pile up behind this request.
                if let Some(ms) = faults.stall_ms(req) {
                    thread::sleep(Duration::from_millis(ms));
                }

                // Cancellation: wired to client disconnect for the whole
                // run, and to the mid-rung fault when armed.
                let token = CancelToken::new();
                let _monitor = DisconnectMonitor::watch(&stream, token.clone());
                let _midrung = faults.cancel_mid_rung(req).then(|| {
                    let token = token.clone();
                    thread::spawn(move || {
                        thread::sleep(MID_RUNG_DELAY);
                        token.cancel();
                    })
                });

                let rung_start = tele.as_deref().map(|t| t.now_us());
                let executed = state.execute(&query, token);
                drop(guard);
                if executed.degraded {
                    state
                        .counters
                        .degraded
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                if let (Some(t), Some(start)) = (tele.as_deref(), rung_start) {
                    let now = t.now_us();
                    t.complete_span(
                        lane,
                        "rung",
                        start,
                        now,
                        vec![
                            ("req".to_owned(), req.to_string()),
                            ("kind".to_owned(), query.kind.clone()),
                        ],
                    );
                }
                if let Some(handle) = _midrung {
                    let _ = handle.join();
                }

                let respond_start = tele.as_deref().map(|t| t.now_us());
                let wrote = write_response(
                    &mut stream,
                    executed.response.render().as_bytes(),
                    drop_after,
                );
                if let (Some(t), Some(start)) = (tele.as_deref(), respond_start) {
                    let now = t.now_us();
                    t.complete_span(lane, "respond", start, now, vec![]);
                }
                if wrote.is_err() || drop_after.is_some() {
                    return;
                }
            }
        }
    }
}
