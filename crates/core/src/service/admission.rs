//! Bounded admission control: accept, queue, or shed — decided
//! synchronously at arrival.
//!
//! The invariant the tests pin: a request is never *accepted and then
//! dropped*. [`Admission::enter`] either returns a guard (the request
//! holds a worker slot and will run) or returns [`Shed`] immediately —
//! there is no intermediate state the server can later renege on. Up to
//! `workers` requests run concurrently; up to `queue` more block inside
//! `enter` waiting for a slot; everyone past that is shed with a
//! `retry_after_ms` hint proportional to the backlog.

use std::sync::{Condvar, Mutex};

/// The typed shed decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Backoff floor to report to the client: scaled by the backlog the
    /// request saw, so a deeper queue pushes retries further out.
    pub retry_after_ms: u64,
}

#[derive(Debug)]
struct Slots {
    active: usize,
    waiting: usize,
}

/// The admission gate.
#[derive(Debug)]
pub struct Admission {
    workers: usize,
    queue: usize,
    slots: Mutex<Slots>,
    freed: Condvar,
}

/// Proof of admission: holds one worker slot, released on drop.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    gate: &'a Admission,
    /// The 1-based queue position this request waited at, or 0 when it
    /// took a worker slot without queueing.
    pub queued_behind: usize,
}

impl Admission {
    /// Per-shed-request backoff floor unit: multiplied by the backlog.
    pub const RETRY_UNIT_MS: u64 = 25;

    /// A gate with `workers` concurrent slots and `queue` waiting slots.
    pub fn new(workers: usize, queue: usize) -> Admission {
        Admission {
            workers: workers.max(1),
            queue,
            slots: Mutex::new(Slots {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Admits the request (blocking in the queue if needed) or sheds it.
    /// The decision to shed is made synchronously under the lock: once
    /// this returns a guard, the request *will* run.
    pub fn enter(&self) -> Result<AdmissionGuard<'_>, Shed> {
        let mut slots = self.slots.lock().expect("admission lock");
        if slots.active < self.workers {
            slots.active += 1;
            return Ok(AdmissionGuard {
                gate: self,
                queued_behind: 0,
            });
        }
        if slots.waiting >= self.queue {
            // Shed: every slot and queue position is taken. The hint
            // scales with the backlog this request saw.
            let backlog = slots.waiting as u64 + 1;
            return Err(Shed {
                retry_after_ms: Self::RETRY_UNIT_MS * backlog,
            });
        }
        slots.waiting += 1;
        let queued_behind = slots.waiting;
        while slots.active >= self.workers {
            slots = self.freed.wait(slots).expect("admission lock");
        }
        slots.waiting -= 1;
        slots.active += 1;
        Ok(AdmissionGuard {
            gate: self,
            queued_behind,
        })
    }

    /// Current (active, waiting) occupancy — for queue-depth samples.
    pub fn occupancy(&self) -> (usize, usize) {
        let slots = self.slots.lock().expect("admission lock");
        (slots.active, slots.waiting)
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self.gate.slots.lock().expect("admission lock");
        slots.active -= 1;
        drop(slots);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_only_past_workers_plus_queue() {
        // Both workers busy; the queue has one free slot, so a third
        // request blocks — verify from another thread that it gets in
        // once a slot frees, while a fourth is shed immediately.
        let gate = Arc::new(Admission::new(2, 1));
        let gate2 = Arc::clone(&gate);
        let a = gate.enter().expect("slot 1");
        let _b = gate.enter().expect("slot 2");
        let waiter = std::thread::spawn(move || {
            let g = gate2.enter().expect("queued request runs");
            assert_eq!(g.queued_behind, 1);
        });
        // Give the waiter time to park in the queue, then the next
        // arrival must shed with a backlog-scaled hint.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while gate.occupancy().1 == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(gate.occupancy(), (2, 1));
        let shed = gate.enter().expect_err("fourth request is shed");
        assert_eq!(shed.retry_after_ms, 2 * Admission::RETRY_UNIT_MS);
        drop(a);
        waiter.join().expect("waiter thread");
    }
}
