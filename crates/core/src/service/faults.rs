//! Deterministic fault injection for the service layer.
//!
//! Robustness claims need adversarial inputs, and adversarial inputs
//! need to be *reproducible* — a flaky fault is worse than no fault. The
//! daemon's `--inject` flag takes specs in the grammar
//!
//! ```text
//! spec  ::= name [ "=" value ] [ "@req=" K ]
//! name  ::= "drop-after-bytes" | "stall-ms" | "garbage-frame"
//!         | "cancel-mid-rung"
//! ```
//!
//! where `@req=K` pins the fault to the K-th decoded query (1-based,
//! global arrival order; shed requests consume ordinals too). Faults
//! without `@req=` apply to every request. The four faults:
//!
//! - `drop-after-bytes=N[@req=K]` — write only the first `N` bytes of
//!   the response frame, then shut the socket down (a truncated
//!   response, as a crashing peer would produce),
//! - `stall-ms=T@req=K` — sleep `T` ms *while holding the admission
//!   slot*, before the analysis starts (a slow worker, for forcing
//!   overload shedding on concurrent requests),
//! - `garbage-frame@req=K` — answer with a well-framed payload of
//!   SplitMix64 garbage derived from `K` (a corrupted peer; the client
//!   must treat it as a decode error and retry),
//! - `cancel-mid-rung@req=K` — cancel the request's token shortly after
//!   the analysis starts (a client disconnect mid-rung; the supervisor
//!   must salvage partial facts).

use rudoop_ir::rng::SplitMix64;

/// What a fault does, minus its targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate the response frame to this many bytes.
    DropAfterBytes(u64),
    /// Sleep this many milliseconds while holding the admission slot.
    StallMs(u64),
    /// Replace the response with a framed garbage payload.
    GarbageFrame,
    /// Cancel the request token shortly after the analysis starts.
    CancelMidRung,
}

/// One parsed `--inject` spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault.
    pub kind: FaultKind,
    /// The request ordinal it targets (`None` = every request).
    pub req: Option<u64>,
}

/// The daemon's full fault plan (empty in production).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses one `--inject` spec.
    pub fn parse_one(spec: &str) -> Result<FaultSpec, String> {
        let (body, req) = match spec.split_once("@req=") {
            Some((body, ord)) => {
                let ord: u64 = ord
                    .parse()
                    .map_err(|_| format!("bad request ordinal in {spec:?} (want @req=K)"))?;
                if ord == 0 {
                    return Err(format!("request ordinals are 1-based in {spec:?}"));
                }
                (body, Some(ord))
            }
            None => (spec, None),
        };
        let (name, value) = match body.split_once('=') {
            Some((name, value)) => (name, Some(value)),
            None => (body, None),
        };
        let parse_value = |what: &str| -> Result<u64, String> {
            value
                .ok_or_else(|| format!("{name} needs ={what} in {spec:?}"))?
                .parse()
                .map_err(|_| format!("bad {what} in {spec:?}"))
        };
        let kind = match name {
            "drop-after-bytes" => FaultKind::DropAfterBytes(parse_value("N")?),
            "stall-ms" => FaultKind::StallMs(parse_value("T")?),
            "garbage-frame" => {
                if value.is_some() {
                    return Err(format!("garbage-frame takes no value in {spec:?}"));
                }
                FaultKind::GarbageFrame
            }
            "cancel-mid-rung" => {
                if value.is_some() {
                    return Err(format!("cancel-mid-rung takes no value in {spec:?}"));
                }
                FaultKind::CancelMidRung
            }
            other => {
                return Err(format!(
                    "unknown fault {other:?} in {spec:?} (want drop-after-bytes, \
                     stall-ms, garbage-frame, or cancel-mid-rung)"
                ));
            }
        };
        Ok(FaultSpec { kind, req })
    }

    /// Parses a full plan from repeated `--inject` values.
    pub fn parse(specs: &[String]) -> Result<FaultPlan, String> {
        let specs = specs
            .iter()
            .map(|s| Self::parse_one(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { specs })
    }

    /// Whether any faults are armed at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn targeting(&self, req: u64) -> impl Iterator<Item = &FaultSpec> {
        self.specs
            .iter()
            .filter(move |s| s.req.is_none() || s.req == Some(req))
    }

    /// The stall to apply to request `req`, if any.
    pub fn stall_ms(&self, req: u64) -> Option<u64> {
        self.targeting(req).find_map(|s| match s.kind {
            FaultKind::StallMs(t) => Some(t),
            _ => None,
        })
    }

    /// The response-truncation length for request `req`, if any.
    pub fn drop_after_bytes(&self, req: u64) -> Option<u64> {
        self.targeting(req).find_map(|s| match s.kind {
            FaultKind::DropAfterBytes(n) => Some(n),
            _ => None,
        })
    }

    /// Whether request `req` gets a garbage response frame.
    pub fn garbage_frame(&self, req: u64) -> bool {
        self.targeting(req)
            .any(|s| s.kind == FaultKind::GarbageFrame)
    }

    /// Whether request `req` gets cancelled mid-rung.
    pub fn cancel_mid_rung(&self, req: u64) -> bool {
        self.targeting(req)
            .any(|s| s.kind == FaultKind::CancelMidRung)
    }
}

/// The garbage payload for `garbage-frame@req=K`: 64 bytes derived from
/// `K` via SplitMix64, so every run of the same plan emits the same
/// corruption. The bytes are framed normally — the fault corrupts the
/// payload, not the framing, which is exactly what a confused-but-alive
/// peer produces.
pub fn garbage_payload(req: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x6761_7262_6167_6521 ^ req);
    (0..8).flat_map(|_| rng.next_u64().to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        assert_eq!(
            FaultPlan::parse_one("drop-after-bytes=12").unwrap(),
            FaultSpec {
                kind: FaultKind::DropAfterBytes(12),
                req: None
            }
        );
        assert_eq!(
            FaultPlan::parse_one("stall-ms=250@req=3").unwrap(),
            FaultSpec {
                kind: FaultKind::StallMs(250),
                req: Some(3)
            }
        );
        assert_eq!(
            FaultPlan::parse_one("garbage-frame@req=2").unwrap(),
            FaultSpec {
                kind: FaultKind::GarbageFrame,
                req: Some(2)
            }
        );
        assert_eq!(
            FaultPlan::parse_one("cancel-mid-rung@req=1").unwrap(),
            FaultSpec {
                kind: FaultKind::CancelMidRung,
                req: Some(1)
            }
        );
        for bad in [
            "explode",
            "stall-ms",
            "stall-ms=abc",
            "garbage-frame=1",
            "cancel-mid-rung=5",
            "stall-ms=5@req=0",
            "stall-ms=5@req=x",
        ] {
            assert!(FaultPlan::parse_one(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn targeting_is_by_ordinal() {
        let plan = FaultPlan::parse(&[
            "stall-ms=100@req=2".to_owned(),
            "drop-after-bytes=4".to_owned(),
        ])
        .unwrap();
        assert_eq!(plan.stall_ms(1), None);
        assert_eq!(plan.stall_ms(2), Some(100));
        assert_eq!(plan.drop_after_bytes(1), Some(4));
        assert_eq!(plan.drop_after_bytes(7), Some(4));
        assert!(!plan.garbage_frame(2));
    }

    #[test]
    fn garbage_is_deterministic_per_ordinal() {
        assert_eq!(garbage_payload(3), garbage_payload(3));
        assert_ne!(garbage_payload(3), garbage_payload(4));
        assert_eq!(garbage_payload(3).len(), 64);
    }
}
