//! The query client: one request, bounded retries, deterministic
//! backoff.
//!
//! The retry loop covers two failure classes the daemon is *designed* to
//! produce under stress: typed `busy` sheds and transport-level garbage
//! (truncated or undecodable response frames, injected by the fault
//! layer in tests, produced by crashing peers in life). Each retry opens
//! a fresh connection — the previous one may be poisoned — and sleeps a
//! bounded exponential backoff with SplitMix64 jitter, floored at the
//! server's `retry_after_ms` hint when one was given. Under a fixed seed
//! the delay sequence is fully deterministic, which is what lets tests
//! assert on it.

use std::net::TcpStream;
use std::time::Duration;

use rudoop_ir::rng::SplitMix64;

use super::protocol::{self, Request, Response, MAX_RESPONSE_FRAME};
use crate::telemetry::TelemetryHandle;

/// Retry policy for one query.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first shed/garble).
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `k` backs off up to
    /// `base_ms << k` before jitter.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed. Same seed, same shed/garble pattern → same delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 5,
            base_ms: 25,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

/// Why the query ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Shed (`busy`) on every attempt, retries exhausted.
    Overloaded {
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// Transport or decode failure on every attempt, retries exhausted.
    Transport {
        /// The last failure.
        last: String,
        /// Total attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Overloaded { attempts } => {
                write!(f, "shed by admission control on all {attempts} attempt(s)")
            }
            ClientError::Transport { last, attempts } => {
                write!(f, "transport failure on all {attempts} attempt(s): {last}")
            }
        }
    }
}

/// What one successful query took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The daemon's answer (`Doc`, `Error`, or `Ok` for pings).
    pub response: Response,
    /// Attempts made (1 = no retries needed).
    pub attempts: u32,
    /// The backoff slept before each retry, in order — deterministic
    /// under the policy seed, so tests assert on it directly.
    pub delays_ms: Vec<u64>,
}

/// Sends one request and reads one response on a fresh connection.
pub fn send_once(addr: &str, request: &Request) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    protocol::write_frame(&mut stream, request.render().as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let payload = protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME)
        .map_err(|e| format!("receive: {e}"))?;
    Response::parse(&payload).map_err(|e| format!("bad response frame: {e}"))
}

/// The backoff before retry `attempt` (0-based): exponential with full
/// jitter in the upper half — `d/2 + uniform(0..=d/2)` where
/// `d = min(cap, base << attempt)` — floored at the server's
/// `retry_after_ms` hint when the shed response carried one.
fn backoff_ms(policy: &RetryPolicy, rng: &mut SplitMix64, attempt: u32, floor: Option<u64>) -> u64 {
    let d = policy
        .cap_ms
        .min(policy.base_ms.saturating_shl(attempt.min(63)));
    let jittered = d / 2 + rng.below((d / 2 + 1) as usize) as u64;
    jittered.max(floor.unwrap_or(0))
}

/// Sends `request` with retry/backoff per `policy`. Shed (`busy`) and
/// transport failures retry; every other response returns as-is. Each
/// retry increments the `service.client_retries` counter on `tele`.
pub fn query_with_retry(
    addr: &str,
    request: &Request,
    policy: &RetryPolicy,
    tele: &TelemetryHandle,
) -> Result<QueryOutcome, ClientError> {
    let mut rng = SplitMix64::new(policy.seed);
    let mut delays_ms = Vec::new();
    let mut last_transport = String::new();
    let mut last_was_busy = false;
    for attempt in 0..=policy.retries {
        let floor = match send_once(addr, request) {
            Ok(Response::Busy { retry_after_ms }) => {
                last_was_busy = true;
                Some(retry_after_ms)
            }
            Ok(response) => {
                return Ok(QueryOutcome {
                    response,
                    attempts: attempt + 1,
                    delays_ms,
                });
            }
            Err(e) => {
                last_was_busy = false;
                last_transport = e;
                None
            }
        };
        if attempt == policy.retries {
            break;
        }
        if let Some(t) = tele.as_deref() {
            t.counter("service.client_retries", 1);
        }
        let delay = backoff_ms(policy, &mut rng, attempt, floor);
        delays_ms.push(delay);
        std::thread::sleep(Duration::from_millis(delay));
    }
    let attempts = policy.retries + 1;
    if last_was_busy {
        Err(ClientError::Overloaded { attempts })
    } else {
        Err(ClientError::Transport {
            last: last_transport,
            attempts,
        })
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_floored() {
        let policy = RetryPolicy {
            retries: 8,
            base_ms: 16,
            cap_ms: 100,
            seed: 7,
        };
        let mut a = SplitMix64::new(policy.seed);
        let mut b = SplitMix64::new(policy.seed);
        for attempt in 0..8 {
            let d = policy.cap_ms.min(policy.base_ms << attempt);
            let x = backoff_ms(&policy, &mut a, attempt, None);
            let y = backoff_ms(&policy, &mut b, attempt, None);
            assert_eq!(x, y, "same seed, same delays");
            assert!(
                x >= d / 2 && x <= d,
                "attempt {attempt}: {x} not in [{}, {d}]",
                d / 2
            );
        }
        // The server hint floors the jittered delay.
        let mut c = SplitMix64::new(policy.seed);
        assert!(backoff_ms(&policy, &mut c, 0, Some(5_000)) >= 5_000);
    }
}
