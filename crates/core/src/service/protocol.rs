//! The wire protocol: length-prefixed single-line JSON frames.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The asymmetric size caps encode who is allowed
//! to be big: requests are tiny ([`MAX_REQUEST_FRAME`]), response
//! documents can be a full points-to dump ([`MAX_RESPONSE_FRAME`]).
//!
//! Decoding is *fail-closed per connection*: an oversized, truncated or
//! non-JSON frame yields a typed [`FrameError`], the server answers with
//! an `error` response when the socket still works, and the connection —
//! only that connection — is dropped. There is no resynchronization
//! inside a stream, by design: after a malformed length prefix the byte
//! stream has no trustworthy framing left.

use std::io::{Read, Write};

use crate::json::{self, Value};

/// Size cap for request frames (1 MiB): a query document is small.
pub const MAX_REQUEST_FRAME: usize = 1 << 20;

/// Size cap for response frames (64 MiB): a `dump` document over a big
/// benchmark is not.
pub const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean end-of-stream before the first header byte.
    Closed,
    /// End-of-stream in the middle of a header or payload.
    Truncated {
        /// Bytes that did arrive before the stream ended.
        got: usize,
        /// Bytes the frame header promised (0 while still in the header).
        want: usize,
    },
    /// The header announced a payload over the size cap.
    Oversized {
        /// The announced payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// Any other transport error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, want } => {
                write!(f, "truncated frame: got {got} of {want} byte(s)")
            }
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} byte(s) exceeds the {max}-byte cap"
                )
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Writes one frame: the 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing the `max` payload cap. Blocking: the
/// server wraps this in its own polling loop (see `server`), the client
/// calls it directly.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_full(r, &mut header, 0)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, len).map_err(|e| match e {
        // EOF after a complete header is truncation, not a clean close.
        FrameError::Closed => FrameError::Truncated { got: 0, want: len },
        other => other,
    })?;
    Ok(payload)
}

fn read_full(r: &mut impl Read, buf: &mut [u8], want: usize) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated {
                        got,
                        want: want.max(buf.len()),
                    }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// The rendering of a response document: the batch CLI's text report or
/// its machine-readable JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DocFormat {
    /// The human-readable report (`--format text`, the default).
    #[default]
    Text,
    /// The machine-readable document (`--format json`).
    Json,
}

/// Per-request resource limits, all optional (absent = unlimited).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Derivation cap (`--budget`).
    pub derivations: Option<u64>,
    /// Wall-clock cap in milliseconds (`--timeout`, watchdog-enforced).
    pub ms: Option<u64>,
    /// Modeled-memory cap in bytes (`--max-bytes`).
    pub bytes: Option<u64>,
}

/// One analysis query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryRequest {
    /// What to compute: `stats`, `dump`, `pts`, `taint`, `races`, or an
    /// extension kind registered by the daemon (e.g. `lints`).
    pub kind: String,
    /// The variable for `pts` queries.
    pub var: Option<String>,
    /// Document rendering.
    pub format: DocFormat,
    /// Per-request ladder override (a [`crate::supervisor::LadderSpec`]).
    pub ladder: Option<String>,
    /// Per-request budgets.
    pub budget: BudgetSpec,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Orderly daemon stop (acknowledged before the listener closes).
    Shutdown,
    /// An analysis query.
    Query(QueryRequest),
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Acknowledgement for `ping` / `shutdown`.
    Ok,
    /// The request was shed by admission control. Retry no sooner than
    /// `retry_after_ms` — the hint is part of the contract, and the
    /// bundled client's backoff floors at it.
    Busy {
        /// Backoff floor for the retry.
        retry_after_ms: u64,
    },
    /// The request failed (bad request, unknown kind, missing spec, …).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// The query ran. `status` mirrors the supervisor verdict and
    /// `exit_code` its 0/3/4 contract; `doc` is byte-identical to the
    /// batch CLI's stdout for the same query.
    Doc {
        /// `complete`, `degraded`, or `exhausted`.
        status: String,
        /// 0 complete / 3 degraded / 4 exhausted.
        exit_code: u8,
        /// The analysis name that produced the document, if any rung
        /// completed.
        analysis: Option<String>,
        /// The rendered document.
        doc: String,
    },
}

impl Request {
    /// Renders the request as its single-line JSON wire form.
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "{\"op\":\"ping\"}".to_owned(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_owned(),
            Request::Query(q) => {
                let mut out = String::from("{\"op\":\"query\",\"kind\":");
                out.push_str(&json::escape(&q.kind));
                if let Some(var) = &q.var {
                    out.push_str(",\"var\":");
                    out.push_str(&json::escape(var));
                }
                if q.format == DocFormat::Json {
                    out.push_str(",\"format\":\"json\"");
                }
                if let Some(ladder) = &q.ladder {
                    out.push_str(",\"ladder\":");
                    out.push_str(&json::escape(ladder));
                }
                if let Some(n) = q.budget.derivations {
                    out.push_str(&format!(",\"budget_derivations\":{n}"));
                }
                if let Some(n) = q.budget.ms {
                    out.push_str(&format!(",\"budget_ms\":{n}"));
                }
                if let Some(n) = q.budget.bytes {
                    out.push_str(&format!(",\"budget_bytes\":{n}"));
                }
                out.push('}');
                out
            }
        }
    }

    /// Parses a request frame payload.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_owned())?;
        let value = json::parse(text)?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "query" => {
                let kind = value
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("query has no \"kind\"")?
                    .to_owned();
                let format = match value.get("format").and_then(Value::as_str) {
                    None | Some("text") => DocFormat::Text,
                    Some("json") => DocFormat::Json,
                    Some(other) => return Err(format!("unknown format {other:?}")),
                };
                let u64_field = |key: &str| -> Result<Option<u64>, String> {
                    match value.get(key) {
                        None | Some(Value::Null) => Ok(None),
                        Some(v) => v
                            .as_u64()
                            .map(Some)
                            .ok_or_else(|| format!("{key} is not a non-negative integer")),
                    }
                };
                Ok(Request::Query(QueryRequest {
                    kind,
                    var: value.get("var").and_then(Value::as_str).map(str::to_owned),
                    format,
                    ladder: value
                        .get("ladder")
                        .and_then(Value::as_str)
                        .map(str::to_owned),
                    budget: BudgetSpec {
                        derivations: u64_field("budget_derivations")?,
                        ms: u64_field("budget_ms")?,
                        bytes: u64_field("budget_bytes")?,
                    },
                }))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

impl Response {
    /// Renders the response as its single-line JSON wire form.
    pub fn render(&self) -> String {
        match self {
            Response::Ok => "{\"status\":\"ok\"}".to_owned(),
            Response::Busy { retry_after_ms } => {
                format!("{{\"status\":\"busy\",\"retry_after_ms\":{retry_after_ms}}}")
            }
            Response::Error { message } => {
                format!(
                    "{{\"status\":\"error\",\"error\":{}}}",
                    json::escape(message)
                )
            }
            Response::Doc {
                status,
                exit_code,
                analysis,
                doc,
            } => {
                let analysis = match analysis {
                    Some(name) => json::escape(name),
                    None => "null".to_owned(),
                };
                format!(
                    "{{\"status\":{},\"exit_code\":{exit_code},\"analysis\":{analysis},\"doc\":{}}}",
                    json::escape(status),
                    json::escape(doc)
                )
            }
        }
    }

    /// Parses a response frame payload.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_owned())?;
        let value = json::parse(text)?;
        let status = value
            .get("status")
            .and_then(Value::as_str)
            .ok_or("response has no \"status\"")?;
        match status {
            "ok" => Ok(Response::Ok),
            "busy" => Ok(Response::Busy {
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .ok_or("busy response has no retry_after_ms")?,
            }),
            "error" => Ok(Response::Error {
                message: value
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or("error response has no error message")?
                    .to_owned(),
            }),
            "complete" | "degraded" | "exhausted" => Ok(Response::Doc {
                status: status.to_owned(),
                exit_code: value
                    .get("exit_code")
                    .and_then(Value::as_u64)
                    .ok_or("doc response has no exit_code")? as u8,
                analysis: value
                    .get("analysis")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
                doc: value
                    .get("doc")
                    .and_then(Value::as_str)
                    .ok_or("doc response has no doc")?
                    .to_owned(),
            }),
            other => Err(format!("unknown status {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 16).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 16), Err(FrameError::Closed));
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(7);
        assert_eq!(
            read_frame(&mut buf.as_slice(), 16),
            Err(FrameError::Truncated { got: 3, want: 5 })
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 32]).unwrap();
        assert_eq!(
            read_frame(&mut buf.as_slice(), 16),
            Err(FrameError::Oversized { len: 32, max: 16 })
        );
        // Truncated mid-header.
        assert!(matches!(
            read_frame(&mut [0u8, 0].as_slice(), 16),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Shutdown,
            Request::Query(QueryRequest {
                kind: "taint".into(),
                var: None,
                format: DocFormat::Json,
                ladder: Some("introB:2objH,insens".into()),
                budget: BudgetSpec {
                    derivations: Some(100_000),
                    ms: Some(2_000),
                    bytes: None,
                },
            }),
            Request::Query(QueryRequest {
                kind: "pts".into(),
                var: Some("Main.main::x".into()),
                format: DocFormat::Text,
                ladder: None,
                budget: BudgetSpec::default(),
            }),
        ];
        for req in reqs {
            let parsed = Request::parse(req.render().as_bytes()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Ok,
            Response::Busy { retry_after_ms: 50 },
            Response::Error {
                message: "bad \"thing\"\n".into(),
            },
            Response::Doc {
                status: "degraded".into(),
                exit_code: 3,
                analysis: Some("insens".into()),
                doc: "a -> {Object}\n".into(),
            },
        ];
        for resp in resps {
            let parsed = Response::parse(resp.render().as_bytes()).unwrap();
            assert_eq!(parsed, resp);
        }
    }

    #[test]
    fn garbage_payloads_are_rejected() {
        assert!(Request::parse(b"\xff\xfe").is_err());
        assert!(Request::parse(b"{\"op\":12}").is_err());
        assert!(Request::parse(b"{\"op\":\"query\"}").is_err());
        assert!(Response::parse(b"{}").is_err());
    }
}
