//! Analysis-as-a-service: the resident `rudoopd` engine.
//!
//! The batch CLI pays the full load-intern-warm cost on every invocation;
//! a resident service pays it once and then answers queries under
//! per-request budgets. The paper's own framing — introspection as a
//! *defense* against pathological context blowup under a hard resource
//! wall — is an overload-protection story, and this module is where it
//! becomes one literally: every request runs under the
//! [`crate::supervisor`] degradation ladder with its own [`Budget`] and a
//! [`CancelToken`] wired to client disconnect.
//!
//! The layering, bottom to top:
//!
//! - [`protocol`] — length-prefixed single-line JSON frames and the
//!   request/response documents,
//! - [`admission`] — the bounded admission queue: a request is either
//!   *accepted* (it will run) or *shed* with a typed `busy` response and a
//!   `retry_after_ms` hint — never accepted and then dropped,
//! - [`faults`] — the deterministic fault-injection plan (`--inject`)
//!   that lets tests force stalls, garbage frames, truncated responses
//!   and mid-rung cancellations at exact request ordinals,
//! - [`server`] — the TCP listener, per-connection threads, and the
//!   disconnect monitor,
//! - [`client`] — the query client with bounded exponential backoff and
//!   SplitMix64 jitter (deterministic under a seed).
//!
//! Responses reuse the exact renderers the batch CLI prints, so a
//! daemon-served document is byte-identical to batch stdout for the same
//! program, flavor and query — the property the e2e suite pins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rudoop_ir::{ClassHierarchy, Program, TaintSpec};

use crate::driver::Flavor;
use crate::policy::Insensitive;
use crate::races::supervised_races_traced;
use crate::solver::{analyze, Budget, CancelToken, PointsToResult, SolverConfig};
use crate::stats::{render_dump, render_pts, ResultStats};
use crate::summaries::SummaryTable;
use crate::supervisor::{supervise, LadderSpec, RungKind, SupervisedRun, SupervisorConfig};
use crate::taint::supervised_taint_traced;
use crate::telemetry::TelemetryHandle;

pub mod admission;
pub mod client;
pub mod faults;
pub mod protocol;
pub mod server;

use admission::Admission;
use faults::FaultPlan;
use protocol::{DocFormat, QueryRequest, Response};

/// Everything the daemon decides once at startup.
pub struct ServiceConfig {
    /// Worker slots: at most this many requests analyze concurrently.
    pub workers: usize,
    /// Queue slots: at most this many accepted requests wait for a worker.
    pub queue: usize,
    /// The flavor whose canonical ladder serves queries without an
    /// explicit `ladder` field.
    pub flavor: Flavor,
    /// Explicit default ladder (overrides `flavor`'s canonical one).
    pub ladder: Option<LadderSpec>,
    /// Assign-cast filtering for every request (a per-daemon choice: it
    /// changes the warm first pass).
    pub filter_casts: bool,
    /// Solver thread count per request.
    pub parallelism: crate::parallel::Parallelism,
    /// Taint specification; `taint` queries error without one.
    pub taint_spec: Option<TaintSpec>,
    /// The deterministic fault-injection plan (empty in production).
    pub faults: FaultPlan,
    /// Service-layer telemetry. Per-request *analysis* telemetry stays
    /// off: the span stack is per-lane and concurrent supervised runs
    /// would interleave on it. The service records its own sequential
    /// spans on per-connection lanes instead.
    pub telemetry: TelemetryHandle,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue: 4,
            flavor: Flavor::OBJ2H,
            ladder: None,
            filter_casts: false,
            parallelism: crate::parallel::Parallelism::sequential(),
            taint_spec: None,
            faults: FaultPlan::default(),
            telemetry: None,
        }
    }
}

/// An extension query evaluated over the warm program and a completed
/// points-to result. The daemon binary registers one per extra query kind
/// (e.g. `lints`, which lives above this crate), keeping the core free of
/// upward dependencies.
pub trait QueryHandler: Send + Sync {
    /// Renders the response document for one request.
    fn handle(
        &self,
        program: &Program,
        hierarchy: &ClassHierarchy,
        result: &PointsToResult,
        format: DocFormat,
    ) -> Result<String, String>;
}

/// Monotonic counters the server folds into the deterministic counter
/// stream at shutdown (one push per counter, fixed order — concurrent
/// increments never interleave in the stream).
#[derive(Default)]
pub struct ServiceCounters {
    /// Requests that got a worker slot (immediately or after queueing).
    pub accepted: AtomicU64,
    /// Requests shed with a typed `busy` response.
    pub shed: AtomicU64,
    /// Accepted requests whose ladder verdict was degraded or exhausted.
    pub degraded: AtomicU64,
    /// Summaries-flavored requests that reused the warm summary table.
    pub summary_cache_hits: AtomicU64,
    /// Summaries-flavored requests that had to compute the summary table
    /// (at most 1 per resident program: the table is cached forever).
    pub summary_cache_misses: AtomicU64,
}

impl ServiceCounters {
    /// Pushes the counters into `tele`'s deterministic counter stream in
    /// a fixed order.
    pub fn flush(&self, tele: &TelemetryHandle) {
        if let Some(t) = tele.as_deref() {
            t.counter(
                "service.requests_accepted",
                self.accepted.load(Ordering::Relaxed),
            );
            t.counter("service.requests_shed", self.shed.load(Ordering::Relaxed));
            t.counter(
                "service.requests_degraded",
                self.degraded.load(Ordering::Relaxed),
            );
            t.counter(
                "service.summary_cache_hits",
                self.summary_cache_hits.load(Ordering::Relaxed),
            );
            t.counter(
                "service.summary_cache_misses",
                self.summary_cache_misses.load(Ordering::Relaxed),
            );
        }
    }
}

/// The resident state: the program loaded and interned once, its class
/// hierarchy, the warm insensitive first pass, and the extension query
/// handlers.
pub struct ServiceState {
    /// The program every query runs against.
    pub program: Program,
    /// Its class hierarchy.
    pub hierarchy: ClassHierarchy,
    /// Startup configuration.
    pub config: ServiceConfig,
    /// Service counters (flushed to telemetry at shutdown).
    pub counters: ServiceCounters,
    warm: Option<Arc<PointsToResult>>,
    warm_summary_table: Mutex<Option<Arc<SummaryTable>>>,
    handlers: HashMap<String, Box<dyn QueryHandler>>,
    admission: Admission,
    ordinal: AtomicU64,
}

/// What one executed query produced: the wire response plus the ladder
/// verdict (when the request ran an analysis).
pub struct Executed {
    /// The response to frame back to the client.
    pub response: Response,
    /// True when the ladder completed below its top rung or exhausted.
    pub degraded: bool,
}

impl ServiceState {
    /// Loads the resident state: interns the program, builds the
    /// hierarchy, and warms the insensitive first pass (the pass every
    /// introspective rung needs). The warm pass is computed with the
    /// daemon's solver settings and an unlimited budget, so it is the
    /// same result a cold batch run's completed first pass reaches —
    /// [`SupervisorConfig::warm_first_pass`] only admits it into requests
    /// whose budget it fits, keeping warm and cold runs byte-identical.
    pub fn new(program: Program, config: ServiceConfig) -> ServiceState {
        let hierarchy = ClassHierarchy::new(&program);
        let warm_cfg = SolverConfig {
            filter_casts: config.filter_casts,
            parallelism: config.parallelism,
            ..SolverConfig::default()
        };
        let warm = analyze(&program, &hierarchy, &Insensitive, &warm_cfg);
        let warm = warm.outcome.is_complete().then(|| Arc::new(warm));
        let admission = Admission::new(config.workers, config.queue);
        ServiceState {
            program,
            hierarchy,
            config,
            counters: ServiceCounters::default(),
            warm,
            warm_summary_table: Mutex::new(None),
            handlers: HashMap::new(),
            admission,
            ordinal: AtomicU64::new(0),
        }
    }

    /// The admission gate.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Registers an extension query handler for `kind` (e.g. `lints`).
    pub fn register_handler(&mut self, kind: &str, handler: Box<dyn QueryHandler>) {
        self.handlers.insert(kind.to_owned(), handler);
    }

    /// Assigns the next global request ordinal (1-based). Every decoded
    /// query consumes one — including queries that are then shed — so
    /// `@req=K` fault specs address requests by arrival order.
    pub fn next_ordinal(&self) -> u64 {
        self.ordinal.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The warm first pass, when the program completed one.
    pub fn warm_first_pass(&self) -> Option<&Arc<PointsToResult>> {
        self.warm.as_ref()
    }

    /// The warm summary table for ladders that contain a `summaries`
    /// rung — the daemon's first *context-sensitive* warm cache.
    ///
    /// The first summaries-flavored request pays the bottom-up SCC pass
    /// (`service.summary_cache_misses`); every later one reuses the table
    /// (`service.summary_cache_hits`). The table is a pure function of
    /// the resident program, so warm and cold runs are byte-identical by
    /// construction. Ladders without a summaries rung return `None`
    /// without touching the cache or its counters.
    pub fn warm_summaries(&self, ladder: &LadderSpec) -> Option<Arc<SummaryTable>> {
        let wants = ladder.rungs.iter().any(|rung| {
            matches!(
                rung.kind,
                RungKind::Direct(Flavor::Summaries)
                    | RungKind::Introspective {
                        flavor: Flavor::Summaries,
                        ..
                    }
            )
        });
        if !wants {
            return None;
        }
        let mut slot = self
            .warm_summary_table
            .lock()
            .expect("summary cache poisoned");
        match &*slot {
            Some(table) => {
                self.counters
                    .summary_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(table))
            }
            None => {
                self.counters
                    .summary_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
                let table = Arc::new(SummaryTable::compute(&self.program, &self.hierarchy));
                *slot = Some(Arc::clone(&table));
                Some(table)
            }
        }
    }

    /// Runs one accepted query under the supervisor and renders its
    /// response document. `cancel` is the per-request token (wired to
    /// client disconnect and to the `cancel-mid-rung` fault).
    pub fn execute(&self, query: &QueryRequest, cancel: CancelToken) -> Executed {
        let ladder = match &query.ladder {
            Some(spec) => match LadderSpec::parse(spec) {
                Ok(l) => l,
                Err(e) => return Executed::error(format!("bad ladder spec: {e}")),
            },
            None => self
                .config
                .ladder
                .clone()
                .unwrap_or_else(|| LadderSpec::default_for(self.config.flavor)),
        };
        let mut budget = Budget::unlimited();
        if let Some(n) = query.budget.derivations {
            budget = budget.and_derivations(n);
        }
        if let Some(n) = query.budget.bytes {
            budget = budget.and_bytes(n);
        }
        if let Some(ms) = query.budget.ms {
            budget = budget.and_duration(Duration::from_millis(ms));
        }
        let warm_summaries = self.warm_summaries(&ladder);
        let cfg = SupervisorConfig {
            ladder,
            budget,
            solver: SolverConfig {
                filter_casts: self.config.filter_casts,
                parallelism: self.config.parallelism,
                cancel: Some(cancel),
                // The taint and race clients walk per-context points-to
                // facts — mirror the batch CLI's record_contexts switch
                // so their documents match its output byte for byte.
                record_contexts: matches!(query.kind.as_str(), "taint" | "races"),
                ..SolverConfig::default()
            },
            watchdog: query.budget.ms.is_some(),
            warm_first_pass: self.warm.clone(),
            warm_summaries,
        };
        let run = supervise(&self.program, &self.hierarchy, &cfg);
        // The degraded flag tracks the ladder verdict, not the rendering:
        // a cancelled run that has nothing to render still counts.
        let degraded = run.exit_code() != 0;
        let doc = match self.render_doc(query, &run) {
            Ok(doc) => doc,
            Err(message) => {
                return Executed {
                    response: Response::Error { message },
                    degraded,
                }
            }
        };
        Executed {
            response: Response::Doc {
                status: run.verdict.to_string(),
                exit_code: run.exit_code(),
                analysis: run.final_analysis().map(str::to_owned),
                doc,
            },
            degraded,
        }
    }

    /// Renders the document for a completed run — the exact bytes the
    /// batch CLI prints on stdout for the same query.
    fn render_doc(&self, query: &QueryRequest, run: &SupervisedRun) -> Result<String, String> {
        let none = TelemetryHandle::default();
        match query.kind.as_str() {
            "taint" => {
                let spec = self
                    .config
                    .taint_spec
                    .as_ref()
                    .ok_or("daemon started without --taint-spec; taint queries unavailable")?;
                let taint = supervised_taint_traced(&self.program, spec, run, &none);
                Ok(match query.format {
                    DocFormat::Json => crate::taint::render_json(&self.program, &taint),
                    DocFormat::Text => crate::taint::render_text(&self.program, &taint),
                })
            }
            "races" => {
                let races = supervised_races_traced(&self.program, run, &none);
                Ok(match query.format {
                    DocFormat::Json => crate::races::render_json(&self.program, &races),
                    DocFormat::Text => crate::races::render_text(&races),
                })
            }
            "stats" => {
                let result = run.best_result().ok_or(
                    "no facts to report: every rung \
                     exhausted before salvaging anything",
                )?;
                Ok(ResultStats::compute(&self.program, result, 10).render(&self.program))
            }
            "dump" => {
                let result = run.best_result().ok_or(
                    "no facts to report: every rung \
                     exhausted before salvaging anything",
                )?;
                Ok(render_dump(&self.program, result))
            }
            "pts" => {
                let var = query.var.as_deref().ok_or("pts query requires a var")?;
                let result = run.best_result().ok_or(
                    "no facts to report: every rung \
                     exhausted before salvaging anything",
                )?;
                render_pts(&self.program, result, var)
                    .ok_or_else(|| format!("no variable matches {var:?}"))
            }
            other => {
                let handler = self
                    .handlers
                    .get(other)
                    .ok_or_else(|| format!("unknown query kind {other:?}"))?;
                let result = run.result.as_ref().ok_or(
                    "analysis did not complete: \
                     extension queries need a completed rung",
                )?;
                handler.handle(&self.program, &self.hierarchy, result, query.format)
            }
        }
    }
}

impl Executed {
    fn error(message: String) -> Executed {
        Executed {
            response: Response::Error { message },
            degraded: false,
        }
    }
}
