//! The resilient analysis supervisor: a degradation ladder over solver
//! runs, with per-rung budgets, watchdog-enforced deadlines, and
//! partial-result salvage.
//!
//! The paper's central empirical claim is that precise context-sensitivity
//! is *fragile* — `2objH` times out or exhausts 24 GB on several DaCapo
//! benchmarks — and that introspection restores scalability by degrading
//! precision only where it hurts. The supervisor operationalizes that
//! claim as a control loop: run the most precise configuration first, and
//! when it exhausts its budget (derivations, modeled bytes, wall clock,
//! cancellation, or an internal capacity table), fall back rung by rung —
//! typically `2objH → introspective-B(2objH) → introspective-A(2objH) →
//! cutshortcut → insens` — until one configuration completes.
//!
//! Two properties make retries cheap and the whole ladder reproducible:
//!
//! - **Salvage**: the context-insensitive first pass required by every
//!   introspective rung is computed at most once and shared across rungs
//!   (via [`analyze_introspective_from`]), so a retry never recomputes the
//!   insensitive fixpoint. When every rung exhausts, the best partial
//!   result is still returned for inspection.
//! - **Determinism**: with derivation or byte budgets (rather than wall
//!   clock), every rung outcome — and therefore the rung order, the final
//!   analysis, and the exit code — is a pure function of the program and
//!   the configuration.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rudoop_ir::{ClassHierarchy, Program};

use crate::driver::{analyze_flavor, analyze_introspective_from, Flavor};
use crate::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use crate::parallel::Parallelism;
use crate::policy::Insensitive;
use crate::solver::{
    analyze, Budget, CancelToken, ExhaustionCause, Outcome, PointsToResult, SolverConfig,
    SolverStats,
};

/// Which refinement heuristic an introspective rung uses, with its
/// constants (defaults are the paper's).
#[derive(Debug, Clone, Copy)]
pub enum HeuristicChoice {
    /// Heuristic A: aggressive scalability.
    A(HeuristicA),
    /// Heuristic B: selective, precision-preserving.
    B(HeuristicB),
}

impl HeuristicChoice {
    /// Heuristic A with the paper's constants.
    pub fn a() -> Self {
        HeuristicChoice::A(HeuristicA::default())
    }

    /// Heuristic B with the paper's constants.
    pub fn b() -> Self {
        HeuristicChoice::B(HeuristicB::default())
    }

    /// The heuristic as a trait object for the driver.
    pub fn as_dyn(&self) -> &dyn RefinementHeuristic {
        match self {
            HeuristicChoice::A(h) => h,
            HeuristicChoice::B(h) => h,
        }
    }

    /// `A` or `B`, for rung spec strings.
    pub fn letter(&self) -> char {
        match self {
            HeuristicChoice::A(_) => 'A',
            HeuristicChoice::B(_) => 'B',
        }
    }
}

/// The analysis a rung runs (its shape, without resource overrides).
#[derive(Debug, Clone, Copy)]
pub enum RungKind {
    /// A plain single-pass analysis under `Flavor`.
    Direct(Flavor),
    /// The two-pass introspective variant: insensitive pass (shared across
    /// rungs), heuristic selection, selectively-refined pass.
    Introspective {
        /// The refined context flavor.
        flavor: Flavor,
        /// The selection heuristic.
        heuristic: HeuristicChoice,
    },
}

/// One rung of the degradation ladder: an analysis shape plus optional
/// per-rung overrides (currently the worker-thread count).
#[derive(Debug, Clone, Copy)]
pub struct RungSpec {
    /// Which analysis the rung runs.
    pub kind: RungKind,
    /// Worker threads for this rung; `None` inherits the supervisor's
    /// [`SolverConfig::parallelism`]. Spelled `@tN` in spec strings
    /// (`2objH@t4`). Results are byte-identical at any thread count, so
    /// this only trades wall-clock for cores — e.g. run the expensive
    /// first rung wide and the cheap fallback rungs sequentially.
    pub threads: Option<usize>,
}

impl RungSpec {
    /// A single-pass rung under `flavor`.
    pub fn direct(flavor: Flavor) -> RungSpec {
        RungSpec {
            kind: RungKind::Direct(flavor),
            threads: None,
        }
    }

    /// A two-pass introspective rung.
    pub fn introspective(flavor: Flavor, heuristic: HeuristicChoice) -> RungSpec {
        RungSpec {
            kind: RungKind::Introspective { flavor, heuristic },
            threads: None,
        }
    }

    /// This rung with a worker-thread override.
    pub fn with_threads(mut self, threads: usize) -> RungSpec {
        self.threads = Some(threads.max(1));
        self
    }

    /// The program-independent spec string (`2objH`, `introB:2objH`,
    /// `2objH@t4`, …), accepted back by [`RungSpec::parse`].
    pub fn spec(&self) -> String {
        let base = match &self.kind {
            RungKind::Direct(f) => f.spec_name(),
            RungKind::Introspective { flavor, heuristic } => {
                format!("intro{}:{}", heuristic.letter(), flavor.spec_name())
            }
        };
        match self.threads {
            Some(n) => format!("{base}@t{n}"),
            None => base,
        }
    }

    /// Parses one rung: a flavor name (`2objH`, `insens`) or an
    /// introspective rung `introA:<flavor>` / `introspectiveB:<flavor>`,
    /// optionally suffixed with a thread override `@tN`.
    ///
    /// At most one `@tN` suffix is allowed. A duplicate (`2objH@t4@t4`) or
    /// conflicting (`2objH@t4@t8`) override is rejected with an error
    /// naming the character span of both suffixes — never resolved
    /// last-wins, which would silently mask a typo in a ladder spec.
    pub fn parse(s: &str) -> Result<RungSpec, String> {
        let mut parts = s.split('@');
        let base = parts.next().unwrap_or("");
        let mut threads: Option<usize> = None;
        // Span of the accepted `@tN` suffix, for duplicate diagnostics.
        let mut accepted_span: Option<(usize, usize)> = None;
        let mut at = base.len();
        for suffix in parts {
            let span = (at, at + 1 + suffix.len());
            at = span.1;
            let n = suffix
                .strip_prefix('t')
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!(
                        "malformed thread override \"@{suffix}\" at chars {}..{} in rung {s:?} \
                         (want @tN)",
                        span.0, span.1
                    )
                })?;
            match (threads, accepted_span) {
                (Some(prev), Some(prev_span)) if prev == n => {
                    return Err(format!(
                        "duplicate thread override \"@t{n}\" at chars {}..{} in rung {s:?} \
                         (already set at chars {}..{})",
                        span.0, span.1, prev_span.0, prev_span.1
                    ));
                }
                (Some(prev), Some(prev_span)) => {
                    return Err(format!(
                        "conflicting thread override \"@t{n}\" at chars {}..{} in rung {s:?} \
                         (conflicts with \"@t{prev}\" at chars {}..{})",
                        span.0, span.1, prev_span.0, prev_span.1
                    ));
                }
                _ => {
                    threads = Some(n);
                    accepted_span = Some(span);
                }
            }
        }
        let intro = base
            .strip_prefix("introspective")
            .or_else(|| base.strip_prefix("intro"));
        let kind = if let Some(rest) = intro {
            let (letter, flavor) = rest.split_once(':').ok_or_else(|| {
                format!("malformed introspective rung {s:?} (want introA:FLAVOR)")
            })?;
            let heuristic = match letter {
                "A" | "a" => HeuristicChoice::a(),
                "B" | "b" => HeuristicChoice::b(),
                _ => {
                    return Err(format!(
                        "unknown heuristic {letter:?} in rung {s:?} (A or B)"
                    ))
                }
            };
            let flavor = Flavor::parse(flavor).map_err(|e| format!("{e} in rung {s:?}"))?;
            RungKind::Introspective { flavor, heuristic }
        } else {
            Flavor::parse(base)
                .map(RungKind::Direct)
                .map_err(|e| format!("{e} in rung {s:?} (flavor name or introA:FLAVOR)"))?
        };
        Ok(RungSpec { kind, threads })
    }
}

impl fmt::Display for RungSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// An ordered degradation ladder: most precise rung first.
#[derive(Debug, Clone)]
pub struct LadderSpec {
    /// The rungs, tried in order until one completes.
    pub rungs: Vec<RungSpec>,
}

impl LadderSpec {
    /// The canonical ladder for `flavor`:
    /// `flavor → introB:flavor → introA:flavor → cutshortcut → insens`.
    ///
    /// The `cutshortcut` rung sits between the introspective retries and
    /// the insensitive floor: it costs about as much as `insens` (all
    /// contexts are `★`) yet recovers a slice of the precision the
    /// introspective rungs were after, so a run that degrades past both
    /// heuristics still lands above the floor when the pre-analysis pass
    /// finds cuts.
    pub fn default_for(flavor: Flavor) -> Self {
        LadderSpec {
            rungs: vec![
                RungSpec::direct(flavor),
                RungSpec::introspective(flavor, HeuristicChoice::b()),
                RungSpec::introspective(flavor, HeuristicChoice::a()),
                RungSpec::direct(Flavor::CutShortcut),
                RungSpec::direct(Flavor::Insensitive),
            ],
        }
    }

    /// Parses a comma-separated rung list (`2objH,introB:2objH,insens`).
    ///
    /// Two conveniences: `default` names [`LadderSpec::default_for`]
    /// `2objH`, and a lone `introX:FLAVOR` rung expands to the canonical
    /// three-rung ladder `FLAVOR → introX:FLAVOR → insens`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "default" {
            return Ok(LadderSpec::default());
        }
        let mut rungs: Vec<RungSpec> = Vec::new();
        let mut at = 0usize;
        for piece in spec.split(',') {
            let piece_start = at;
            at += piece.len() + 1; // the separating comma
            let trimmed = piece.trim();
            if trimmed.is_empty() {
                continue;
            }
            let lead = piece.len() - piece.trim_start().len();
            let start = piece_start + lead;
            let rung = RungSpec::parse(trimmed).map_err(|e| {
                format!(
                    "rung {} at chars {}..{} of ladder spec: {e}",
                    rungs.len(),
                    start,
                    start + trimmed.len()
                )
            })?;
            rungs.push(rung);
        }
        if rungs.is_empty() {
            return Err("empty ladder".to_owned());
        }
        if rungs.len() == 1 {
            if let RungKind::Introspective { flavor, .. } = rungs[0].kind {
                // The thread override of the lone rung carries over to the
                // expanded ladder.
                let threads = rungs[0].threads;
                let with = |r: RungSpec| match threads {
                    Some(n) => r.with_threads(n),
                    None => r,
                };
                return Ok(LadderSpec {
                    rungs: vec![
                        with(RungSpec::direct(flavor)),
                        rungs[0],
                        with(RungSpec::direct(Flavor::Insensitive)),
                    ],
                });
            }
        }
        Ok(LadderSpec { rungs })
    }

    /// The spec string of the whole ladder.
    pub fn spec(&self) -> String {
        self.rungs
            .iter()
            .map(RungSpec::spec)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl Default for LadderSpec {
    fn default() -> Self {
        LadderSpec::default_for(Flavor::OBJ2H)
    }
}

/// Configuration of one supervised run.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// The degradation ladder (default: `2objH → introB → introA →
    /// cutshortcut → insens`).
    pub ladder: LadderSpec,
    /// The per-rung budget (each rung gets the full budget).
    pub budget: Budget,
    /// Base solver configuration. Its `budget` is replaced by the per-rung
    /// budget, and its `cancel` token (if any) is treated as the *external*
    /// cancellation signal for the whole supervised run.
    pub solver: SolverConfig,
    /// Spawn a watchdog thread enforcing `budget.max_duration` even when an
    /// iteration stalls inside the solver (the in-loop wall-clock check
    /// only runs between worklist steps).
    pub watchdog: bool,
    /// A pre-computed, *completed* context-insensitive first pass, shared
    /// across supervised runs by a resident service (`rudoopd` warms one
    /// at startup). Introspective rungs reuse it instead of recomputing —
    /// but only when this run's budget would have admitted the pass (its
    /// recorded derivation/byte stats fit `budget`), so a warm run stays
    /// byte-identical to a cold one: a budget too small for the insensitive
    /// pass still exhausts exactly where a cold run would. Wall-clock
    /// limits are deliberately not consulted (they are not deterministic).
    pub warm_first_pass: Option<Arc<PointsToResult>>,
    /// A pre-computed summary table, shared across supervised runs by a
    /// resident service (`rudoopd`'s warm summary cache — the first
    /// *context-sensitive* warm artifact). `summaries` rungs inject it
    /// into the solver configuration instead of recomputing the bottom-up
    /// pass; the table is a pure function of the program, so a warm run is
    /// byte-identical to a cold one by construction and needs no budget
    /// admission test.
    pub warm_summaries: Option<Arc<crate::summaries::SummaryTable>>,
}

/// Whether `stats` (of a completed run) fits inside `budget` — the warm
/// first-pass admission test.
fn budget_admits(budget: &Budget, stats: &SolverStats) -> bool {
    budget
        .max_derivations
        .is_none_or(|cap| stats.derivations <= cap)
        && budget
            .max_bytes
            .is_none_or(|cap| stats.bytes_estimate() <= cap)
}

/// Counts of usable facts in a (possibly partial) result — what a rung
/// leaves behind for inspection when it exhausts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvagedFacts {
    /// Variables with a non-empty points-to set.
    pub vars_with_facts: usize,
    /// Total projected var-points-to tuples.
    pub var_pts_tuples: u64,
    /// Invocation sites with at least one resolved target.
    pub resolved_call_sites: usize,
    /// Methods reachable in at least one context.
    pub reachable_methods: usize,
}

impl SalvagedFacts {
    /// Computes the salvage summary of `result`.
    pub fn of(result: &PointsToResult) -> Self {
        SalvagedFacts {
            vars_with_facts: result.var_pts.values().filter(|p| !p.is_empty()).count(),
            var_pts_tuples: result.var_pts.values().map(|p| p.len() as u64).sum(),
            resolved_call_sites: result.call_targets.len(),
            reachable_methods: result.reachable_method_count(),
        }
    }
}

/// The structured record of one rung attempt.
#[derive(Debug, Clone)]
pub struct RungReport {
    /// The rung that was attempted.
    pub rung: RungSpec,
    /// The concrete analysis name (`2objH`, `intro(IntroB)+2objH`, …).
    pub analysis: String,
    /// How the rung ended.
    pub outcome: Outcome,
    /// Why the rung stopped early, when it did.
    pub exhaustion: Option<ExhaustionCause>,
    /// Solver counters of the rung's (final-pass) run.
    pub stats: SolverStats,
    /// Facts available in the rung's result, complete or partial.
    pub salvaged: SalvagedFacts,
    /// Introspective rungs: time spent on metrics + selection.
    pub selection_time: Option<Duration>,
    /// Whether this rung computed the shared insensitive first pass (at
    /// most one rung per supervised run does).
    pub ran_first_pass: bool,
    /// Per-shard derivation counts when the rung ran on the sharded
    /// engine (see [`PointsToResult::shard_work`]).
    pub shard_work: Option<Vec<u64>>,
    /// Per-epoch per-shard derivation deltas when the rung ran on the
    /// sharded engine (see [`PointsToResult::epoch_shard_work`]); feeds
    /// the max-over-epochs imbalance column.
    pub epoch_shard_work: Option<Vec<Vec<u64>>>,
}

/// The overall outcome of a supervised run, and the CLI exit-code
/// contract: 0 = complete, 3 = degraded, 4 = all rungs exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisionVerdict {
    /// The first (most precise) rung completed.
    Complete,
    /// A later rung completed: the result is sound but less precise than
    /// requested.
    Degraded,
    /// No rung completed within its budget.
    Exhausted,
}

impl SupervisionVerdict {
    /// The process exit code for this verdict.
    pub fn exit_code(self) -> u8 {
        match self {
            SupervisionVerdict::Complete => 0,
            SupervisionVerdict::Degraded => 3,
            SupervisionVerdict::Exhausted => 4,
        }
    }
}

impl fmt::Display for SupervisionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SupervisionVerdict::Complete => "complete",
            SupervisionVerdict::Degraded => "degraded",
            SupervisionVerdict::Exhausted => "exhausted",
        })
    }
}

/// Everything a supervised run produces: the final result (if any rung
/// completed), the full attempt history, and the salvage.
#[derive(Debug)]
pub struct SupervisedRun {
    /// One report per attempted rung, in ladder order.
    pub attempts: Vec<RungReport>,
    /// The overall outcome.
    pub verdict: SupervisionVerdict,
    /// Index into `attempts` of the completed rung, if any.
    pub completed_rung: Option<usize>,
    /// The result of the most precise rung that completed.
    pub result: Option<PointsToResult>,
    /// When no rung completed: the partial result with the most facts.
    pub salvaged: Option<PointsToResult>,
    /// How many times the insensitive first pass was computed (0 or 1).
    pub first_pass_runs: usize,
    /// Stats of the shared first pass, when one ran.
    pub first_pass_stats: Option<SolverStats>,
    /// Wall-clock time of the whole supervised run.
    pub total_duration: Duration,
}

impl SupervisedRun {
    /// The analysis name of the final result, if any rung completed.
    pub fn final_analysis(&self) -> Option<&str> {
        self.result.as_ref().map(|r| r.analysis.as_str())
    }

    /// The best result available: complete if possible, salvaged otherwise.
    pub fn best_result(&self) -> Option<&PointsToResult> {
        self.result.as_ref().or(self.salvaged.as_ref())
    }

    /// The process exit code for this run (0/3/4).
    pub fn exit_code(&self) -> u8 {
        self.verdict.exit_code()
    }
}

/// A deadline enforcer: cancels `token` when `deadline` elapses, or when
/// the external token (if any) is cancelled. Disarmed and joined on drop,
/// so a completed rung never leaks a thread or a stale cancellation.
struct Watchdog {
    disarm: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(
        token: CancelToken,
        deadline: Option<Duration>,
        external: Option<CancelToken>,
        tele: crate::telemetry::TelemetryHandle,
    ) -> Self {
        let disarm = Arc::new(AtomicBool::new(false));
        let disarm2 = Arc::clone(&disarm);
        let handle = thread::spawn(move || {
            let start = Instant::now();
            while !disarm2.load(Ordering::Relaxed) {
                if let Some(ext) = &external {
                    if ext.is_cancelled() {
                        if let Some(t) = tele.as_deref() {
                            t.instant("external-cancel", vec![]);
                        }
                        token.cancel();
                        return;
                    }
                }
                let sleep = match deadline {
                    Some(d) => {
                        let remaining = d.saturating_sub(start.elapsed());
                        if remaining.is_zero() {
                            if let Some(t) = tele.as_deref() {
                                t.instant(
                                    "watchdog-fire",
                                    vec![("deadline_ms".to_owned(), d.as_millis().to_string())],
                                );
                            }
                            token.cancel();
                            return;
                        }
                        remaining.min(Duration::from_millis(5))
                    }
                    None => Duration::from_millis(5),
                };
                thread::sleep(sleep);
            }
        });
        Watchdog {
            disarm,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.disarm.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The shared insensitive first pass across introspective rungs.
enum FirstPass {
    NotRun,
    /// Completed; reused by every introspective rung.
    Done(Box<PointsToResult>),
    /// A resident service's warm pass, admitted by this run's budget.
    /// Held by reference and cloned lazily at first introspective use, so
    /// all-direct ladders never pay for the copy.
    Warm(Arc<PointsToResult>),
    /// Itself exhausted under the budget: introspective rungs cannot run.
    Exhausted,
}

/// Runs the degradation ladder on `program` and returns the most precise
/// completed result plus the full attempt history.
///
/// This is the orchestration entry point that serving and benchmarking
/// layers should call instead of [`analyze_flavor`]: it never panics on
/// solver capacity failures, never runs unbounded when a budget is set,
/// and always returns *something* — a complete result, a sound degraded
/// result, or the best salvaged partial result.
pub fn supervise(
    program: &Program,
    hierarchy: &ClassHierarchy,
    cfg: &SupervisorConfig,
) -> SupervisedRun {
    let start = Instant::now();
    let tele = cfg.solver.telemetry.clone();
    let _run_span = crate::telemetry::span_opt(&tele, "supervise");
    let external = cfg.solver.cancel.clone();
    let mut attempts: Vec<RungReport> = Vec::new();
    // A warm insensitive pass (resident service) substitutes for the
    // shared first pass when this run's budget would have admitted it;
    // `first_pass_runs` stays 0, which is how tests observe the reuse.
    let mut first_pass = match &cfg.warm_first_pass {
        Some(warm) if warm.outcome.is_complete() && budget_admits(&cfg.budget, &warm.stats) => {
            if let Some(t) = tele.as_deref() {
                t.instant("warm-first-pass-reused", vec![]);
            }
            FirstPass::Warm(Arc::clone(warm))
        }
        _ => FirstPass::NotRun,
    };
    let mut first_pass_runs = 0usize;
    let mut first_pass_stats: Option<SolverStats> = None;
    let mut salvaged: Option<PointsToResult> = None;
    let mut completed: Option<(usize, PointsToResult)> = None;

    for (i, rung) in cfg.ladder.rungs.iter().enumerate() {
        if external.as_ref().is_some_and(CancelToken::is_cancelled) {
            break;
        }
        // Exactly one rung-span per *attempted* rung: opened after the
        // cancellation check, and it also covers the exhausted-by-proxy
        // `continue` path below (the guard closes on every loop exit).
        let rung_span = crate::telemetry::span_opt(&tele, "rung");
        if let Some(span) = &rung_span {
            span.arg("index", i);
            span.arg("spec", rung.spec());
        }
        // Fresh token per rung: a watchdog firing on rung i must not
        // instantly cancel rung i+1.
        let rung_token = CancelToken::new();
        // A warm summary table (resident service) is injected into
        // `summaries` rungs; `Flavor::prepare_config` then reuses it
        // instead of recomputing the bottom-up pass.
        let rung_flavor = match &rung.kind {
            RungKind::Direct(flavor) => *flavor,
            RungKind::Introspective { flavor, .. } => *flavor,
        };
        let warm_summaries = (rung_flavor == Flavor::Summaries)
            .then(|| cfg.warm_summaries.clone())
            .flatten();
        if warm_summaries.is_some() {
            if let Some(t) = tele.as_deref() {
                t.instant("warm-summaries-reused", vec![]);
            }
        }
        let rung_config = SolverConfig {
            budget: cfg.budget,
            cancel: Some(rung_token.clone()),
            summaries: warm_summaries,
            parallelism: rung
                .threads
                .map(Parallelism::threads)
                .unwrap_or(cfg.solver.parallelism),
            ..cfg.solver.clone()
        };
        let needs_watchdog =
            (cfg.watchdog && cfg.budget.max_duration.is_some()) || external.is_some();
        let _watchdog = needs_watchdog.then(|| {
            Watchdog::arm(
                rung_token.clone(),
                cfg.watchdog.then_some(cfg.budget.max_duration).flatten(),
                external.clone(),
                tele.clone(),
            )
        });

        let mut ran_first_pass = false;
        let (result, selection_time) = match &rung.kind {
            RungKind::Direct(flavor) => (
                analyze_flavor(program, hierarchy, *flavor, &rung_config),
                None,
            ),
            RungKind::Introspective { flavor, heuristic } => {
                if matches!(first_pass, FirstPass::NotRun) {
                    let fp_span = crate::telemetry::span_opt(&tele, "first-pass");
                    let fp = analyze(program, hierarchy, &Insensitive, &rung_config);
                    if let Some(span) = &fp_span {
                        span.arg("outcome", format!("{:?}", fp.outcome));
                    }
                    drop(fp_span);
                    first_pass_runs += 1;
                    ran_first_pass = true;
                    first_pass_stats = Some(fp.stats.clone());
                    first_pass = if fp.outcome.is_complete() {
                        FirstPass::Done(Box::new(fp))
                    } else {
                        // Even the insensitive pass exhausted: keep its
                        // partial facts as salvage and skip the second pass.
                        keep_better_salvage(&mut salvaged, fp);
                        FirstPass::Exhausted
                    };
                }
                match &first_pass {
                    FirstPass::Done(fp) => {
                        let run = analyze_introspective_from(
                            program,
                            hierarchy,
                            *flavor,
                            heuristic.as_dyn(),
                            &rung_config,
                            (**fp).clone(),
                        );
                        (run.result, Some(run.selection_time))
                    }
                    FirstPass::Warm(fp) => {
                        let run = analyze_introspective_from(
                            program,
                            hierarchy,
                            *flavor,
                            heuristic.as_dyn(),
                            &rung_config,
                            (**fp).clone(),
                        );
                        (run.result, Some(run.selection_time))
                    }
                    FirstPass::NotRun | FirstPass::Exhausted => {
                        // Report the rung as exhausted-by-proxy: its
                        // prerequisite could not be computed in budget.
                        attempts.push(RungReport {
                            rung: *rung,
                            analysis: format!(
                                "intro({}+{})",
                                heuristic.letter(),
                                flavor.spec_name()
                            ),
                            outcome: Outcome::BudgetExhausted,
                            exhaustion: salvaged.as_ref().and_then(|s| s.exhaustion),
                            stats: first_pass_stats.clone().unwrap_or_default(),
                            salvaged: salvaged.as_ref().map(SalvagedFacts::of).unwrap_or(
                                SalvagedFacts {
                                    vars_with_facts: 0,
                                    var_pts_tuples: 0,
                                    resolved_call_sites: 0,
                                    reachable_methods: 0,
                                },
                            ),
                            selection_time: None,
                            ran_first_pass,
                            shard_work: None,
                            epoch_shard_work: None,
                        });
                        continue;
                    }
                }
            }
        };

        let report = RungReport {
            rung: *rung,
            analysis: result.analysis.clone(),
            outcome: result.outcome,
            exhaustion: result.exhaustion,
            stats: result.stats.clone(),
            salvaged: SalvagedFacts::of(&result),
            selection_time,
            ran_first_pass,
            shard_work: result.shard_work.clone(),
            epoch_shard_work: result.epoch_shard_work.clone(),
        };
        let is_complete = result.outcome.is_complete();
        attempts.push(report);
        if is_complete {
            completed = Some((i, result));
            break;
        }
        if let Some(t) = tele.as_deref() {
            t.instant(
                "rung-degraded",
                vec![
                    ("rung".to_owned(), rung.spec()),
                    (
                        "cause".to_owned(),
                        result
                            .exhaustion
                            .map(|c| format!("{c:?}"))
                            .unwrap_or_default(),
                    ),
                ],
            );
        }
        if keep_better_salvage(&mut salvaged, result) {
            if let Some(t) = tele.as_deref() {
                t.instant("salvage-kept", vec![("rung".to_owned(), rung.spec())]);
            }
        }
    }

    let (verdict, completed_rung, result) = match completed {
        Some((0, r)) => (SupervisionVerdict::Complete, Some(0), Some(r)),
        Some((i, r)) => (SupervisionVerdict::Degraded, Some(i), Some(r)),
        None => (SupervisionVerdict::Exhausted, None, None),
    };

    SupervisedRun {
        attempts,
        verdict,
        completed_rung,
        result,
        salvaged: if verdict == SupervisionVerdict::Exhausted {
            salvaged
        } else {
            None
        },
        first_pass_runs,
        first_pass_stats,
        total_duration: start.elapsed(),
    }
}

/// Keeps whichever partial result carries more salvageable facts
/// (projected tuples, then resolved call sites as a tiebreak). Returns
/// whether the candidate replaced the previous best.
fn keep_better_salvage(best: &mut Option<PointsToResult>, candidate: PointsToResult) -> bool {
    let better = match best {
        None => true,
        Some(b) => {
            let (bn, cn) = (SalvagedFacts::of(b), SalvagedFacts::of(&candidate));
            (cn.var_pts_tuples, cn.resolved_call_sites)
                > (bn.var_pts_tuples, bn.resolved_call_sites)
        }
    };
    if better {
        *best = Some(candidate);
    }
    better
}
