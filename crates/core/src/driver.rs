//! The two-pass introspective driver (§3 of the paper).
//!
//! Pass 1 runs the context-insensitive analysis (`SITETOREFINE` and
//! `OBJECTTOREFINE` empty). The driver then computes the introspection
//! metrics, applies a heuristic to select refinement sets, and runs pass 2
//! — the *same* analysis code — with an [`Introspective`] policy that
//! refines the selected elements with the precise context abstraction and
//! leaves the rest context-insensitive.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rudoop_ir::{ClassHierarchy, Program};

use crate::cutshortcut::CutSummary;
use crate::heuristics::{RefinementHeuristic, RefinementStats};
use crate::introspection::IntrospectionMetrics;
use crate::policy::{
    CallSiteSensitive, ContextPolicy, CutShortcut, HybridObjectSensitive, Insensitive,
    Introspective, ObjectSensitive, RefinementSet, Summaries, TypeSensitive,
};
use crate::solver::{analyze, PointsToResult, SolverConfig};
use crate::summaries::SummaryTable;

/// A named context-sensitivity flavor, as in the paper's evaluation
/// (e.g. `Flavor::Object { k: 2, heap_k: 1 }` is `2objH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Context-insensitive.
    Insensitive,
    /// k-call-site-sensitive with heap depth.
    CallSite {
        /// Context depth.
        k: usize,
        /// Heap-context depth.
        heap_k: usize,
    },
    /// k-object-sensitive with heap depth.
    Object {
        /// Context depth.
        k: usize,
        /// Heap-context depth.
        heap_k: usize,
    },
    /// k-type-sensitive with heap depth.
    Type {
        /// Context depth.
        k: usize,
        /// Heap-context depth.
        heap_k: usize,
    },
    /// k-hybrid-object-sensitive with heap depth (object-sensitivity for
    /// virtual calls, call-site-sensitivity for static calls).
    Hybrid {
        /// Context depth.
        k: usize,
        /// Heap-context depth.
        heap_k: usize,
    },
    /// The cut-shortcut engine: context-free, but with the flow-graph
    /// cuts and per-call-site shortcut edges of the
    /// [`crate::cutshortcut`] pre-analysis applied inside the solver.
    CutShortcut,
    /// The summary-based compositional engine: context-free, but every
    /// call to a method the bottom-up [`crate::summaries`] pre-analysis
    /// distilled gets its `ret → result` edge replaced by per-site
    /// instantiations of the method's summary atoms.
    Summaries,
}

/// The error of [`Flavor::parse`]: an unrecognized flavor name, with the
/// full menu of valid spellings in its message (shared by the `rudoop`
/// and `rudoop-lint` CLIs and by ladder-spec parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlavorParseError {
    name: String,
}

impl FlavorParseError {
    /// The rejected input.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for FlavorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown flavor {:?}: valid flavors are insens, cutshortcut, \
             summaries, <k>call[H], <k>obj[H], <k>type[H], and S<k>obj[H] \
             (e.g. 2objH, 2typeH, 2callH, S2objH)",
            self.name
        )
    }
}

impl std::error::Error for FlavorParseError {}

impl Flavor {
    /// The paper's `2objH` baseline.
    pub const OBJ2H: Flavor = Flavor::Object { k: 2, heap_k: 1 };
    /// The paper's `2typeH` baseline.
    pub const TYPE2H: Flavor = Flavor::Type { k: 2, heap_k: 1 };
    /// The paper's `2callH` baseline.
    pub const CALL2H: Flavor = Flavor::CallSite { k: 2, heap_k: 1 };
    /// The related-work hybrid `S2objH` configuration.
    pub const HYBRID2H: Flavor = Flavor::Hybrid { k: 2, heap_k: 1 };

    /// Instantiates the policy for `program`.
    pub fn policy(self, program: &Program) -> Box<dyn ContextPolicy> {
        match self {
            Flavor::Insensitive => Box::new(Insensitive),
            Flavor::CallSite { k, heap_k } => Box::new(CallSiteSensitive::new(k, heap_k)),
            Flavor::Object { k, heap_k } => Box::new(ObjectSensitive::new(k, heap_k)),
            Flavor::Type { k, heap_k } => Box::new(TypeSensitive::new(k, heap_k, program)),
            Flavor::Hybrid { k, heap_k } => Box::new(HybridObjectSensitive::new(k, heap_k)),
            Flavor::CutShortcut => Box::new(CutShortcut),
            Flavor::Summaries => Box::new(Summaries),
        }
    }

    /// Prepares the solver configuration for this flavor. For
    /// [`Flavor::CutShortcut`] this runs the cut-shortcut pre-analysis
    /// (under its `cutshortcut-pass` telemetry span) and injects the
    /// summary into [`SolverConfig::cuts`]; for [`Flavor::Summaries`] it
    /// runs the bottom-up summary pre-analysis (under `summaries-pass`)
    /// and injects the table into [`SolverConfig::summaries`] — unless a
    /// warm table is already present (the daemon's warm-summary cache), in
    /// which case the warm table is used as is. Every other flavor clears
    /// both fields so pre-analyses never leak between rungs sharing a base
    /// config.
    pub fn prepare_config(self, program: &Program, config: &SolverConfig) -> SolverConfig {
        let mut config = config.clone();
        config.cuts = match self {
            Flavor::CutShortcut => Some(Arc::new(CutSummary::compute_traced(
                program,
                &config.telemetry,
            ))),
            _ => None,
        };
        config.summaries = match self {
            Flavor::Summaries => match config.summaries.take() {
                Some(warm) => Some(warm),
                None => {
                    let hierarchy = ClassHierarchy::new(program);
                    Some(Arc::new(SummaryTable::compute_traced(
                        program,
                        &hierarchy,
                        config.parallelism.thread_count(),
                        &config.telemetry,
                    )))
                }
            },
            _ => None,
        };
        config
    }

    /// Doop-style name (`insens`, `2objH`, …).
    pub fn name(self, program: &Program) -> String {
        self.policy(program).name()
    }

    /// Parses a Doop-style flavor name: `insens`, `cutshortcut`, `2objH`,
    /// `1call`, `2typeH`, `S2objH`, … — the inverse of
    /// [`Flavor::spec_name`]. The error message enumerates the valid
    /// spellings, so every consumer (CLIs, ladder specs) reports the same
    /// actionable diagnostic.
    pub fn parse(name: &str) -> Result<Flavor, FlavorParseError> {
        Flavor::parse_inner(name).ok_or_else(|| FlavorParseError {
            name: name.to_owned(),
        })
    }

    fn parse_inner(name: &str) -> Option<Flavor> {
        if name == "insens" || name == "insensitive" {
            return Some(Flavor::Insensitive);
        }
        if name == "cutshortcut" {
            return Some(Flavor::CutShortcut);
        }
        if name == "summaries" {
            return Some(Flavor::Summaries);
        }
        let (hybrid, rest) = match name.strip_prefix('S') {
            Some(r) => (true, r),
            None => (false, name),
        };
        let digits_end = rest.find(|c: char| !c.is_ascii_digit())?;
        if digits_end == 0 {
            return None;
        }
        let k: usize = rest[..digits_end].parse().ok()?;
        if k == 0 {
            return None;
        }
        let rest = &rest[digits_end..];
        let (kind, rest) = ["call", "obj", "type"]
            .iter()
            .find_map(|p| rest.strip_prefix(p).map(|r| (*p, r)))?;
        let heap_k = match rest {
            "" => 0,
            "H" => 1,
            _ => return None,
        };
        match (hybrid, kind) {
            (true, "obj") => Some(Flavor::Hybrid { k, heap_k }),
            (false, "call") => Some(Flavor::CallSite { k, heap_k }),
            (false, "obj") => Some(Flavor::Object { k, heap_k }),
            (false, "type") => Some(Flavor::Type { k, heap_k }),
            _ => None,
        }
    }

    /// The program-independent spec name (`2objH`, `insens`, …), accepted
    /// back by [`Flavor::parse`].
    pub fn spec_name(self) -> String {
        fn h(heap_k: usize) -> &'static str {
            if heap_k > 0 {
                "H"
            } else {
                ""
            }
        }
        match self {
            Flavor::Insensitive => "insens".to_owned(),
            Flavor::CallSite { k, heap_k } => format!("{k}call{}", h(heap_k)),
            Flavor::Object { k, heap_k } => format!("{k}obj{}", h(heap_k)),
            Flavor::Type { k, heap_k } => format!("{k}type{}", h(heap_k)),
            Flavor::Hybrid { k, heap_k } => format!("S{k}obj{}", h(heap_k)),
            Flavor::CutShortcut => "cutshortcut".to_owned(),
            Flavor::Summaries => "summaries".to_owned(),
        }
    }
}

/// Runs a single (non-introspective) analysis of `program` under `flavor`.
pub fn analyze_flavor(
    program: &Program,
    hierarchy: &ClassHierarchy,
    flavor: Flavor,
    config: &SolverConfig,
) -> PointsToResult {
    let policy = flavor.policy(program);
    let config = flavor.prepare_config(program, config);
    analyze(program, hierarchy, policy.as_ref(), &config)
}

/// Everything produced by a two-pass introspective run.
#[derive(Debug)]
pub struct IntrospectiveRun {
    /// The first, context-insensitive pass.
    pub first_pass: PointsToResult,
    /// The metrics computed from the first pass.
    pub metrics: IntrospectionMetrics,
    /// The selected refinement (complement form).
    pub refinement: RefinementSet,
    /// Figure-4-style statistics about the selection.
    pub refinement_stats: RefinementStats,
    /// Time spent computing metrics and selecting refinement sets (the
    /// paper's "other timing overheads").
    pub selection_time: Duration,
    /// The second, selectively-refined pass.
    pub result: PointsToResult,
}

/// Runs the full two-pass introspective analysis: insensitive pass,
/// heuristic selection, refined pass.
///
/// `flavor` is the *refined* context; the default context of unrefined
/// elements is insensitive, as in the paper's experimental setting. The
/// budget in `config` applies to each pass separately.
pub fn analyze_introspective(
    program: &Program,
    hierarchy: &ClassHierarchy,
    flavor: Flavor,
    heuristic: &dyn RefinementHeuristic,
    config: &SolverConfig,
) -> IntrospectiveRun {
    let fp_span = crate::telemetry::span_opt(&config.telemetry, "first-pass");
    let first_pass = analyze(program, hierarchy, &Insensitive, config);
    drop(fp_span);
    analyze_introspective_from(program, hierarchy, flavor, heuristic, config, first_pass)
}

/// Like [`analyze_introspective`] but reusing an existing first-pass result
/// (the paper's §4 note: the insensitive pass can be shared across
/// introspective variants).
pub fn analyze_introspective_from(
    program: &Program,
    hierarchy: &ClassHierarchy,
    flavor: Flavor,
    heuristic: &dyn RefinementHeuristic,
    config: &SolverConfig,
    first_pass: PointsToResult,
) -> IntrospectiveRun {
    let select_start = Instant::now();
    let sel_span = crate::telemetry::span_opt(&config.telemetry, "introspection");
    let metrics = IntrospectionMetrics::compute(program, &first_pass);
    let refinement = heuristic.select(program, &metrics, &first_pass);
    let refinement_stats = RefinementStats::compute(program, &first_pass, &refinement);
    if let Some(span) = &sel_span {
        span.arg("heuristic", heuristic.label());
    }
    drop(sel_span);
    if let Some(tele) = config.telemetry.as_deref() {
        // Selection statistics are pure functions of the first pass, so
        // they belong in the deterministic counter stream.
        tele.counter(
            "introspection.call_sites_not_refined",
            refinement_stats.call_sites_not_refined as u64,
        );
        tele.counter(
            "introspection.call_sites_total",
            refinement_stats.call_sites_total as u64,
        );
        tele.counter(
            "introspection.objects_not_refined",
            refinement_stats.objects_not_refined as u64,
        );
        tele.counter(
            "introspection.objects_total",
            refinement_stats.objects_total as u64,
        );
    }
    let selection_time = select_start.elapsed();

    let result = match flavor {
        Flavor::Insensitive => analyze(program, hierarchy, &Insensitive, config),
        // Cut-shortcut precision is not per-element, so there is nothing
        // for the refinement sets to select: like the insensitive arm, the
        // selection is computed (for its stats) but does not steer the run.
        Flavor::CutShortcut => {
            let config = Flavor::CutShortcut.prepare_config(program, config);
            analyze(program, hierarchy, &CutShortcut, &config)
        }
        // Summary precision is likewise not per-element: the distilled
        // table applies at every call site, so the refinement sets are
        // computed (for their stats) but do not steer the run.
        Flavor::Summaries => {
            let config = Flavor::Summaries.prepare_config(program, config);
            analyze(program, hierarchy, &Summaries, &config)
        }
        Flavor::CallSite { k, heap_k } => {
            let policy = Introspective::new(
                Insensitive,
                CallSiteSensitive::new(k, heap_k),
                refinement.clone(),
                heuristic.label(),
            );
            analyze(program, hierarchy, &policy, config)
        }
        Flavor::Object { k, heap_k } => {
            let policy = Introspective::new(
                Insensitive,
                ObjectSensitive::new(k, heap_k),
                refinement.clone(),
                heuristic.label(),
            );
            analyze(program, hierarchy, &policy, config)
        }
        Flavor::Type { k, heap_k } => {
            let policy = Introspective::new(
                Insensitive,
                TypeSensitive::new(k, heap_k, program),
                refinement.clone(),
                heuristic.label(),
            );
            analyze(program, hierarchy, &policy, config)
        }
        Flavor::Hybrid { k, heap_k } => {
            let policy = Introspective::new(
                Insensitive,
                HybridObjectSensitive::new(k, heap_k),
                refinement.clone(),
                heuristic.label(),
            );
            analyze(program, hierarchy, &policy, config)
        }
    };

    IntrospectiveRun {
        first_pass,
        metrics,
        refinement,
        refinement_stats,
        selection_time,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{HeuristicA, HeuristicB};
    use rudoop_ir::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let main = b.method(obj, "main", &[], true);
        let a = b.var(main, "a");
        let c = b.var(main, "c");
        let r1 = b.var(main, "r1");
        let r2 = b.var(main, "r2");
        b.alloc(main, a, obj);
        b.alloc(main, c, obj);
        b.scall(main, Some(r1), id_m, &[a]);
        b.scall(main, Some(r2), id_m, &[c]);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn flavor_names_match_doop_convention() {
        let p = sample_program();
        assert_eq!(Flavor::Insensitive.name(&p), "insens");
        assert_eq!(Flavor::OBJ2H.name(&p), "2objH");
        assert_eq!(Flavor::TYPE2H.name(&p), "2typeH");
        assert_eq!(Flavor::CALL2H.name(&p), "2callH");
        assert_eq!(Flavor::HYBRID2H.name(&p), "S2objH");
    }

    #[test]
    fn hybrid_flavor_runs_end_to_end() {
        let p = sample_program();
        let h = ClassHierarchy::new(&p);
        let cfg = SolverConfig::default();
        let r = analyze_flavor(&p, &h, Flavor::HYBRID2H, &cfg);
        assert!(r.outcome.is_complete());
        // Static identity calls are distinguished by call site under the
        // hybrid policy, unlike plain object-sensitivity.
        let obj = analyze_flavor(&p, &h, Flavor::OBJ2H, &cfg);
        let hybrid_total: usize = p.vars.ids().map(|v| r.points_to(v).len()).sum();
        let obj_total: usize = p.vars.ids().map(|v| obj.points_to(v).len()).sum();
        assert!(hybrid_total < obj_total, "{hybrid_total} vs {obj_total}");
    }

    #[test]
    fn introspective_with_everything_refined_matches_full_analysis() {
        // With the paper's default constants, a tiny program has no
        // excluded elements, so the introspective run must be exactly as
        // precise as the full context-sensitive one.
        let p = sample_program();
        let h = ClassHierarchy::new(&p);
        let cfg = SolverConfig::default();
        let full = analyze_flavor(&p, &h, Flavor::CALL2H, &cfg);
        let run = analyze_introspective(&p, &h, Flavor::CALL2H, &HeuristicA::default(), &cfg);
        assert!(run.refinement.no_refine_objects.is_empty());
        for (v, pts) in full.var_pts.iter() {
            assert_eq!(pts, &run.result.var_pts[v], "var {v:?} differs");
        }
    }

    #[test]
    fn introspective_with_everything_excluded_matches_insensitive() {
        let p = sample_program();
        let h = ClassHierarchy::new(&p);
        let cfg = SolverConfig::default();
        // Cutoffs of zero exclude every element with any points-to volume.
        let zero = HeuristicB { p: 0, q: 0 };
        let run = analyze_introspective(&p, &h, Flavor::CALL2H, &zero, &cfg);
        let insens = analyze_flavor(&p, &h, Flavor::Insensitive, &cfg);
        // Heuristic B's q=0 only excludes objects with a nonzero cost
        // product; methods with volume > 0 are all excluded, so contexts
        // collapse for calls.
        for (v, pts) in insens.var_pts.iter() {
            assert_eq!(pts, &run.result.var_pts[v], "var {v:?} differs");
        }
        assert!(run.result.stats.contexts <= 2);
    }

    #[test]
    fn run_reports_selection_statistics() {
        let p = sample_program();
        let h = ClassHierarchy::new(&p);
        let run = analyze_introspective(
            &p,
            &h,
            Flavor::OBJ2H,
            &HeuristicA::default(),
            &SolverConfig::default(),
        );
        assert_eq!(run.refinement_stats.objects_total, 2);
        assert!(run.first_pass.outcome.is_complete());
        assert!(run.result.outcome.is_complete());
        assert!(run.result.analysis.contains("IntroA"));
    }

    #[test]
    fn cutshortcut_flavor_parses_and_round_trips() {
        assert_eq!(Flavor::parse("cutshortcut").unwrap(), Flavor::CutShortcut);
        assert_eq!(Flavor::CutShortcut.spec_name(), "cutshortcut");
        assert_eq!(
            Flavor::parse(&Flavor::CutShortcut.spec_name()).unwrap(),
            Flavor::CutShortcut
        );
    }

    #[test]
    fn summaries_flavor_parses_and_round_trips() {
        assert_eq!(Flavor::parse("summaries").unwrap(), Flavor::Summaries);
        assert_eq!(Flavor::Summaries.spec_name(), "summaries");
        assert_eq!(
            Flavor::parse(&Flavor::Summaries.spec_name()).unwrap(),
            Flavor::Summaries
        );
    }

    #[test]
    fn flavor_parse_error_enumerates_valid_names() {
        // The exact wording is shared by `rudoop`, `rudoop-lint`,
        // `rudoopd`, and ladder-spec parsing — a typo'd `--analysis`
        // should teach the valid grammar, not just reject.
        let err = Flavor::parse("3foo").unwrap_err();
        assert_eq!(err.name(), "3foo");
        assert_eq!(
            err.to_string(),
            "unknown flavor \"3foo\": valid flavors are insens, cutshortcut, \
             summaries, <k>call[H], <k>obj[H], <k>type[H], and S<k>obj[H] \
             (e.g. 2objH, 2typeH, 2callH, S2objH)"
        );
    }
}
