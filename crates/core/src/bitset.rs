//! A dense bitset indexed by IR ids, used to store refinement sets in
//! complement form (the paper's footnote 4: the *not*-refined sets are tiny,
//! but membership is queried on every context construction, so it must be
//! `O(1)` and cache-friendly).

use std::marker::PhantomData;

use rudoop_ir::Idx;

/// A fixed-capacity bitset over an id domain `I`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdBitSet<I: Idx> {
    words: Vec<u64>,
    len: usize,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx> IdBitSet<I> {
    /// An empty set over a domain of `len` ids.
    pub fn new(len: usize) -> Self {
        IdBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
            _marker: PhantomData,
        }
    }

    /// Domain size this set was created for.
    pub fn domain_size(&self) -> usize {
        self.len
    }

    /// Inserts `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the domain.
    pub fn insert(&mut self, id: I) -> bool {
        let i = id.index();
        assert!(i < self.len, "id {i} out of bitset domain {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Whether `id` is in the set. Ids outside the domain are absent.
    #[inline]
    pub fn contains(&self, id: I) -> bool {
        let i = id.index();
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of ids in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = I> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(I::from_usize(wi * 64 + b))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::AllocId;

    #[test]
    fn insert_and_contains() {
        let mut s: IdBitSet<AllocId> = IdBitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(AllocId(0)));
        assert!(s.insert(AllocId(64)));
        assert!(s.insert(AllocId(129)));
        assert!(!s.insert(AllocId(64)));
        assert!(s.contains(AllocId(129)));
        assert!(!s.contains(AllocId(1)));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_is_ordered() {
        let mut s: IdBitSet<AllocId> = IdBitSet::new(200);
        for i in [5u32, 63, 64, 199, 0] {
            s.insert(AllocId(i));
        }
        let got: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn out_of_domain_contains_is_false() {
        let s: IdBitSet<AllocId> = IdBitSet::new(10);
        assert!(!s.contains(AllocId(10_000)));
    }

    #[test]
    #[should_panic(expected = "out of bitset domain")]
    fn out_of_domain_insert_panics() {
        let mut s: IdBitSet<AllocId> = IdBitSet::new(10);
        s.insert(AllocId(10));
    }
}
