//! The summary-based compositional engine: bottom-up SCC summaries.
//!
//! PAPERS.md's *Hybrid Inlining* computes, for each method, a distilled
//! transfer function once — bottom-up over the call-graph SCC DAG — and
//! instantiates it at every call site, instead of re-analyzing the body
//! under c cloned contexts the way 2objH does. This module is that
//! pre-analysis for the `summaries` [`crate::driver::Flavor`]: it distills
//! each method's *return behavior* into a small atom language and the
//! solver replaces the conflating `ret → result` interprocedural edge with
//! per-call-site instantiations of the atoms.
//!
//! The summary language ([`SummaryAtom`]) says where the values a method
//! returns come from:
//!
//! - `ParamToRet(m, i)` — from the `i`-th formal parameter of method `m`
//!   (instantiated against the *formal*, i.e. the union over call sites —
//!   see below; `m` is the summarized method itself or, for atoms
//!   inherited through composition, a transitive callee),
//! - `ThisFieldToRet(f)` — from field `f` of the call site's receiver,
//! - `AllocToRet(h)` — from allocation site `h` inside the callee (or a
//!   transitive callee),
//! - `GlobalToRet(g)` — from static field `g`.
//!
//! A method is **distilled** when *every* source of its formal return's
//! backward copy slice is atom-expressible — including results of calls to
//! other distilled methods, whose atoms compose transitively: an inner
//! `ParamToRet(m, j)` is inherited *verbatim*, still pointing at the inner
//! formal. Methods inside one SCC are iterated to a local fixpoint with
//! optimistic initial assumptions (distilled, no atoms): atoms only grow
//! and distilled only flips to fallback, so the iteration terminates at
//! the least fixpoint — exactly the flows realizable in the insensitive
//! closure. Everything else — cast edges, `this` escaping to the return,
//! virtual callees in the slice, non-distilled callees — falls back to the
//! ordinary shared-formal `ret → result` edge, the *hybrid* split of
//! Hybrid Inlining: summaries where they are exact, inlining-style
//! conflated expansion where they are not.
//!
//! Soundness and the chain position (pinned pointwise by the differential
//! suite): every instantiated atom flow is derivable in the insensitive
//! closure, so `pts(summaries) ⊆ pts(insens)`. For the other direction,
//! `pts(2objH) ⊆ pts(summaries)`, the atoms cover every source of the
//! return slice and each atom instantiates *no finer than* `2objH`:
//! `ParamToRet` reads the shared formal (a per-site actual-argument edge
//! would out-precision `2objH` exactly where it conflates call sites —
//! static calls, shared receiver objects). Composition inherits inner
//! `ParamToRet` atoms verbatim for the same reason transitively: `2objH`
//! can conflate the *inner* callee's contexts too, delivering other
//! callers' arguments through an intermediate call, so the composed atom
//! must read the inner formal's full union. `ThisFieldToRet` filters
//! the field read through this site's receiver objects, which `2objH`'s
//! receiver-keyed contexts also separate. The engine's precision over
//! insensitivity therefore comes from the receiver-filtered field atoms —
//! the getter-shortcut idea generalized to any distillable mix of
//! parameter, field, allocation and global sources, composed through
//! statically-bound callees and SCC fixpoints.
//!
//! [`SummaryTable::compute_parallel`] computes the same table over the SCC
//! DAG's antichain levels concurrently (components within a level never
//! call each other) and is byte-identical to the sequential pass.

use std::collections::BTreeSet;

use rudoop_ir::{
    AllocId, ClassHierarchy, FieldId, FlowGraph, GlobalId, IdxVec, Instruction, InvokeKind,
    MethodId, Program, SccDag, VarId,
};

use crate::hash::FxHashSet;
use crate::telemetry::TelemetryHandle;

/// One distilled source of a method's return values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SummaryAtom {
    /// The `i`-th formal parameter of `m` flows to the result
    /// (instantiated against the shared formal, the union over all call
    /// sites). `m` is the summarized method itself for a direct
    /// `return param` slice and a transitive callee for atoms inherited
    /// through composition — the composed atom keeps pointing at the
    /// *inner* formal because that is the conflation point every
    /// context-sensitive flavor can reach (see the module docs).
    ParamToRet(MethodId, usize),
    /// Field `f` of the call site's receiver objects flows to the result.
    ThisFieldToRet(FieldId),
    /// Objects of allocation site `h` flow to the result.
    AllocToRet(AllocId),
    /// The static field `g`'s objects flow to the result.
    GlobalToRet(GlobalId),
}

/// The distilled transfer behavior of one method.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodSummary {
    /// Whether the return slice was fully distilled. When `false`, call
    /// sites keep the ordinary `ret → result` edge (hybrid fallback).
    pub distilled: bool,
    /// The atoms, sorted and deduplicated. Empty for a distilled method
    /// means *nothing* flows to its return.
    pub atoms: Vec<SummaryAtom>,
}

/// Size counters of a [`SummaryTable`] — the pass's stats block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Methods in the program.
    pub methods: usize,
    /// Methods with a formal return variable.
    pub methods_with_ret: usize,
    /// Returning methods that were distilled.
    pub distilled: usize,
    /// Returning methods on the hybrid fallback path.
    pub fallback: usize,
    /// `ParamToRet` atoms across all distilled methods.
    pub param_atoms: usize,
    /// `ThisFieldToRet` atoms.
    pub field_atoms: usize,
    /// `AllocToRet` atoms.
    pub alloc_atoms: usize,
    /// `GlobalToRet` atoms.
    pub global_atoms: usize,
    /// Strongly connected components of the static call graph.
    pub sccs: usize,
    /// Components containing a call cycle.
    pub cyclic_sccs: usize,
    /// Antichain levels of the condensation.
    pub levels: usize,
    /// Largest number of fixpoint rounds any component needed.
    pub max_rounds: usize,
}

impl SummaryStats {
    /// Total atoms across all distilled methods.
    pub fn atoms(&self) -> usize {
        self.param_atoms + self.field_atoms + self.alloc_atoms + self.global_atoms
    }
}

/// The output of the summary pre-analysis: per-method distilled summaries
/// plus pass statistics. A pure function of the program — sequential and
/// antichain-parallel computation are byte-identical, which the engine
/// tests pin via [`SummaryTable::render`].
#[derive(Debug, Clone, Default)]
pub struct SummaryTable {
    summaries: IdxVec<MethodId, MethodSummary>,
    /// Pass statistics.
    pub stats: SummaryStats,
}

/// One distilled component: `(component id, its methods' summaries, rounds)`.
type SolvedComponent = (u32, Vec<(MethodId, MethodSummary)>, usize);

impl SummaryTable {
    /// Runs the bottom-up pass over `program`, one SCC at a time in
    /// reverse-topological order.
    pub fn compute(program: &Program, hierarchy: &ClassHierarchy) -> SummaryTable {
        SummaryTable::compute_with_threads(program, hierarchy, 1)
    }

    /// Like [`SummaryTable::compute`], but distills the components of each
    /// antichain level concurrently on up to `threads` workers. Components
    /// within a level never call each other, every component only reads
    /// summaries from strictly earlier levels, and results are merged in
    /// component order — so the table is byte-identical to the sequential
    /// pass regardless of thread count.
    pub fn compute_parallel(
        program: &Program,
        hierarchy: &ClassHierarchy,
        threads: usize,
    ) -> SummaryTable {
        SummaryTable::compute_with_threads(program, hierarchy, threads.max(1))
    }

    fn compute_with_threads(
        program: &Program,
        hierarchy: &ClassHierarchy,
        threads: usize,
    ) -> SummaryTable {
        let flow = FlowGraph::build(program);
        let dag = SccDag::build(program, hierarchy);
        let mut stats = SummaryStats {
            methods: program.methods.len(),
            sccs: dag.len(),
            cyclic_sccs: dag.cyclic.iter().filter(|&&c| c).count(),
            levels: dag.levels.len(),
            ..SummaryStats::default()
        };
        let mut summaries: IdxVec<MethodId, MethodSummary> = (0..program.methods.len())
            .map(|_| MethodSummary::default())
            .collect();

        for level in &dag.levels {
            if threads <= 1 || level.len() <= 1 {
                for &comp in level {
                    let (solved, rounds) =
                        distill_component(program, &flow, &dag, comp, &summaries);
                    stats.max_rounds = stats.max_rounds.max(rounds);
                    for (m, s) in solved {
                        summaries[m] = s;
                    }
                }
            } else {
                // Deterministic fan-out: chunk the level's components round
                // robin, join in thread order, merge in component order.
                let workers = threads.min(level.len());
                let mut results: Vec<SolvedComponent> = std::thread::scope(|scope| {
                    let summaries = &summaries;
                    let flow = &flow;
                    let dag = &dag;
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let mine: Vec<u32> =
                                level.iter().copied().skip(w).step_by(workers).collect();
                            scope.spawn(move || {
                                mine.into_iter()
                                    .map(|comp| {
                                        let (solved, rounds) =
                                            distill_component(program, flow, dag, comp, summaries);
                                        (comp, solved, rounds)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("summary worker panicked"))
                        .collect()
                });
                results.sort_by_key(|&(comp, _, _)| comp);
                for (_, solved, rounds) in results {
                    stats.max_rounds = stats.max_rounds.max(rounds);
                    for (m, s) in solved {
                        summaries[m] = s;
                    }
                }
            }
        }

        for (mid, s) in summaries.iter() {
            if program.methods[mid].ret.is_none() {
                continue;
            }
            stats.methods_with_ret += 1;
            if s.distilled {
                stats.distilled += 1;
                for atom in &s.atoms {
                    match atom {
                        SummaryAtom::ParamToRet(..) => stats.param_atoms += 1,
                        SummaryAtom::ThisFieldToRet(_) => stats.field_atoms += 1,
                        SummaryAtom::AllocToRet(_) => stats.alloc_atoms += 1,
                        SummaryAtom::GlobalToRet(_) => stats.global_atoms += 1,
                    }
                }
            } else {
                stats.fallback += 1;
            }
        }
        SummaryTable { summaries, stats }
    }

    /// Like [`SummaryTable::compute_parallel`], wrapped in a
    /// `summaries-pass` telemetry span with the pass's deterministic
    /// counters (all pure functions of the program — and the table is
    /// thread-count-invariant — so the counter stream stays reproducible
    /// at any `threads`).
    pub fn compute_traced(
        program: &Program,
        hierarchy: &ClassHierarchy,
        threads: usize,
        telemetry: &TelemetryHandle,
    ) -> SummaryTable {
        let span = crate::telemetry::span_opt(telemetry, "summaries-pass");
        let table = SummaryTable::compute_parallel(program, hierarchy, threads);
        if let Some(span) = &span {
            span.arg("distilled", table.stats.distilled as u64);
            span.arg("atoms", table.stats.atoms() as u64);
        }
        if let Some(tele) = telemetry.as_deref() {
            let s = &table.stats;
            tele.counter("summaries.distilled", s.distilled as u64);
            tele.counter("summaries.fallback", s.fallback as u64);
            tele.counter("summaries.param_atoms", s.param_atoms as u64);
            tele.counter("summaries.field_atoms", s.field_atoms as u64);
            tele.counter("summaries.alloc_atoms", s.alloc_atoms as u64);
            tele.counter("summaries.global_atoms", s.global_atoms as u64);
            tele.counter("summaries.sccs", s.sccs as u64);
            tele.counter("summaries.cyclic_sccs", s.cyclic_sccs as u64);
        }
        table
    }

    /// The atoms of `method` when it is distilled; `None` means the call
    /// site must keep the ordinary `ret → result` edge.
    #[inline]
    pub fn distilled_atoms(&self, method: MethodId) -> Option<&[SummaryAtom]> {
        self.summaries
            .get(method)
            .filter(|s| s.distilled)
            .map(|s| s.atoms.as_slice())
    }

    /// The full summary of `method`.
    pub fn summary(&self, method: MethodId) -> Option<&MethodSummary> {
        self.summaries.get(method)
    }

    /// Whether no returning method was distilled.
    pub fn is_empty(&self) -> bool {
        self.stats.distilled == 0
    }

    /// A deterministic textual dump of every distilled summary — the
    /// golden-test and `--dump-summaries` format. One line per returning
    /// method, in method-table order, followed by a stats trailer.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (mid, s) in self.summaries.iter() {
            if program.methods[mid].ret.is_none() {
                continue;
            }
            if !s.distilled {
                out.push_str(&format!(
                    "fallback {}: ret -> result kept\n",
                    program.method_display(mid)
                ));
                continue;
            }
            let atoms: Vec<String> = s
                .atoms
                .iter()
                .map(|a| match a {
                    SummaryAtom::ParamToRet(m, i) if *m == mid => format!("arg{i}"),
                    SummaryAtom::ParamToRet(m, i) => {
                        format!("arg{i} of {}", program.method_display(*m))
                    }
                    SummaryAtom::ThisFieldToRet(f) => {
                        format!("this.{}", program.fields[*f].name)
                    }
                    SummaryAtom::AllocToRet(h) => {
                        format!("new {}", program.classes[program.allocs[*h].class].name)
                    }
                    SummaryAtom::GlobalToRet(g) => {
                        format!("global {}", program.globals[*g].name)
                    }
                })
                .collect();
            out.push_str(&format!(
                "summary {}: ret = {{{}}}\n",
                program.method_display(mid),
                atoms.join(", ")
            ));
        }
        let s = &self.stats;
        out.push_str(&format!(
            "stats: methods={} with_ret={} distilled={} fallback={} atoms={} \
             (param={} field={} alloc={} global={}) sccs={} cyclic={} levels={} max_rounds={}\n",
            s.methods,
            s.methods_with_ret,
            s.distilled,
            s.fallback,
            s.atoms(),
            s.param_atoms,
            s.field_atoms,
            s.alloc_atoms,
            s.global_atoms,
            s.sccs,
            s.cyclic_sccs,
            s.levels,
            s.max_rounds,
        ));
        out
    }
}

/// Distills every member of component `comp` to a local fixpoint, reading
/// finalized summaries of earlier components from `table`. Returns the
/// solved members plus the number of fixpoint rounds used.
fn distill_component(
    program: &Program,
    flow: &FlowGraph,
    dag: &SccDag,
    comp: u32,
    table: &IdxVec<MethodId, MethodSummary>,
) -> (Vec<(MethodId, MethodSummary)>, usize) {
    let members = &dag.members[comp as usize];
    // Optimistic initial assumption: every member distilled, no atoms.
    // Atoms only grow and `distilled` only flips off, so this converges on
    // the least fixpoint (see the module docs).
    let mut assume: Vec<(MethodId, MethodSummary)> = members
        .iter()
        .map(|&m| {
            (
                m,
                MethodSummary {
                    distilled: true,
                    atoms: Vec::new(),
                },
            )
        })
        .collect();
    let lookup = |assume: &[(MethodId, MethodSummary)], m: MethodId| -> Option<Vec<SummaryAtom>> {
        if dag.component[m] == comp {
            let s = &assume.iter().find(|&&(am, _)| am == m).expect("member").1;
            s.distilled.then(|| s.atoms.clone())
        } else {
            let s = &table[m];
            s.distilled.then(|| s.atoms.clone())
        }
    };
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for i in 0..assume.len() {
            let (mid, ref current) = assume[i];
            if !current.distilled {
                continue;
            }
            let next = match distill_method(program, flow, mid, |m| lookup(&assume, m)) {
                Some(atoms) => MethodSummary {
                    distilled: true,
                    atoms,
                },
                None => MethodSummary::default(),
            };
            if next != assume[i].1 {
                assume[i].1 = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (assume, rounds)
}

/// Distills one method against the current summary assumptions: the
/// backward copy slice of the formal return, with every source mapped to
/// an atom. Returns `None` when any source is not atom-expressible.
fn distill_method(
    program: &Program,
    flow: &FlowGraph,
    mid: MethodId,
    lookup: impl Fn(MethodId) -> Option<Vec<SummaryAtom>>,
) -> Option<Vec<SummaryAtom>> {
    let method = &program.methods[mid];
    let Some(ret) = method.ret else {
        // Nothing ever flows to callers; trivially distilled.
        return Some(Vec::new());
    };
    let mut atoms: BTreeSet<SummaryAtom> = BTreeSet::new();
    let mut seen: FxHashSet<VarId> = FxHashSet::default();
    let mut work: Vec<VarId> = vec![ret];
    seen.insert(ret);
    while let Some(v) = work.pop() {
        // `this` escaping to the return is not atom-expressible (the atom
        // language has no receiver-identity flow).
        if method.this == Some(v) {
            return None;
        }
        if let Some(i) = method.params.iter().position(|&p| p == v) {
            atoms.insert(SummaryAtom::ParamToRet(mid, i));
            // Fall through: a reassigned parameter also has direct defs.
        }
        for instr in &method.body {
            match *instr {
                Instruction::Alloc { var, alloc } if var == v => {
                    atoms.insert(SummaryAtom::AllocToRet(alloc));
                }
                Instruction::Move { to, from } if to == v && seen.insert(from) => {
                    work.push(from);
                }
                // A cast in the slice is not distilled: under assign-cast
                // filtering the flow is type-dependent, which the atom
                // language cannot express.
                Instruction::Cast { to, .. } if to == v => return None,
                Instruction::Load { to, base, field } if to == v => {
                    if method.this == Some(base) && flow.defs[base] == 0 {
                        atoms.insert(SummaryAtom::ThisFieldToRet(field));
                    } else {
                        return None;
                    }
                }
                Instruction::LoadGlobal { to, global } if to == v => {
                    atoms.insert(SummaryAtom::GlobalToRet(global));
                }
                Instruction::Return { var } if ret == v && seen.insert(var) => {
                    work.push(var);
                }
                Instruction::Call { invoke } => {
                    let inv = &program.invokes[invoke];
                    if inv.result != Some(v) {
                        continue;
                    }
                    // Compose through the callee's atoms. Only exactly
                    // resolved targets compose: a CHA-approximated virtual
                    // target set could inject flows the insensitive
                    // closure never derives, breaking ⊆ insens.
                    let target = match inv.kind {
                        InvokeKind::Special { target, .. } | InvokeKind::Static { target } => {
                            target
                        }
                        InvokeKind::Virtual { .. } => return None,
                    };
                    let inner = lookup(target)?;
                    for atom in inner {
                        match atom {
                            SummaryAtom::ParamToRet(m, j) => {
                                // Inherit verbatim: the composed atom keeps
                                // reading the *inner* formal. Continuing the
                                // slice from this site's actual instead
                                // would out-precision 2objH, which can
                                // conflate the inner callee's contexts and
                                // funnel *other* callers' arguments through
                                // this call — flows a per-site slice never
                                // covers.
                                atoms.insert(SummaryAtom::ParamToRet(m, j));
                            }
                            SummaryAtom::ThisFieldToRet(f) => {
                                // Expressible only when the inner receiver
                                // is our own (never reassigned) `this`.
                                let base = match inv.kind {
                                    InvokeKind::Special { base, .. } => Some(base),
                                    _ => None,
                                }?;
                                if method.this == Some(base) && flow.defs[base] == 0 {
                                    atoms.insert(SummaryAtom::ThisFieldToRet(f));
                                } else {
                                    return None;
                                }
                            }
                            SummaryAtom::AllocToRet(h) => {
                                atoms.insert(SummaryAtom::AllocToRet(h));
                            }
                            SummaryAtom::GlobalToRet(g) => {
                                atoms.insert(SummaryAtom::GlobalToRet(g));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Some(atoms.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::ProgramBuilder;

    /// id(x) { return x }, mk() { return new Box }, get() { return this.val },
    /// gload() { return G }, chain(x) { return id(x) }.
    fn fixture() -> (Program, [MethodId; 5]) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let g = b.global(obj, "G");
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let mk_m = b.method(obj, "mk", &[], true);
        let mv = b.var(mk_m, "t");
        b.alloc(mk_m, mv, box_c);
        b.ret(mk_m, mv);
        let get_m = b.method(box_c, "get", &[], false);
        let get_this = b.this(get_m);
        let gr = b.var(get_m, "r");
        b.load(get_m, gr, get_this, f);
        b.ret(get_m, gr);
        let gl_m = b.method(obj, "gload", &[], true);
        let gv = b.var(gl_m, "t");
        b.load_global(gl_m, gv, g);
        b.ret(gl_m, gv);
        let chain_m = b.method(obj, "chain", &["x"], true);
        let cx = b.param(chain_m, 0);
        let cr = b.var(chain_m, "r");
        b.scall(chain_m, Some(cr), id_m, &[cx]);
        b.ret(chain_m, cr);
        let main = b.method(obj, "main", &[], true);
        let bx = b.var(main, "bx");
        b.alloc(main, bx, box_c);
        b.scall(main, None, id_m, &[bx]);
        b.entry(main);
        (b.finish(), [id_m, mk_m, get_m, gl_m, chain_m])
    }

    fn table(p: &Program) -> SummaryTable {
        let h = ClassHierarchy::new(p);
        SummaryTable::compute(p, &h)
    }

    #[test]
    fn classic_shapes_are_distilled() {
        let (p, [id_m, mk_m, get_m, gl_m, chain_m]) = fixture();
        let t = table(&p);
        assert_eq!(
            t.distilled_atoms(id_m),
            Some(&[SummaryAtom::ParamToRet(id_m, 0)][..])
        );
        assert!(matches!(
            t.distilled_atoms(mk_m),
            Some(&[SummaryAtom::AllocToRet(_)])
        ));
        assert!(matches!(
            t.distilled_atoms(get_m),
            Some(&[SummaryAtom::ThisFieldToRet(_)])
        ));
        assert!(matches!(
            t.distilled_atoms(gl_m),
            Some(&[SummaryAtom::GlobalToRet(_)])
        ));
        // Composition: chain inherits id's ParamToRet verbatim — still
        // pointing at id's formal, the chain-safe conflation point.
        assert_eq!(
            t.distilled_atoms(chain_m),
            Some(&[SummaryAtom::ParamToRet(id_m, 0)][..])
        );
        assert_eq!(t.stats.distilled, 5);
    }

    #[test]
    fn this_escape_and_casts_fall_back() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let self_m = b.method(obj, "self", &[], false);
        let this = b.this(self_m);
        b.ret(self_m, this);
        let cast_m = b.method(obj, "c", &["x"], true);
        let xp = b.param(cast_m, 0);
        let t = b.var(cast_m, "t");
        b.cast(cast_m, t, xp, obj);
        b.ret(cast_m, t);
        b.entry(cast_m);
        let p = b.finish();
        let tbl = table(&p);
        assert_eq!(tbl.distilled_atoms(rudoop_ir::MethodId(0)), None);
        assert_eq!(tbl.distilled_atoms(rudoop_ir::MethodId(1)), None);
        assert_eq!(tbl.stats.fallback, 2);
    }

    #[test]
    fn recursive_pair_reaches_least_fixpoint() {
        // f(x) { return g(x) },
        // g(y) { t = new Box; return t; return y; return f(y) }
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f_m = b.method(obj, "f", &["x"], true);
        let g_m = b.method(obj, "g", &["y"], true);
        let fx = b.param(f_m, 0);
        let fr = b.var(f_m, "r");
        b.scall(f_m, Some(fr), g_m, &[fx]);
        b.ret(f_m, fr);
        let gy = b.param(g_m, 0);
        let gt = b.var(g_m, "t");
        let gr = b.var(g_m, "r");
        b.alloc(g_m, gt, box_c);
        b.ret(g_m, gt);
        b.ret(g_m, gy);
        b.scall(g_m, Some(gr), f_m, &[gy]);
        b.ret(g_m, gr);
        b.entry(f_m);
        let p = b.finish();
        let t = table(&p);
        // Both are distilled: g returns its alloc plus its own parameter;
        // f inherits both verbatim (its atoms reference *g's* formal — the
        // conflation point f forwards its argument into).
        let fa = t.distilled_atoms(f_m).expect("f distilled");
        let ga = t.distilled_atoms(g_m).expect("g distilled");
        assert!(fa.iter().any(|a| matches!(a, SummaryAtom::AllocToRet(_))));
        assert!(fa.contains(&SummaryAtom::ParamToRet(g_m, 0)));
        assert!(ga.iter().any(|a| matches!(a, SummaryAtom::AllocToRet(_))));
        assert!(ga.contains(&SummaryAtom::ParamToRet(g_m, 0)));
        assert!(t.stats.max_rounds >= 2);
    }

    #[test]
    fn virtual_callee_in_slice_falls_back() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let fa = b.method(a, "f", &[], false);
        let far = b.var(fa, "t");
        b.alloc(fa, far, a);
        b.ret(fa, far);
        let m = b.method(obj, "viacall", &["x"], true);
        let xp = b.param(m, 0);
        let r = b.var(m, "r");
        b.vcall(m, Some(r), xp, "f", &[]);
        b.ret(m, r);
        b.entry(m);
        let p = b.finish();
        let t = table(&p);
        assert!(t.distilled_atoms(fa).is_some());
        assert_eq!(t.distilled_atoms(m), None);
    }

    #[test]
    fn parallel_table_is_byte_identical() {
        for seed in 0..24u64 {
            let p = rudoop_ir::arbitrary::generate(
                &rudoop_ir::arbitrary::ProgramShape::default(),
                seed,
            );
            let h = ClassHierarchy::new(&p);
            let seq = SummaryTable::compute(&p, &h).render(&p);
            for threads in [2, 4, 8] {
                let par = SummaryTable::compute_parallel(&p, &h, threads).render(&p);
                assert_eq!(seq, par, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let (p, _) = fixture();
        let a = table(&p).render(&p);
        let b2 = table(&p).render(&p);
        assert_eq!(a, b2);
        assert!(a.contains("summary Object.id/1: ret = {arg0}"));
        assert!(a.contains("summary Object.chain/1: ret = {arg0 of Object.id/1}"));
        assert!(a.contains("new Box"));
        assert!(a.contains("this.val"));
        assert!(a.contains("global G"));
        assert!(a.contains("stats: methods=6"));
    }
}
