//! The sharded parallel propagation engine.
//!
//! This module runs the same Andersen-style semi-naive solver as
//! [`crate::solver`], but partitioned into `N` shards (one worker thread
//! each, see [`crate::shard::ShardMap`]) that propagate in lock-step
//! *epochs*. The design goal is not "fast but approximately right" — it is
//! **byte-for-byte equivalence** with the sequential solver at every thread
//! count, so that budgets, the supervisor ladder, differential tests and
//! golden fixtures never need to know which engine produced a result.
//!
//! # Architecture
//!
//! Every propagation-graph node is **owned** by exactly one shard (the
//! shard of its anchoring method). Within an epoch each worker, in
//! parallel and without any locks:
//!
//! 1. applies its **inbox** — points-to messages routed to it at the last
//!    barrier — in deterministic (sender shard, send order) order,
//! 2. drains its local worklist semi-naive style: deltas propagate along
//!    copy edges immediately when the target is local, and are appended to
//!    a per-destination **outbox** when it is not,
//! 3. records every derivation that needs global state — field loads and
//!    stores (field-node creation), receiver calls (context merging, call
//!    graph growth) — as a **pending event** instead of performing it.
//!
//! Between epochs the coordinator (the caller's thread, holding `&mut` to
//! everything) runs the **barrier**: it replays pending events in (shard
//! index, local order) order — creating field nodes, adding edges, merging
//! contexts, instantiating newly reachable methods — then routes all
//! outboxes into inboxes, again in shard-index order. Because workers only
//! ever mutate shard-local state and all cross-shard effects funnel
//! through these two ordered channels, **each epoch is a deterministic
//! function of the previous epoch's shard contents**, independent of
//! thread scheduling. Workers are plain [`std::thread::scope`] threads; the
//! crate-wide `forbid(unsafe_code)` holds because disjoint `&mut ShardState`
//! borrows are handed to the scope, not shared.
//!
//! # Deterministic budgets: merge, then replay
//!
//! All of [`crate::solver::SolverStats`]' counters are *monotone* and
//! *order-independent at the fixpoint*: derivations are exactly
//! `Σ |points-to sets| + |call-graph edges|`, and nodes/edges/contexts/
//! reachable are fixpoint sets. Two consequences, which together give the
//! equivalence guarantee:
//!
//! - if the merged counters (per-shard counters folded in shard-index
//!   order, plus the coordinator's call-graph counter) stay within the
//!   [`crate::solver::Budget`] through the final barrier, the sequential
//!   solver would also have completed, and both engines report identical
//!   `SolverStats::canonical()` and identical projected relations;
//! - if a budget or capacity limit is crossed, the *exact* sequential
//!   exhaustion point (which mid-run state the paper-style partial result
//!   contains) is a function of sequential processing order that a
//!   parallel engine cannot reproduce directly — so the engine **discards
//!   the parallel attempt and replays the run sequentially** with the
//!   original configuration. The replay *is* the sequential solver, hence
//!   byte-identical stats, partial facts and [`ExhaustionCause`] at every
//!   thread count. The wasted work is bounded by the budget itself (plus
//!   one epoch of overshoot, bounded by the per-epoch drain chunk).
//!
//! Wall-clock budgets and [`CancelToken`] cancellation are inherently
//! timing-dependent — sequential runs do not reproduce byte-identically
//! under them either — so those stop the parallel engine cooperatively at
//! the next check without a replay, preserving the outcome contract
//! (`Outcome`, `ExhaustionCause`, supervisor exit codes) rather than exact
//! partial facts.
//!
//! `--threads 1` does not even construct this engine: [`crate::solver::analyze`]
//! routes single-threaded configurations to the unmodified sequential
//! solver, which is why `Parallelism::sequential()` is *definitionally*
//! today's solver.

use std::collections::VecDeque;
use std::thread;
use std::time::Instant;

use rudoop_ir::{
    AllocId, ClassHierarchy, ClassId, FieldId, GlobalId, IdxVec, Instruction, InvokeId, InvokeKind,
    MethodId, Program, VarId,
};

use crate::bitset::IdBitSet;
use crate::context::{CObj, CtxId, CtxTables, HCtxId};
use crate::hash::{FxHashMap, FxHashSet};
use crate::policy::ContextPolicy;
use crate::shard::ShardMap;
use crate::solver::{
    model_bytes, CancelToken, CsDump, ExhaustionCause, Outcome, PointsToResult, SolverConfig,
    SolverError, SolverStats,
};
use crate::telemetry::{shard_lane, Telemetry};

/// Thread-count configuration for one solver run.
///
/// The default (`threads == 1`) runs the unmodified sequential solver;
/// higher counts run the sharded engine of this module with one shard per
/// thread. Results are byte-identical either way (see the module docs),
/// so this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Upper bound on worker threads; requests are clamped into range.
    pub const MAX_THREADS: usize = 256;

    /// Run with `n` threads (clamped to `1..=MAX_THREADS`).
    pub fn threads(n: usize) -> Self {
        Parallelism {
            threads: n.clamp(1, Self::MAX_THREADS),
        }
    }

    /// The sequential engine (one thread).
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// Configured thread count (≥ 1).
    pub fn thread_count(self) -> usize {
        self.threads
    }

    /// Whether the sharded engine (rather than the sequential solver) runs.
    pub fn is_parallel(self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

/// Node identifier: owning shard in the high half, index into the shard's
/// local tables in the low half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PNode(u64);

impl PNode {
    fn new(shard: u32, idx: u32) -> Self {
        PNode((u64::from(shard) << 32) | u64::from(idx))
    }

    fn shard(self) -> usize {
        (self.0 >> 32) as usize
    }

    fn idx(self) -> usize {
        self.0 as u32 as usize
    }
}

/// What a node denotes; mirrors the sequential solver's node kinds.
#[derive(Debug, Clone, Copy)]
enum PKind {
    Var(VarId, CtxId),
    Field(CObj, FieldId),
    Global(GlobalId),
}

/// A derivation discovered by a worker that needs coordinator-owned state
/// (field-node interning, context merging, call-graph growth). Replayed at
/// the barrier in (shard index, push order) order.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// `obj` arrived at a load base: connect `obj.field → to`.
    Load { field: FieldId, to: PNode, obj: u64 },
    /// `obj` arrived at a store base: connect `from → obj.field`.
    Store {
        from: PNode,
        field: FieldId,
        obj: u64,
    },
    /// `obj` arrived at the receiver of `invoke` under `caller`.
    Call {
        invoke: InvokeId,
        caller: CtxId,
        obj: u64,
    },
}

/// Per-shard solver state. Only the owning worker (during an epoch) or the
/// coordinator (between epochs) touches it — never both at once.
#[derive(Debug, Default)]
struct ShardState {
    kinds: Vec<PKind>,
    pts: Vec<FxHashSet<u64>>,
    delta: Vec<Vec<u64>>,
    succ: Vec<Vec<PNode>>,
    filter_succ: Vec<Vec<(ClassId, PNode)>>,
    loads: Vec<Vec<(FieldId, PNode)>>,
    stores: Vec<Vec<(FieldId, PNode)>>,
    calls: Vec<Vec<InvokeId>>,
    node_ctx: Vec<CtxId>,
    in_worklist: Vec<bool>,
    worklist: VecDeque<u32>,
    /// Messages to apply next epoch, pre-ordered by the coordinator.
    inbox: Vec<(PNode, u64)>,
    /// Messages for other shards, one queue per destination.
    outbox: Vec<Vec<(PNode, u64)>>,
    /// Derivations needing the coordinator, in discovery order.
    pending: Vec<Pending>,
    /// Lifetime tuple insertions into this shard (the budget currency and
    /// the imbalance metric).
    derivations: u64,
    /// Worklist pops during the last epoch (deterministic engine metric).
    epoch_drains: u64,
    /// Inbox messages applied at the start of the last epoch.
    epoch_inbox: u64,
    /// Worker-measured busy window of the last epoch, µs since the
    /// telemetry origin. Written by the worker without locking and read by
    /// the coordinator at the barrier; zero when telemetry is off.
    busy_start_us: u64,
    busy_end_us: u64,
}

impl ShardState {
    /// Inserts `obj` into the local node `idx`'s points-to set; on a new
    /// tuple, bumps the shard counter and schedules semi-naive follow-up.
    fn add_local(&mut self, idx: usize, obj: u64) {
        if self.pts[idx].insert(obj) {
            self.derivations += 1;
            self.delta[idx].push(obj);
            if !self.in_worklist[idx] {
                self.in_worklist[idx] = true;
                self.worklist.push_back(idx as u32);
            }
        }
    }
}

/// Per-epoch drain chunk when a derivation or byte budget is set: bounds
/// how far past the budget a single epoch can overshoot before the barrier
/// detects it and triggers the sequential replay. A deterministic function
/// of shard-local state, so it cannot break equivalence.
const BUDGETED_EPOCH_CHUNK: u64 = 32_768;

/// How often (in worklist pops / barrier events) cooperative cancellation
/// and wall-clock deadlines are polled.
const POLL_MASK: u64 = 0xFF;

/// One worker epoch: apply the inbox, then drain the local worklist.
fn run_epoch(
    shard: &mut ShardState,
    me: usize,
    program: &Program,
    hierarchy: &ClassHierarchy,
    cancel: Option<&CancelToken>,
    chunk: u64,
    tele: Option<&Telemetry>,
) {
    // Workers never lock the telemetry mutex: they stamp their busy window
    // into shard-local fields (now_us is a lock-free clock read) and the
    // coordinator records the spans at the barrier, in shard-index order.
    if let Some(t) = tele {
        shard.busy_start_us = t.now_us();
    }
    shard.epoch_drains = 0;
    let start_derivations = shard.derivations;
    let inbox = std::mem::take(&mut shard.inbox);
    shard.epoch_inbox = inbox.len() as u64;
    for (node, obj) in inbox {
        debug_assert_eq!(node.shard(), me);
        shard.add_local(node.idx(), obj);
    }
    let mut steps = 0u64;
    loop {
        if shard.derivations - start_derivations >= chunk {
            break;
        }
        steps += 1;
        if steps & POLL_MASK == 0 {
            if let Some(c) = cancel {
                if c.is_cancelled() {
                    break;
                }
            }
        }
        let Some(i) = shard.worklist.pop_front() else {
            break;
        };
        let i = i as usize;
        shard.in_worklist[i] = false;
        shard.epoch_drains += 1;
        let d = std::mem::take(&mut shard.delta[i]);
        if d.is_empty() {
            continue;
        }
        let succs = shard.succ[i].clone();
        for s in succs {
            if s.shard() == me {
                for &o in &d {
                    shard.add_local(s.idx(), o);
                }
            } else {
                for &o in &d {
                    shard.outbox[s.shard()].push((s, o));
                }
            }
        }
        if !shard.filter_succ[i].is_empty() {
            let filtered = shard.filter_succ[i].clone();
            for (class, s) in filtered {
                for &o in &d {
                    let heap_class = program.allocs[CObj(o).heap()].class;
                    if !hierarchy.is_subtype(heap_class, class) {
                        continue;
                    }
                    if s.shard() == me {
                        shard.add_local(s.idx(), o);
                    } else {
                        shard.outbox[s.shard()].push((s, o));
                    }
                }
            }
        }
        let loads = shard.loads[i].clone();
        for (field, to) in loads {
            for &o in &d {
                shard.pending.push(Pending::Load { field, to, obj: o });
            }
        }
        let stores = shard.stores[i].clone();
        for (field, from) in stores {
            for &o in &d {
                shard.pending.push(Pending::Store {
                    from,
                    field,
                    obj: o,
                });
            }
        }
        if !shard.calls[i].is_empty() {
            let caller = shard.node_ctx[i];
            let calls = shard.calls[i].clone();
            for invoke in calls {
                for &o in &d {
                    shard.pending.push(Pending::Call {
                        invoke,
                        caller,
                        obj: o,
                    });
                }
            }
        }
    }
    if let Some(t) = tele {
        shard.busy_end_us = t.now_us();
    }
}

/// What the barrier decided about the run.
enum Verdict {
    /// More work queued; run another epoch.
    Continue,
    /// Fixpoint: every worklist, inbox and queue is empty.
    Done,
    /// Stop cooperatively (cancellation / wall clock); keep partial facts.
    Stop(ExhaustionCause),
    /// A deterministic limit (derivations, bytes, capacity) was crossed:
    /// discard this attempt and replay sequentially.
    Replay,
}

struct Engine<'p> {
    program: &'p Program,
    hierarchy: &'p ClassHierarchy,
    policy: &'p dyn ContextPolicy,
    config: SolverConfig,
    map: ShardMap,
    shards: Vec<ShardState>,
    /// Coordinator-originated messages (edge flushes, alloc seeds), routed
    /// after all shard outboxes so application order stays deterministic.
    coord_outbox: Vec<Vec<(PNode, u64)>>,
    tables: CtxTables,
    var_nodes: FxHashMap<u64, PNode>,
    field_nodes: FxHashMap<(u64, u32), PNode>,
    global_nodes: FxHashMap<u32, PNode>,
    edge_set: FxHashSet<(u64, u64)>,
    reachable: FxHashSet<u64>,
    cg_edges: FxHashSet<(u64, u64)>,
    inst_queue: VecDeque<(MethodId, CtxId)>,
    /// Call-graph derivations (the coordinator's share of the budget
    /// currency; shard counters hold the points-to share).
    cg_derivations: u64,
    cg_edge_count: u64,
    node_count: usize,
    node_cap: usize,
    start: Instant,
    exhausted: Option<ExhaustionCause>,
    /// Index of the next epoch to run (== number of epochs completed).
    epoch_index: u64,
    /// Per-epoch per-shard derivation deltas — the imbalance-over-time
    /// record behind [`PointsToResult::epoch_shard_work`]. Always
    /// collected: one `u64` per shard per epoch.
    epoch_shard_work: Vec<Vec<u64>>,
    /// Per-shard derivation counters at the last epoch boundary.
    prev_derivations: Vec<u64>,
}

/// Why `solve` gave up on the parallel attempt.
struct ReplayNeeded;

impl<'p> Engine<'p> {
    fn new(
        program: &'p Program,
        hierarchy: &'p ClassHierarchy,
        policy: &'p dyn ContextPolicy,
        config: SolverConfig,
    ) -> Self {
        let n = config.parallelism.thread_count();
        let map = ShardMap::partition(program, n);
        let node_cap = config
            .max_nodes
            .unwrap_or(u32::MAX as usize)
            .min(u32::MAX as usize);
        let mut tables = CtxTables::new();
        if let Some(limit) = config.max_contexts {
            tables.set_capacity(limit);
        }
        let shards = (0..n)
            .map(|_| ShardState {
                outbox: (0..n).map(|_| Vec::new()).collect(),
                ..ShardState::default()
            })
            .collect();
        let engine = Engine {
            program,
            hierarchy,
            policy,
            config,
            map,
            shards,
            coord_outbox: (0..n).map(|_| Vec::new()).collect(),
            tables,
            var_nodes: FxHashMap::default(),
            field_nodes: FxHashMap::default(),
            global_nodes: FxHashMap::default(),
            edge_set: FxHashSet::default(),
            reachable: FxHashSet::default(),
            cg_edges: FxHashSet::default(),
            inst_queue: VecDeque::new(),
            cg_derivations: 0,
            cg_edge_count: 0,
            node_count: 0,
            node_cap,
            start: Instant::now(),
            exhausted: None,
            epoch_index: 0,
            epoch_shard_work: Vec::new(),
            prev_derivations: vec![0; n],
        };
        if let Some(tele) = engine.config.telemetry.as_deref() {
            let mut args: Vec<(String, String)> = vec![("shards".to_owned(), n.to_string())];
            for (i, load) in engine.map.static_load().iter().enumerate() {
                args.push((format!("static_load.{i}"), load.to_string()));
            }
            tele.instant("shard-partition", args);
        }
        engine
    }

    fn new_node(&mut self, shard: u32, kind: PKind, ctx: CtxId) -> Result<PNode, SolverError> {
        if self.node_count >= self.node_cap {
            return Err(SolverError::NodeCapacity {
                limit: self.node_cap,
            });
        }
        let s = &mut self.shards[shard as usize];
        let idx = s.kinds.len() as u32;
        s.kinds.push(kind);
        s.pts.push(FxHashSet::default());
        s.delta.push(Vec::new());
        s.succ.push(Vec::new());
        s.filter_succ.push(Vec::new());
        s.loads.push(Vec::new());
        s.stores.push(Vec::new());
        s.calls.push(Vec::new());
        s.node_ctx.push(ctx);
        s.in_worklist.push(false);
        self.node_count += 1;
        Ok(PNode::new(shard, idx))
    }

    fn var_node(&mut self, var: VarId, ctx: CtxId) -> Result<PNode, SolverError> {
        let key = (u64::from(var.0) << 32) | u64::from(ctx.0);
        if let Some(&n) = self.var_nodes.get(&key) {
            return Ok(n);
        }
        let shard = self.map.of_var(self.program, var);
        let n = self.new_node(shard, PKind::Var(var, ctx), ctx)?;
        self.var_nodes.insert(key, n);
        Ok(n)
    }

    fn field_node(&mut self, obj: CObj, field: FieldId) -> Result<PNode, SolverError> {
        let key = (obj.0, field.0);
        if let Some(&n) = self.field_nodes.get(&key) {
            return Ok(n);
        }
        let shard = self.map.of_alloc(self.program, obj.heap());
        let n = self.new_node(shard, PKind::Field(obj, field), CtxId::EMPTY)?;
        self.field_nodes.insert(key, n);
        Ok(n)
    }

    fn global_node(&mut self, global: GlobalId) -> Result<PNode, SolverError> {
        if let Some(&n) = self.global_nodes.get(&global.0) {
            return Ok(n);
        }
        let shard = self.map.of_global(global);
        let n = self.new_node(shard, PKind::Global(global), CtxId::EMPTY)?;
        self.global_nodes.insert(global.0, n);
        Ok(n)
    }

    /// Coordinator-side tuple derivation: routed as a message so the hash
    /// insertion happens on the owning worker next epoch.
    fn send_obj(&mut self, node: PNode, obj: u64) {
        self.coord_outbox[node.shard()].push((node, obj));
    }

    fn add_edge(&mut self, from: PNode, to: PNode) {
        if from == to || !self.edge_set.insert((from.0, to.0)) {
            return;
        }
        self.shards[from.shard()].succ[from.idx()].push(to);
        // Flush: objects already at `from` must traverse the new edge.
        // Objects still in flight to `from` (inbox or outbox messages) are
        // not lost — they enter `from`'s delta when applied and the drain
        // walks the successor list, which now includes this edge.
        for &o in &self.shards[from.shard()].pts[from.idx()] {
            self.coord_outbox[to.shard()].push((to, o));
        }
    }

    fn add_filtered_edge(&mut self, from: PNode, to: PNode, class: ClassId) {
        self.shards[from.shard()].filter_succ[from.idx()].push((class, to));
        for &o in &self.shards[from.shard()].pts[from.idx()] {
            let heap_class = self.program.allocs[CObj(o).heap()].class;
            if self.hierarchy.is_subtype(heap_class, class) {
                self.coord_outbox[to.shard()].push((to, o));
            }
        }
    }

    fn ensure_reachable(&mut self, method: MethodId, ctx: CtxId) {
        let key = (u64::from(method.0) << 32) | u64::from(ctx.0);
        if self.reachable.insert(key) {
            self.inst_queue.push_back((method, ctx));
        }
    }

    fn add_call_edge(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        target: MethodId,
        callee: CtxId,
    ) -> Result<(), SolverError> {
        let key = (
            (u64::from(invoke.0) << 32) | u64::from(caller.0),
            (u64::from(target.0) << 32) | u64::from(callee.0),
        );
        if !self.cg_edges.insert(key) {
            return Ok(());
        }
        self.cg_edge_count += 1;
        self.cg_derivations += 1;
        self.ensure_reachable(target, callee);
        let inv = &self.program.invokes[invoke];
        let callee_m = &self.program.methods[target];
        let n_args = inv.args.len().min(callee_m.params.len());
        // Cut-shortcut rewiring, mirroring the sequential solver exactly.
        // `add_call_edge` only runs at the barrier (on the coordinator's
        // thread), so registering caller-side loads/stores on shard state
        // is as safe as the `instantiate` path doing the same.
        let cuts = self.config.cuts.clone();
        let cuts = cuts.as_deref();
        for i in 0..n_args {
            let arg = self.program.invokes[invoke].args[i];
            match cuts.and_then(|c| c.param_cut(target, i)) {
                // Identity cut: actual flows straight to the call result.
                Some(crate::cutshortcut::ParamCut::Identity) => {
                    if let Some(result) = self.program.invokes[invoke].result {
                        let from = self.var_node(arg, caller)?;
                        let to = self.var_node(result, caller)?;
                        self.add_edge(from, to);
                    }
                }
                // Setter cut: store the actual into this site's receiver
                // objects, registered like a `Store` instruction.
                Some(crate::cutshortcut::ParamCut::Setter(field)) => {
                    if let Some(base) = self.invoke_base(invoke) {
                        let b = self.var_node(base, caller)?;
                        let f = self.var_node(arg, caller)?;
                        self.shards[b.shard()].stores[b.idx()].push((field, f));
                        let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                            .iter()
                            .copied()
                            .collect();
                        for o in existing {
                            let fnode = self.field_node(CObj(o), field)?;
                            self.add_edge(f, fnode);
                        }
                    }
                }
                None => {
                    let from = self.var_node(arg, caller)?;
                    let to = self.var_node(self.program.methods[target].params[i], callee)?;
                    self.add_edge(from, to);
                }
            }
        }
        if let (Some(result), Some(ret)) = (
            self.program.invokes[invoke].result,
            self.program.methods[target].ret,
        ) {
            // Distilled summary: instantiate the callee's atoms at this
            // site instead of the conflating `ret → result` edge,
            // mirroring the sequential solver exactly (the only difference
            // is `send_obj`, the coordinator-side object insertion).
            let summaries = self.config.summaries.clone();
            if let Some(atoms) = summaries.as_deref().and_then(|t| t.distilled_atoms(target)) {
                self.instantiate_summary(invoke, caller, callee, result, atoms)?;
                return Ok(());
            }
            // Getter cut: load the field off this site's receiver objects
            // straight into the result, registered like a `Load`.
            let getter = cuts
                .and_then(|c| c.getter_return(target))
                .and_then(|field| self.invoke_base(invoke).map(|base| (field, base)));
            if let Some((field, base)) = getter {
                let b = self.var_node(base, caller)?;
                let to = self.var_node(result, caller)?;
                self.shards[b.shard()].loads[b.idx()].push((field, to));
                let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                    .iter()
                    .copied()
                    .collect();
                for o in existing {
                    let fnode = self.field_node(CObj(o), field)?;
                    self.add_edge(fnode, to);
                }
            } else {
                let from = self.var_node(ret, callee)?;
                let to = self.var_node(result, caller)?;
                self.add_edge(from, to);
            }
        }
        Ok(())
    }

    /// Instantiates a distilled method summary at one call site — the
    /// sharded mirror of the sequential solver's `instantiate_summary`.
    /// Runs only at the barrier on the coordinator's thread, like the rest
    /// of `add_call_edge`.
    fn instantiate_summary(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        callee: CtxId,
        result: VarId,
        atoms: &[crate::summaries::SummaryAtom],
    ) -> Result<(), SolverError> {
        use crate::summaries::SummaryAtom;
        let to = self.var_node(result, caller)?;
        for &atom in atoms {
            match atom {
                SummaryAtom::ParamToRet(m, i) => {
                    let param = self.program.methods[m].params[i];
                    let from = self.var_node(param, callee)?;
                    self.add_edge(from, to);
                }
                SummaryAtom::ThisFieldToRet(field) => {
                    if let Some(base) = self.invoke_base(invoke) {
                        let b = self.var_node(base, caller)?;
                        self.shards[b.shard()].loads[b.idx()].push((field, to));
                        let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                            .iter()
                            .copied()
                            .collect();
                        for o in existing {
                            let fnode = self.field_node(CObj(o), field)?;
                            self.add_edge(fnode, to);
                        }
                    }
                }
                SummaryAtom::AllocToRet(h) => {
                    self.send_obj(to, CObj::new(h, HCtxId::EMPTY).0);
                }
                SummaryAtom::GlobalToRet(g) => {
                    let from = self.global_node(g)?;
                    self.add_edge(from, to);
                }
            }
        }
        Ok(())
    }

    /// Receiver variable of `invoke`, when it has one (virtual/special
    /// calls; static calls have no receiver).
    fn invoke_base(&self, invoke: InvokeId) -> Option<VarId> {
        match self.program.invokes[invoke].kind {
            InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => Some(base),
            InvokeKind::Static { .. } => None,
        }
    }

    fn process_receiver_call(
        &mut self,
        invoke: InvokeId,
        caller: CtxId,
        obj: CObj,
    ) -> Result<(), SolverError> {
        let target = match self.program.invokes[invoke].kind {
            InvokeKind::Virtual { sig, .. } => {
                let class = self.program.allocs[obj.heap()].class;
                match self.hierarchy.lookup(class, sig) {
                    Some(t) => t,
                    None => return Ok(()),
                }
            }
            InvokeKind::Special { target, .. } => target,
            InvokeKind::Static { .. } => {
                debug_assert!(false, "static calls are not receiver calls");
                return Ok(());
            }
        };
        let callee = self.policy.merge(
            &mut self.tables,
            obj.heap(),
            obj.hctx(),
            invoke,
            target,
            caller,
        );
        if let Some(this) = self.program.methods[target].this {
            let tnode = self.var_node(this, callee)?;
            self.send_obj(tnode, obj.0);
        }
        self.add_call_edge(invoke, caller, target, callee)
    }

    fn instantiate(&mut self, method: MethodId, ctx: CtxId) -> Result<(), SolverError> {
        let body_len = self.program.methods[method].body.len();
        for idx in 0..body_len {
            let instr = self.program.methods[method].body[idx].clone();
            match instr {
                Instruction::Alloc { var, alloc } => {
                    let hctx = self.policy.record(&mut self.tables, alloc, ctx);
                    let node = self.var_node(var, ctx)?;
                    self.send_obj(node, CObj::new(alloc, hctx).0);
                }
                Instruction::Move { to, from } => {
                    let f = self.var_node(from, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    self.add_edge(f, t);
                }
                Instruction::Cast { to, from, class } => {
                    let f = self.var_node(from, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    if self.config.filter_casts {
                        self.add_filtered_edge(f, t, class);
                    } else {
                        self.add_edge(f, t);
                    }
                }
                Instruction::Load { to, base, field } => {
                    let b = self.var_node(base, ctx)?;
                    let t = self.var_node(to, ctx)?;
                    self.shards[b.shard()].loads[b.idx()].push((field, t));
                    let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                        .iter()
                        .copied()
                        .collect();
                    for o in existing {
                        let fnode = self.field_node(CObj(o), field)?;
                        self.add_edge(fnode, t);
                    }
                }
                Instruction::Store { base, field, from } => {
                    let b = self.var_node(base, ctx)?;
                    let f = self.var_node(from, ctx)?;
                    self.shards[b.shard()].stores[b.idx()].push((field, f));
                    let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                        .iter()
                        .copied()
                        .collect();
                    for o in existing {
                        let fnode = self.field_node(CObj(o), field)?;
                        self.add_edge(f, fnode);
                    }
                }
                Instruction::LoadGlobal { to, global } => {
                    let g = self.global_node(global)?;
                    let t = self.var_node(to, ctx)?;
                    self.add_edge(g, t);
                }
                Instruction::StoreGlobal { global, from } => {
                    let f = self.var_node(from, ctx)?;
                    let g = self.global_node(global)?;
                    self.add_edge(f, g);
                }
                Instruction::Return { var } => {
                    if let Some(ret) = self.program.methods[method].ret {
                        let f = self.var_node(var, ctx)?;
                        let t = self.var_node(ret, ctx)?;
                        self.add_edge(f, t);
                    }
                }
                // Spawn is a call for points-to purposes; see the sequential
                // solver.
                Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
                    match self.program.invokes[invoke].kind {
                        InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => {
                            let b = self.var_node(base, ctx)?;
                            self.shards[b.shard()].calls[b.idx()].push(invoke);
                            let existing: Vec<u64> = self.shards[b.shard()].pts[b.idx()]
                                .iter()
                                .copied()
                                .collect();
                            for o in existing {
                                self.process_receiver_call(invoke, ctx, CObj(o))?;
                            }
                        }
                        InvokeKind::Static { target } => {
                            let callee =
                                self.policy
                                    .merge_static(&mut self.tables, invoke, target, ctx);
                            self.add_call_edge(invoke, ctx, target, callee)?;
                        }
                    }
                }
                Instruction::Join { .. }
                | Instruction::MonitorEnter { .. }
                | Instruction::MonitorExit { .. } => {}
            }
        }
        Ok(())
    }

    /// Per-shard counters folded in shard-index order, plus the
    /// coordinator's call-graph derivations — the deterministic merged
    /// budget currency.
    fn total_derivations(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.shards {
            total += s.derivations;
        }
        total + self.cg_derivations
    }

    fn is_cancelled(&self) -> bool {
        self.config
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    fn over_deadline(&self) -> bool {
        self.config
            .budget
            .max_duration
            .is_some_and(|max| self.start.elapsed() > max)
    }

    /// The inter-epoch barrier: replay pending events, instantiate newly
    /// reachable method bodies, route messages, then evaluate the stop
    /// conditions on the merged counters.
    fn barrier(&mut self) -> Result<Verdict, SolverError> {
        let tele = self.config.telemetry.clone();
        let span = crate::telemetry::span_opt(&tele, "barrier");
        if self.is_cancelled() {
            return Ok(Verdict::Stop(ExhaustionCause::Cancelled));
        }
        let mut pending: Vec<Pending> = Vec::new();
        for s in &mut self.shards {
            pending.append(&mut s.pending);
        }
        let pending_count = pending.len() as u64;
        let mut polled = 0u64;
        let poll = |engine: &Engine<'_>, polled: &mut u64| -> Option<Verdict> {
            *polled += 1;
            if *polled & POLL_MASK != 0 {
                return None;
            }
            if engine.is_cancelled() {
                return Some(Verdict::Stop(ExhaustionCause::Cancelled));
            }
            if engine.over_deadline() {
                return Some(Verdict::Stop(ExhaustionCause::WallClock));
            }
            None
        };
        for ev in pending {
            if let Some(stop) = poll(self, &mut polled) {
                return Ok(stop);
            }
            match ev {
                Pending::Load { field, to, obj } => {
                    let fnode = self.field_node(CObj(obj), field)?;
                    self.add_edge(fnode, to);
                }
                Pending::Store { from, field, obj } => {
                    let fnode = self.field_node(CObj(obj), field)?;
                    self.add_edge(from, fnode);
                }
                Pending::Call {
                    invoke,
                    caller,
                    obj,
                } => {
                    self.process_receiver_call(invoke, caller, CObj(obj))?;
                }
            }
        }
        while let Some((m, c)) = self.inst_queue.pop_front() {
            if let Some(stop) = poll(self, &mut polled) {
                return Ok(stop);
            }
            self.instantiate(m, c)?;
        }
        // Route: every destination receives sender 0..n's messages in
        // order, then the coordinator's — a fixed, schedule-independent
        // application order for the next epoch.
        let n = self.shards.len();
        let mut routed = 0u64;
        for d in 0..n {
            let mut inbox = std::mem::take(&mut self.shards[d].inbox);
            for s in 0..n {
                let msgs = std::mem::take(&mut self.shards[s].outbox[d]);
                routed += msgs.len() as u64;
                inbox.extend(msgs);
            }
            routed += self.coord_outbox[d].len() as u64;
            inbox.append(&mut self.coord_outbox[d]);
            self.shards[d].inbox = inbox;
        }
        if let Some(t) = tele.as_deref() {
            // Engine metrics: deterministic at a fixed thread count —
            // replay order at the barrier is schedule-independent.
            let e = self.epoch_index;
            t.metric(&format!("barrier{e}.pending"), pending_count);
            t.metric(&format!("barrier{e}.routed"), routed);
            t.sample("derivations", self.total_derivations());
            t.sample("contexts", self.tables.ctx_count() as u64);
            if let Some(span) = &span {
                span.arg("pending", pending_count);
                span.arg("routed", routed);
            }
        }
        // Stop checks, in the sequential solver's priority order.
        if self.is_cancelled() {
            return Ok(Verdict::Stop(ExhaustionCause::Cancelled));
        }
        if self.tables.overflowed() {
            return Ok(Verdict::Replay);
        }
        if let Some(max) = self.config.budget.max_derivations {
            if self.total_derivations() > max {
                return Ok(Verdict::Replay);
            }
        }
        if let Some(max) = self.config.budget.max_bytes {
            let bytes = model_bytes(
                self.node_count as u64,
                self.edge_set.len() as u64,
                self.total_derivations(),
                self.tables.ctx_count() as u64,
                self.tables.hctx_count() as u64,
                self.reachable.len() as u64,
            );
            if bytes > max {
                return Ok(Verdict::Replay);
            }
        }
        if self.over_deadline() {
            return Ok(Verdict::Stop(ExhaustionCause::WallClock));
        }
        let idle = self
            .shards
            .iter()
            .all(|s| s.worklist.is_empty() && s.inbox.is_empty());
        if idle {
            Ok(Verdict::Done)
        } else {
            Ok(Verdict::Continue)
        }
    }

    /// One parallel epoch across all shards.
    fn run_parallel_epoch(&mut self) {
        let chunk = if self.config.budget.max_derivations.is_some()
            || self.config.budget.max_bytes.is_some()
        {
            BUDGETED_EPOCH_CHUNK
        } else {
            u64::MAX
        };
        let program = self.program;
        let hierarchy = self.hierarchy;
        let cancel = self.config.cancel.clone();
        let tele = self.config.telemetry.as_deref();
        let span = tele.map(|t| {
            let s = t.span("epoch");
            s.arg("epoch", self.epoch_index);
            s
        });
        thread::scope(|scope| {
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let cancel = cancel.clone();
                scope.spawn(move || {
                    run_epoch(shard, i, program, hierarchy, cancel.as_ref(), chunk, tele);
                });
            }
        });
        drop(span);
        self.record_epoch();
    }

    /// Post-epoch bookkeeping: fold per-shard derivation deltas into the
    /// imbalance-over-time record and, when telemetry is attached, emit
    /// the workers' busy-window spans (in shard-index order) and the
    /// epoch's deterministic engine metrics.
    fn record_epoch(&mut self) {
        let mut deltas = Vec::with_capacity(self.shards.len());
        let mut total = 0u64;
        let mut max = 0u64;
        let mut drains = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let delta = shard.derivations - self.prev_derivations[i];
            self.prev_derivations[i] = shard.derivations;
            total += delta;
            max = max.max(delta);
            drains += shard.epoch_drains;
            deltas.push(delta);
            if let Some(t) = self.config.telemetry.as_deref() {
                t.complete_span(
                    shard_lane(i),
                    "drain",
                    shard.busy_start_us,
                    shard.busy_end_us,
                    vec![
                        ("epoch".to_owned(), self.epoch_index.to_string()),
                        ("work".to_owned(), delta.to_string()),
                        ("drains".to_owned(), shard.epoch_drains.to_string()),
                        ("inbox".to_owned(), shard.epoch_inbox.to_string()),
                    ],
                );
            }
        }
        if let Some(t) = self.config.telemetry.as_deref() {
            let e = self.epoch_index;
            t.metric(&format!("epoch{e}.work"), total);
            t.metric(&format!("epoch{e}.max_shard_work"), max);
            t.metric(&format!("epoch{e}.drains"), drains);
        }
        self.epoch_shard_work.push(deltas);
        self.epoch_index += 1;
    }

    fn solve(&mut self) -> Result<(), ReplayNeeded> {
        for &entry in &self.program.entry_points {
            self.ensure_reachable(entry, CtxId::EMPTY);
        }
        loop {
            match self.barrier() {
                Err(_) => return Err(ReplayNeeded),
                Ok(Verdict::Replay) => return Err(ReplayNeeded),
                Ok(Verdict::Done) => return Ok(()),
                Ok(Verdict::Stop(cause)) => {
                    self.exhausted = Some(cause);
                    return Ok(());
                }
                Ok(Verdict::Continue) => {}
            }
            self.run_parallel_epoch();
        }
    }

    fn finish(self) -> PointsToResult {
        let duration = self.start.elapsed();

        let mut var_pts: IdxVec<VarId, Vec<AllocId>> =
            (0..self.program.vars.len()).map(|_| Vec::new()).collect();
        let mut field_pts: FxHashMap<(AllocId, FieldId), Vec<AllocId>> = FxHashMap::default();
        let mut global_pts: FxHashMap<GlobalId, Vec<AllocId>> = FxHashMap::default();
        let mut cs_var = 0u64;
        let mut cs_field = 0u64;
        let mut dump = self.config.record_contexts.then(CsDump::default);

        for shard in &self.shards {
            for (i, kind) in shard.kinds.iter().enumerate() {
                match *kind {
                    PKind::Var(v, ctx) => {
                        cs_var += shard.pts[i].len() as u64;
                        let set = &mut var_pts[v];
                        for &o in &shard.pts[i] {
                            let obj = CObj(o);
                            set.push(obj.heap());
                            if let Some(d) = dump.as_mut() {
                                d.var_points_to.push((v, ctx, obj.heap(), obj.hctx()));
                            }
                        }
                    }
                    PKind::Global(global) => {
                        let set = global_pts.entry(global).or_default();
                        for &o in &shard.pts[i] {
                            set.push(CObj(o).heap());
                        }
                    }
                    PKind::Field(base, field) => {
                        cs_field += shard.pts[i].len() as u64;
                        let set = field_pts.entry((base.heap(), field)).or_default();
                        for &o in &shard.pts[i] {
                            let obj = CObj(o);
                            set.push(obj.heap());
                            if let Some(d) = dump.as_mut() {
                                d.field_points_to.push((
                                    base.heap(),
                                    base.hctx(),
                                    field,
                                    obj.heap(),
                                    obj.hctx(),
                                ));
                            }
                        }
                    }
                }
            }
        }
        for set in var_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
        for set in field_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }
        for set in global_pts.values_mut() {
            set.sort_unstable();
            set.dedup();
        }

        let mut call_targets: FxHashMap<InvokeId, Vec<MethodId>> = FxHashMap::default();
        for &(ic, mc) in &self.cg_edges {
            let invoke = InvokeId((ic >> 32) as u32);
            let target = MethodId((mc >> 32) as u32);
            call_targets.entry(invoke).or_default().push(target);
            if let Some(d) = dump.as_mut() {
                d.call_graph
                    .push((invoke, CtxId(ic as u32), target, CtxId(mc as u32)));
            }
        }
        for set in call_targets.values_mut() {
            set.sort_unstable();
            set.dedup();
        }

        let mut reachable_methods = IdBitSet::new(self.program.methods.len());
        for &key in &self.reachable {
            let m = MethodId((key >> 32) as u32);
            reachable_methods.insert(m);
            if let Some(d) = dump.as_mut() {
                d.reachable.push((m, CtxId(key as u32)));
            }
        }

        let stats = SolverStats {
            derivations: self.total_derivations(),
            cs_var_points_to: cs_var,
            cs_field_points_to: cs_field,
            call_graph_edges: self.cg_edge_count,
            reachable_contexts: self.reachable.len() as u64,
            contexts: self.tables.ctx_count() as u64,
            heap_contexts: self.tables.hctx_count() as u64,
            nodes: self.node_count as u64,
            edges: self.edge_set.len() as u64,
            duration,
        };

        PointsToResult {
            analysis: self.policy.name(),
            outcome: match self.exhausted {
                None => Outcome::Complete,
                Some(cause) if cause.is_capacity() => Outcome::CapacityExceeded,
                Some(_) => Outcome::BudgetExhausted,
            },
            exhaustion: self.exhausted,
            stats,
            var_pts,
            field_pts,
            global_pts,
            call_targets,
            reachable_methods,
            tables: self.tables,
            cs_dump: dump,
            shard_work: Some(self.shards.iter().map(|s| s.derivations).collect()),
            epoch_shard_work: Some(self.epoch_shard_work),
        }
    }
}

/// Runs the sharded engine; falls back to a full sequential replay when a
/// deterministic limit is crossed (see the module docs for why that is the
/// equivalence-preserving choice).
pub(crate) fn analyze_parallel(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
    config: &SolverConfig,
) -> PointsToResult {
    debug_assert!(config.parallelism.is_parallel());
    let span = crate::telemetry::span_opt(&config.telemetry, "parallel-solve");
    if let Some(span) = &span {
        span.arg("analysis", policy.name());
        span.arg("threads", config.parallelism.thread_count());
    }
    let mut engine = Engine::new(program, hierarchy, policy, config.clone());
    match engine.solve() {
        Ok(()) => engine.finish(),
        Err(ReplayNeeded) => {
            if let Some(t) = config.telemetry.as_deref() {
                // The parallel attempt crossed a deterministic limit; the
                // sequential replay reproduces the exact exhaustion state.
                t.instant("sequential-replay", vec![]);
                t.metric("par.replay", 1);
            }
            let mut sequential = config.clone();
            sequential.parallelism = Parallelism::sequential();
            crate::solver::analyze_sequential(program, hierarchy, policy, &sequential)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Insensitive, ObjectSensitive};
    use crate::solver::{analyze, Budget};
    use rudoop_ir::ProgramBuilder;

    fn chain_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let main = b.method(obj, "main", &[], true);
        let mut prev = b.var(main, "v0");
        b.alloc(main, prev, obj);
        for i in 1..n {
            let v = b.var(main, &format!("v{i}"));
            b.alloc(main, v, obj);
            b.mov(main, v, prev);
            prev = v;
        }
        b.entry(main);
        b.finish()
    }

    fn config(threads: usize) -> SolverConfig {
        SolverConfig {
            parallelism: Parallelism::threads(threads),
            ..SolverConfig::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_on_chain() {
        let p = chain_program(40);
        let h = ClassHierarchy::new(&p);
        let seq = analyze(&p, &h, &Insensitive, &config(1));
        for threads in [2, 4] {
            let par = analyze(&p, &h, &Insensitive, &config(threads));
            assert_eq!(par.stats.canonical(), seq.stats.canonical());
            assert_eq!(par.var_pts, seq.var_pts);
            assert!(par.outcome.is_complete());
        }
    }

    #[test]
    fn parallel_replays_budget_exhaustion_exactly() {
        let p = chain_program(60);
        let h = ClassHierarchy::new(&p);
        let mut seq_cfg = config(1);
        seq_cfg.budget = Budget::derivations(25);
        let seq = analyze(&p, &h, &Insensitive, &seq_cfg);
        assert_eq!(seq.outcome, Outcome::BudgetExhausted);
        for threads in [2, 4] {
            let mut cfg = config(threads);
            cfg.budget = Budget::derivations(25);
            let par = analyze(&p, &h, &Insensitive, &cfg);
            assert_eq!(par.outcome, seq.outcome);
            assert_eq!(par.exhaustion, seq.exhaustion);
            assert_eq!(par.stats.canonical(), seq.stats.canonical());
            assert_eq!(par.var_pts, seq.var_pts);
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let p = chain_program(30);
        let h = ClassHierarchy::new(&p);
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = config(4);
        cfg.cancel = Some(token);
        let r = analyze(&p, &h, &Insensitive, &cfg);
        assert_eq!(r.exhaustion, Some(ExhaustionCause::Cancelled));
        assert_eq!(r.stats.derivations, 0);
    }

    #[test]
    fn object_sensitive_virtual_calls_match() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let box_c = b.class("Box", Some(obj));
        let f = b.field(box_c, "val");
        let set_m = b.method(box_c, "set", &["v"], false);
        let set_this = b.this(set_m);
        let set_v = b.param(set_m, 0);
        b.store(set_m, set_this, f, set_v);
        let get_m = b.method(box_c, "get", &[], false);
        let get_this = b.this(get_m);
        let gr = b.var(get_m, "r");
        b.load(get_m, gr, get_this, f);
        b.ret(get_m, gr);
        let main = b.method(obj, "main", &[], true);
        let b1 = b.var(main, "b1");
        let b2 = b.var(main, "b2");
        let v1 = b.var(main, "v1");
        let v2 = b.var(main, "v2");
        let o1 = b.var(main, "o1");
        let o2 = b.var(main, "o2");
        b.alloc(main, b1, box_c);
        b.alloc(main, b2, box_c);
        let h1 = b.alloc(main, v1, obj);
        let h2 = b.alloc(main, v2, obj);
        b.vcall(main, None, b1, "set", &[v1]);
        b.vcall(main, None, b2, "set", &[v2]);
        b.vcall(main, Some(o1), b1, "get", &[]);
        b.vcall(main, Some(o2), b2, "get", &[]);
        b.entry(main);
        let p = b.finish();
        let h = ClassHierarchy::new(&p);
        let policy = ObjectSensitive::new(1, 0);
        let seq = analyze(&p, &h, &policy, &config(1));
        let par = analyze(&p, &h, &policy, &config(3));
        assert_eq!(par.stats.canonical(), seq.stats.canonical());
        assert_eq!(par.points_to(o1), &[h1]);
        assert_eq!(par.points_to(o2), &[h2]);
        assert_eq!(seq.points_to(o1), par.points_to(o1));
    }

    #[test]
    fn shard_work_is_reported_only_for_parallel_runs() {
        let p = chain_program(10);
        let h = ClassHierarchy::new(&p);
        let seq = analyze(&p, &h, &Insensitive, &config(1));
        assert!(seq.shard_work.is_none());
        let par = analyze(&p, &h, &Insensitive, &config(2));
        let work = par.shard_work.expect("parallel runs report shard work");
        assert_eq!(work.len(), 2);
        assert_eq!(
            work.iter().sum::<u64>() + par.stats.call_graph_edges,
            par.stats.derivations
        );
    }
}
