//! # rudoop-core
//!
//! Context-sensitive points-to analysis with **introspective
//! context-sensitivity** — a from-scratch Rust reproduction of
//! *"Introspective Analysis: Context-Sensitivity, Across the Board"*
//! (Smaragdakis, Kastrinis, Balatsouras; PLDI 2014).
//!
//! The crate implements:
//!
//! - the paper's analysis model (§2): a policy-parametric,
//!   flow-insensitive, field-sensitive Andersen-style analysis with
//!   on-the-fly call-graph construction ([`solver`]),
//! - the three classic context flavors it evaluates — call-site-,
//!   object- and type-sensitivity, each with a context-sensitive heap —
//!   plus the insensitive baseline and the per-element
//!   [`policy::Introspective`] combinator ([`policy`], [`context`]),
//! - the six introspection metrics of §3 ([`introspection`]),
//! - Heuristics A and B with the paper's constants ([`heuristics`]),
//! - the two-pass introspective driver ([`driver`]),
//! - the precision clients of the evaluation: devirtualization, reachable
//!   methods, cast-may-fail ([`clients`]).
//!
//! # Examples
//!
//! Run the paper's headline configuration — introspective `2objH` under
//! Heuristic A — on a program:
//!
//! ```
//! use rudoop_core::driver::{analyze_introspective, Flavor};
//! use rudoop_core::heuristics::HeuristicA;
//! use rudoop_core::solver::SolverConfig;
//! use rudoop_ir::{parse_program, ClassHierarchy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "class Object\n\
//!      method Object.id(x) static {\n  return x\n}\n\
//!      method Object.main() static {\n  a = new Object\n  r = static Object.id(a)\n}\n\
//!      entry Object.main\n",
//! )?;
//! let hierarchy = ClassHierarchy::new(&program);
//! let run = analyze_introspective(
//!     &program,
//!     &hierarchy,
//!     Flavor::OBJ2H,
//!     &HeuristicA::default(),
//!     &SolverConfig::default(),
//! );
//! assert!(run.result.outcome.is_complete());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod clients;
pub mod context;
pub mod cutshortcut;
pub mod driver;
pub mod hash;
pub mod heuristics;
pub mod introspection;
pub mod json;
pub mod parallel;
pub mod policy;
pub mod races;
pub mod service;
pub mod shard;
pub mod solver;
pub mod stats;
pub mod summaries;
pub mod supervisor;
pub mod taint;
pub mod telemetry;

pub use clients::PrecisionMetrics;
pub use context::{CObj, ContextElem, CtxId, CtxTables, HCtxId};
pub use cutshortcut::{CutStats, CutSummary, MethodCuts, ParamCut};
pub use driver::{
    analyze_flavor, analyze_introspective, Flavor, FlavorParseError, IntrospectiveRun,
};
pub use heuristics::{
    CustomHeuristic, HeuristicA, HeuristicB, Metric, RefinementHeuristic, RefinementStats,
};
pub use introspection::IntrospectionMetrics;
pub use parallel::Parallelism;
pub use policy::{
    CallSiteSensitive, ContextPolicy, CutShortcut, HybridObjectSensitive, Insensitive,
    Introspective, ObjectSensitive, RefinementSet, Summaries, TypeSensitive,
};
pub use races::{
    analyze_races, supervised_races, Race, RaceAccess, RaceError, RaceKey, RaceResult,
    SupervisedRaces,
};
pub use solver::{
    analyze, Budget, CancelToken, ExhaustionCause, Outcome, PointsToResult, SolverConfig,
    SolverError, SolverStats,
};
pub use stats::{render_supervised, ResultStats, SizeHistogram};
pub use summaries::{MethodSummary, SummaryAtom, SummaryStats, SummaryTable};
pub use supervisor::{
    supervise, HeuristicChoice, LadderSpec, RungKind, RungReport, RungSpec, SalvagedFacts,
    SupervisedRun, SupervisionVerdict, SupervisorConfig,
};
pub use taint::{analyze_taint, supervised_taint, Leak, SupervisedTaint, TaintError, TaintResult};
pub use telemetry::{validate_chrome_trace, Telemetry, TelemetryHandle, TraceCheck};
