//! The introspection metrics of §3 of the paper: cost estimators computed
//! from a context-insensitive analysis result, used to predict which
//! program elements would explode under context-sensitivity.
//!
//! The six metrics, verbatim from the paper:
//!
//! 1. **in-flow** of an invocation site: cumulative size of the points-to
//!    sets of its actual arguments,
//! 2. a method's **total points-to volume** (and the max-var variant):
//!    cumulative (resp. maximum) points-to set size over its locals,
//! 3. an object's **max field points-to** (and total variant): maximum
//!    (resp. total) field points-to set size over its fields,
//! 4. a method's **max var-field points-to**: the maximum metric-3 value
//!    among objects pointed to by the method's locals,
//! 5. an object's **pointed-by-vars**: how many variables point to it,
//! 6. an object's **pointed-by-objs**: how many (object, field) pairs point
//!    to it.
//!
//! All are counting queries over the projected VARPOINTSTO / FLDPOINTSTO /
//! CALLGRAPH relations — cheap compared to the analysis itself, as the
//! paper requires.

use rudoop_ir::{AllocId, IdxVec, InvokeId, MethodId, Program};

use crate::solver::PointsToResult;

/// All six metrics, densely indexed. Values saturate at `u32::MAX`.
#[derive(Debug, Clone)]
pub struct IntrospectionMetrics {
    /// Metric #1: per invocation site, the argument in-flow.
    pub in_flow: IdxVec<InvokeId, u32>,
    /// Metric #2: per method, total points-to volume over its locals.
    pub method_total_pts: IdxVec<MethodId, u32>,
    /// Metric #2 (variant): per method, max var points-to size.
    pub method_max_var_pts: IdxVec<MethodId, u32>,
    /// Metric #3: per object, max field points-to over its fields.
    pub obj_max_field_pts: IdxVec<AllocId, u32>,
    /// Metric #3 (variant): per object, total field points-to.
    pub obj_total_field_pts: IdxVec<AllocId, u32>,
    /// Metric #4: per method, max of metric #3 over objects its vars reach.
    pub method_max_var_field_pts: IdxVec<MethodId, u32>,
    /// Metric #5: per object, number of variables pointing to it.
    pub pointed_by_vars: IdxVec<AllocId, u32>,
    /// Metric #6: per object, number of (object, field) pairs pointing to it.
    pub pointed_by_objs: IdxVec<AllocId, u32>,
}

fn sat_add(a: u32, b: usize) -> u32 {
    a.saturating_add(u32::try_from(b).unwrap_or(u32::MAX))
}

impl IntrospectionMetrics {
    /// Computes every metric from a (context-insensitive) analysis result.
    ///
    /// The result may come from any policy — the metrics project contexts
    /// away — but the paper's methodology (and [`crate::driver`]) uses the
    /// insensitive first pass.
    pub fn compute(program: &Program, result: &PointsToResult) -> Self {
        let n_alloc = program.allocs.len();
        let n_meth = program.methods.len();

        // Metrics #3 and #6, from field-points-to.
        let mut obj_max_field_pts: IdxVec<AllocId, u32> = (0..n_alloc).map(|_| 0).collect();
        let mut obj_total_field_pts: IdxVec<AllocId, u32> = (0..n_alloc).map(|_| 0).collect();
        let mut pointed_by_objs: IdxVec<AllocId, u32> = (0..n_alloc).map(|_| 0).collect();
        for (&(base, _field), targets) in &result.field_pts {
            let size = targets.len();
            obj_max_field_pts[base] = obj_max_field_pts[base].max(size as u32);
            obj_total_field_pts[base] = sat_add(obj_total_field_pts[base], size);
            for &target in targets {
                pointed_by_objs[target] = sat_add(pointed_by_objs[target], 1);
            }
        }

        // Metrics #2, #4, #5, from var-points-to grouped by method.
        let mut method_total_pts: IdxVec<MethodId, u32> = (0..n_meth).map(|_| 0).collect();
        let mut method_max_var_pts: IdxVec<MethodId, u32> = (0..n_meth).map(|_| 0).collect();
        let mut method_max_var_field_pts: IdxVec<MethodId, u32> = (0..n_meth).map(|_| 0).collect();
        let mut pointed_by_vars: IdxVec<AllocId, u32> = (0..n_alloc).map(|_| 0).collect();
        for (vid, var) in program.vars.iter() {
            let pts = &result.var_pts[vid];
            let m = var.method;
            method_total_pts[m] = sat_add(method_total_pts[m], pts.len());
            method_max_var_pts[m] = method_max_var_pts[m].max(pts.len() as u32);
            for &obj in pts {
                pointed_by_vars[obj] = sat_add(pointed_by_vars[obj], 1);
                method_max_var_field_pts[m] =
                    method_max_var_field_pts[m].max(obj_max_field_pts[obj]);
            }
        }

        // Metric #1: in-flow per invocation, counting distinct (arg, heap)
        // pairs as in the paper's HEAPSPERINVOCATIONPERARG query (duplicate
        // argument variables contribute once).
        let mut in_flow: IdxVec<InvokeId, u32> = (0..program.invokes.len()).map(|_| 0).collect();
        let mut seen_args: Vec<rudoop_ir::VarId> = Vec::new();
        for (iid, invoke) in program.invokes.iter() {
            seen_args.clear();
            let mut total = 0u32;
            for &arg in &invoke.args {
                if seen_args.contains(&arg) {
                    continue;
                }
                seen_args.push(arg);
                total = sat_add(total, result.var_pts[arg].len());
            }
            in_flow[iid] = total;
        }

        IntrospectionMetrics {
            in_flow,
            method_total_pts,
            method_max_var_pts,
            obj_max_field_pts,
            obj_total_field_pts,
            method_max_var_field_pts,
            pointed_by_vars,
            pointed_by_objs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Insensitive;
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    /// Flow-insensitive fixture. Moves are inclusion edges, so:
    /// x -> {h1, h2}, y -> {h1, h2} (y ⊇ x ⊇ z), z -> {h2};
    /// the store `y.f = z` writes {h2} into the `f` field of both h1, h2;
    /// callee params p ⊇ x, q ⊇ y.
    fn fixture() -> (Program, TestIds) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let f = b.field(obj, "f");
        let callee = b.method(obj, "take", &["p", "q"], true);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        let z = b.var(main, "z");
        let h1 = b.alloc(main, x, obj);
        let h2 = b.alloc(main, z, obj);
        b.mov(main, y, x); // y -> h1; x -> h1
        b.mov(main, x, z); // x -> {h1, h2}
        b.store(main, y, f, z); // h1.f -> h2
        let inv = b.scall(main, None, callee, &[x, y]);
        b.entry(main);
        (
            b.finish(),
            TestIds {
                main,
                callee,
                inv,
                h1,
                h2,
            },
        )
    }

    struct TestIds {
        main: MethodId,
        callee: MethodId,
        inv: InvokeId,
        h1: AllocId,
        h2: AllocId,
    }

    use rudoop_ir::Program;

    fn metrics() -> (IntrospectionMetrics, TestIds) {
        let (p, ids) = fixture();
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        (IntrospectionMetrics::compute(&p, &r), ids)
    }

    #[test]
    fn in_flow_sums_argument_points_to() {
        let (m, ids) = metrics();
        // x -> {h1,h2} (2), y -> {h1,h2} (2): in-flow = 4.
        assert_eq!(m.in_flow[ids.inv], 4);
    }

    #[test]
    fn method_volumes_count_local_points_to() {
        let (m, ids) = metrics();
        // main: x:2, y:2, z:1 = 5 total; callee: p:2 + q:2 = 4.
        assert_eq!(m.method_total_pts[ids.main], 5);
        assert_eq!(m.method_max_var_pts[ids.main], 2);
        assert_eq!(m.method_total_pts[ids.callee], 4);
    }

    #[test]
    fn object_field_metrics() {
        let (m, ids) = metrics();
        // h1.f -> {h2} and h2.f -> {h2}: max = total = 1 for both.
        assert_eq!(m.obj_max_field_pts[ids.h1], 1);
        assert_eq!(m.obj_total_field_pts[ids.h1], 1);
        assert_eq!(m.obj_max_field_pts[ids.h2], 1);
        // h2 is pointed to by two (object, field) pairs; h1 by none.
        assert_eq!(m.pointed_by_objs[ids.h2], 2);
        assert_eq!(m.pointed_by_objs[ids.h1], 0);
    }

    #[test]
    fn pointed_by_vars_counts_pointing_variables() {
        let (m, ids) = metrics();
        // h1 <- x, y, p, q: 4. h2 <- x, y, z, p, q: 5.
        assert_eq!(m.pointed_by_vars[ids.h1], 4);
        assert_eq!(m.pointed_by_vars[ids.h2], 5);
    }

    #[test]
    fn max_var_field_pts_takes_field_metric_through_vars() {
        let (m, ids) = metrics();
        // main's vars reach h1 (max field pts 1) and h2 (0): metric = 1.
        assert_eq!(m.method_max_var_field_pts[ids.main], 1);
    }
}
