//! Contexts and heap contexts: interned sequences of context elements.
//!
//! The paper's domains `C` (calling contexts) and `HC` (heap contexts) are
//! represented uniformly as short sequences of [`ContextElem`]s — call
//! sites for call-site-sensitivity, allocation sites for object-sensitivity,
//! class types for type-sensitivity. Uniform representation is what lets an
//! *introspective* analysis mix context flavors (and the insensitive empty
//! context `★`) inside a single run, which is the paper's central mechanism.
//!
//! Contexts are interned: equal sequences share one id, so context equality
//! is `u32` equality and the solver's tuple keys stay small.

use std::fmt;

use rudoop_ir::{AllocId, ClassId, InvokeId, Program};

use crate::hash::FxHashMap;

/// One element of a context string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContextElem {
    /// A call site (call-site-sensitivity).
    Site(InvokeId),
    /// An allocation site (object-sensitivity).
    Heap(AllocId),
    /// An (allocator) class type (type-sensitivity).
    Type(ClassId),
}

impl fmt::Display for ContextElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextElem::Site(i) => write!(f, "{i}"),
            ContextElem::Heap(h) => write!(f, "{h}"),
            ContextElem::Type(t) => write!(f, "{t}"),
        }
    }
}

/// An interned calling context (element of domain `C`).
///
/// `CtxId::EMPTY` is the paper's `★`: the context of a context-insensitive
/// analysis, and the context of every entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The empty (insensitive) context `★`.
    pub const EMPTY: CtxId = CtxId(0);
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An interned heap context (element of domain `HC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HCtxId(pub u32);

impl HCtxId {
    /// The empty (insensitive) heap context.
    pub const EMPTY: HCtxId = HCtxId(0);
}

impl fmt::Display for HCtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HC{}", self.0)
    }
}

/// Interner for one kind of context sequence.
///
/// Interners never panic on overflow: when the table reaches `capacity`
/// (at most `u32::MAX`), new sequences *saturate* to the empty context.
/// Merging contexts only loses precision, never soundness, so the run can
/// finish; the [`Interner::overflowed`] flag lets the solver surface the
/// event as a structured capacity failure instead.
#[derive(Debug, Clone)]
struct Interner {
    seqs: Vec<Box<[ContextElem]>>,
    table: FxHashMap<Box<[ContextElem]>, u32>,
    capacity: usize,
    overflowed: bool,
}

impl Interner {
    fn new() -> Self {
        let mut interner = Interner {
            seqs: Vec::new(),
            table: FxHashMap::default(),
            capacity: u32::MAX as usize,
            overflowed: false,
        };
        let empty: Box<[ContextElem]> = Box::new([]);
        interner.table.insert(empty.clone(), 0);
        interner.seqs.push(empty);
        interner
    }

    fn intern(&mut self, elems: &[ContextElem]) -> u32 {
        if elems.is_empty() {
            return 0;
        }
        if let Some(&id) = self.table.get(elems) {
            return id;
        }
        if self.seqs.len() >= self.capacity {
            self.overflowed = true;
            return 0;
        }
        let id = self.seqs.len() as u32;
        let boxed: Box<[ContextElem]> = elems.into();
        self.table.insert(boxed.clone(), id);
        self.seqs.push(boxed);
        id
    }

    fn get(&self, id: u32) -> &[ContextElem] {
        &self.seqs[id as usize]
    }
}

/// The context and heap-context tables of one analysis run.
///
/// Owned by the solver; policies receive it mutably to create (or look up)
/// contexts — the model's constructor functions RECORD and MERGE.
#[derive(Debug, Clone)]
pub struct CtxTables {
    ctx: Interner,
    hctx: Interner,
}

impl CtxTables {
    /// Fresh tables containing only the empty contexts.
    pub fn new() -> Self {
        CtxTables {
            ctx: Interner::new(),
            hctx: Interner::new(),
        }
    }

    /// Interns a calling-context sequence.
    pub fn intern_ctx(&mut self, elems: &[ContextElem]) -> CtxId {
        CtxId(self.ctx.intern(elems))
    }

    /// Interns a heap-context sequence.
    pub fn intern_hctx(&mut self, elems: &[ContextElem]) -> HCtxId {
        HCtxId(self.hctx.intern(elems))
    }

    /// The elements of calling context `id`.
    pub fn ctx_elems(&self, id: CtxId) -> &[ContextElem] {
        self.ctx.get(id.0)
    }

    /// The elements of heap context `id`.
    pub fn hctx_elems(&self, id: HCtxId) -> &[ContextElem] {
        self.hctx.get(id.0)
    }

    /// Number of distinct calling contexts created so far.
    pub fn ctx_count(&self) -> usize {
        self.ctx.seqs.len()
    }

    /// Number of distinct heap contexts created so far.
    pub fn hctx_count(&self) -> usize {
        self.hctx.seqs.len()
    }

    /// Caps both tables at `limit` distinct contexts each (clamped to
    /// `u32::MAX`). Once a table is full, new sequences saturate to the
    /// empty context and [`CtxTables::overflowed`] reports `true`.
    pub fn set_capacity(&mut self, limit: usize) {
        let limit = limit.min(u32::MAX as usize).max(1);
        self.ctx.capacity = limit;
        self.hctx.capacity = limit;
    }

    /// Whether either table ran out of capacity at some point. Saturated
    /// interning keeps results sound (contexts merge into `★`), but the
    /// solver reports the run as capacity-exceeded.
    pub fn overflowed(&self) -> bool {
        self.ctx.overflowed || self.hctx.overflowed
    }

    /// Renders a calling context like `[I3, I7]` using program names.
    pub fn display_ctx(&self, id: CtxId, _program: &Program) -> String {
        let elems: Vec<String> = self.ctx_elems(id).iter().map(|e| e.to_string()).collect();
        format!("[{}]", elems.join(", "))
    }
}

impl Default for CtxTables {
    fn default() -> Self {
        Self::new()
    }
}

/// A context-qualified heap object `(heap, hctx)` packed into a `u64` — the
/// element type of every points-to set in the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CObj(pub u64);

impl CObj {
    /// Packs an allocation site and heap context.
    #[inline]
    pub fn new(heap: AllocId, hctx: HCtxId) -> Self {
        CObj((u64::from(heap.0) << 32) | u64::from(hctx.0))
    }

    /// The allocation site.
    #[inline]
    pub fn heap(self) -> AllocId {
        AllocId((self.0 >> 32) as u32)
    }

    /// The heap context.
    #[inline]
    pub fn hctx(self) -> HCtxId {
        HCtxId(self.0 as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_contexts_are_id_zero() {
        let mut t = CtxTables::new();
        assert_eq!(t.intern_ctx(&[]), CtxId::EMPTY);
        assert_eq!(t.intern_hctx(&[]), HCtxId::EMPTY);
        assert_eq!(t.ctx_count(), 1);
        assert_eq!(t.hctx_count(), 1);
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = CtxTables::new();
        let a = t.intern_ctx(&[
            ContextElem::Site(InvokeId(1)),
            ContextElem::Site(InvokeId(2)),
        ]);
        let b = t.intern_ctx(&[
            ContextElem::Site(InvokeId(1)),
            ContextElem::Site(InvokeId(2)),
        ]);
        let c = t.intern_ctx(&[ContextElem::Site(InvokeId(2))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.ctx_count(), 3);
    }

    #[test]
    fn ctx_and_hctx_tables_are_independent() {
        let mut t = CtxTables::new();
        let c = t.intern_ctx(&[ContextElem::Heap(AllocId(5))]);
        let h = t.intern_hctx(&[ContextElem::Heap(AllocId(5))]);
        assert_eq!(c.0, 1);
        assert_eq!(h.0, 1);
        assert_eq!(t.ctx_elems(c), t.hctx_elems(h));
    }

    #[test]
    fn cobj_packs_and_unpacks() {
        let o = CObj::new(AllocId(0xABCD), HCtxId(0x1234));
        assert_eq!(o.heap(), AllocId(0xABCD));
        assert_eq!(o.hctx(), HCtxId(0x1234));
    }

    #[test]
    fn capped_interner_saturates_to_empty_context() {
        let mut t = CtxTables::new();
        t.set_capacity(2);
        let a = t.intern_ctx(&[ContextElem::Site(InvokeId(1))]);
        assert_eq!(a, CtxId(1));
        assert!(!t.overflowed(), "still within capacity");
        // Third distinct sequence saturates: merged into `★`, flagged.
        let b = t.intern_ctx(&[ContextElem::Site(InvokeId(2))]);
        assert_eq!(b, CtxId::EMPTY);
        assert!(t.overflowed());
        // Already-interned sequences keep resolving after overflow.
        assert_eq!(t.intern_ctx(&[ContextElem::Site(InvokeId(1))]), a);
        assert_eq!(t.ctx_count(), 2);
    }

    #[test]
    fn elems_round_trip() {
        let mut t = CtxTables::new();
        let elems = [ContextElem::Type(ClassId(3)), ContextElem::Heap(AllocId(9))];
        let id = t.intern_ctx(&elems);
        assert_eq!(t.ctx_elems(id), &elems);
    }
}
