//! Program partitioning for the sharded parallel solver.
//!
//! The unit of ownership is the *method*: every propagation-graph node is
//! anchored to exactly one method — a context-qualified variable belongs to
//! the method declaring the variable, a field node to the method containing
//! the allocation site of its base object, and a static-field node to a
//! fixed shard derived from its id. Ownership is what makes the parallel
//! engine race-free in safe Rust: only the owning shard ever mutates a
//! node's points-to set, and everything crossing shards travels as a
//! message applied at an epoch barrier (see [`crate::parallel`]).
//!
//! The assignment itself is a greedy longest-first bin packing over method
//! body sizes: deterministic (ties broken by lowest shard index, then
//! lowest method id) and cheap, while spreading the workloads' large
//! generated pattern batteries far better than round-robin. The scheme is
//! deliberately upgradeable to per-SCC partitioning of the static call
//! graph without changing the engine: only this module would learn about
//! SCCs.

use rudoop_ir::{AllocId, GlobalId, MethodId, Program, VarId};

/// A deterministic method → shard assignment for one program.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: u32,
    of_method: Vec<u32>,
    load: Vec<u64>,
}

impl ShardMap {
    /// Partitions `program` into `shards` bins, balancing the total
    /// instruction count per bin (greedy longest-first, deterministic).
    pub fn partition(program: &Program, shards: usize) -> ShardMap {
        let shards = shards.max(1).min(u32::MAX as usize) as u32;
        let n_methods = program.methods.len();
        let mut order: Vec<u32> = (0..n_methods as u32).collect();
        // Longest body first; ties by method id for determinism.
        order.sort_by_key(|&m| {
            let len = program.methods[MethodId(m)].body.len();
            (std::cmp::Reverse(len), m)
        });
        let mut load = vec![0u64; shards as usize];
        let mut of_method = vec![0u32; n_methods];
        for m in order {
            let mut best = 0usize;
            for s in 1..load.len() {
                if load[s] < load[best] {
                    best = s;
                }
            }
            of_method[m as usize] = best as u32;
            // Weight 1 even for empty bodies so tiny methods still spread.
            load[best] += program.methods[MethodId(m)].body.len() as u64 + 1;
        }
        ShardMap {
            shards,
            of_method,
            load,
        }
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The static instruction-count load the packer assigned to each
    /// shard — the *predicted* balance, which telemetry contrasts with the
    /// measured per-epoch work to show how far the packing heuristic is
    /// from reality.
    pub fn static_load(&self) -> &[u64] {
        &self.load
    }

    /// Shard owning `method`.
    pub fn of_method(&self, method: MethodId) -> u32 {
        self.of_method[method.0 as usize]
    }

    /// Shard owning context-qualified instances of `var` (its declaring
    /// method's shard).
    pub fn of_var(&self, program: &Program, var: VarId) -> u32 {
        self.of_method(program.vars[var].method)
    }

    /// Shard owning field nodes of objects allocated at `alloc` (the
    /// allocating method's shard).
    pub fn of_alloc(&self, program: &Program, alloc: AllocId) -> u32 {
        self.of_method(program.allocs[alloc].method)
    }

    /// Shard owning the program-wide slot of static field `global`.
    pub fn of_global(&self, global: GlobalId) -> u32 {
        global.0 % self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        for i in 0..7 {
            let m = b.method(obj, &format!("m{i}"), &[], true);
            for j in 0..=i {
                let v = b.var(m, &format!("v{j}"));
                b.alloc(m, v, obj);
            }
        }
        b.finish()
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let p = sample();
        let a = ShardMap::partition(&p, 4);
        let b = ShardMap::partition(&p, 4);
        for m in 0..p.methods.len() as u32 {
            assert_eq!(a.of_method(MethodId(m)), b.of_method(MethodId(m)));
            assert!(a.of_method(MethodId(m)) < 4);
        }
    }

    #[test]
    fn vars_and_allocs_follow_their_method() {
        let p = sample();
        let map = ShardMap::partition(&p, 3);
        for v in 0..p.vars.len() as u32 {
            let var = VarId(v);
            assert_eq!(map.of_var(&p, var), map.of_method(p.vars[var].method),);
        }
        for a in 0..p.allocs.len() as u32 {
            let alloc = AllocId(a);
            assert_eq!(
                map.of_alloc(&p, alloc),
                map.of_method(p.allocs[alloc].method),
            );
        }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let p = sample();
        let map = ShardMap::partition(&p, 1);
        for m in 0..p.methods.len() as u32 {
            assert_eq!(map.of_method(MethodId(m)), 0);
        }
    }
}
