//! A minimal, dependency-free JSON reader and string escaper.
//!
//! The workspace is offline (no serde), so the few places that must
//! consume JSON — the Chrome-trace schema checker and the `rudoopd`
//! wire protocol — share this hand-rolled recursive-descent reader.
//! It rejects `NaN`/`Infinity` literals by construction (they are not
//! JSON tokens), which is exactly the property the trace checker needs.
//!
//! Writers in this workspace do not need a DOM: every emitted document
//! is rendered by hand against a stable schema, using [`escape`] for
//! string values.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always finite: JSON has no NaN/Infinity tokens).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (keys may repeat; first wins).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object's key/value list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits `u64` (the shape every count and budget on the wire takes).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Looks up `key` in an object value (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".into()),
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our documents;
                        // map unpaired surrogates to the replacement char.
                        let c = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Value::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_handles_escapes_and_rejects_garbage() {
        let v = parse(r#"{"a":"q\"\nA","b":[1,2.5,-3e2],"c":null}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("q\"\nA"));
        assert_eq!(obj[1].1.as_array().unwrap()[2].as_number(), Some(-300.0));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("007a").is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"42\"").unwrap().as_u64(), None);
    }

    #[test]
    fn get_returns_first_match() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a \"quote\"\nand\ttabs \\ done";
        let v = parse(&escape(raw)).unwrap();
        assert_eq!(v.as_str(), Some(raw));
    }
}
