//! Context-sensitive taint analysis, layered on the points-to substrate.
//!
//! Taint is labeled reachability over the value flows the solver has
//! already resolved: a *source* call site labels its return value, labels
//! propagate through `move`/`cast`/`return`, across calls with the active
//! context policy (arguments, receivers, returns), through the heap via the
//! context-sensitive field-points-to resolution of `load`/`store` base
//! variables, and through static fields. *Sanitizers* strip taint at their
//! return (values still flow *into* a sanitizer body). A *sink* records a
//! leak when a labeled value reaches one of its checked arguments.
//!
//! Given a fixed points-to result, every taint rule is linear in the
//! `TAINTED*` relations, so the least fixpoint is plain graph reachability.
//! [`analyze_taint`] therefore builds one propagation graph over
//! `(variable, context)`, `(heap object, field)` and global nodes from the
//! solver's context-sensitive dump and runs one breadth-first search per
//! source label — which also yields, for free, a *shortest* derivation
//! trace for each leak. The Datalog reference model in `rudoop-datalog`
//! evaluates the same rules declaratively; the differential suite asserts
//! the two produce byte-identical leak sets.
//!
//! Precision and soundness: a coarser context policy (including one coarsened
//! by introspective refinement) merges contexts and heap contexts, which can
//! only grow the points-to relations and hence the propagation graph — so
//! the leak set is monotone: `leaks(2objH) ⊆ leaks(introspective 2objH) ⊆
//! leaks(insensitive)`. Reported leaks may be false positives; absence of a
//! leak is a guarantee of the abstraction.

use std::fmt;

use rudoop_ir::{
    AllocId, FieldId, GlobalId, Instruction, InvokeId, InvokeKind, MethodId, Program, TaintSpec,
    VarId,
};

use crate::context::{CtxId, CtxTables, HCtxId};
use crate::hash::{FxHashMap, FxHashSet};
use crate::solver::{CsDump, PointsToResult};
use crate::supervisor::SupervisedRun;

/// One taint propagation node: a variable under a calling context, a field
/// of a context-qualified heap object, or a static field slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Var(VarId, CtxId),
    Field(AllocId, HCtxId, FieldId),
    Global(GlobalId),
}

/// One source→sink flow found by [`analyze_taint`].
#[derive(Debug, Clone)]
pub struct Leak {
    /// The source call site whose return value reached the sink.
    pub source: InvokeId,
    /// The sink call site.
    pub sink: InvokeId,
    /// Which argument of the sink received the tainted value.
    pub sink_arg: u32,
    /// The source method the source call resolves to.
    pub source_method: MethodId,
    /// The sink method the sink call resolves to.
    pub sink_method: MethodId,
    /// Shortest derivation: one rendered propagation node per step, from
    /// the source's return value to the sink argument.
    pub trace: Vec<String>,
    /// How many heap steps (field or static-field nodes) the trace crosses.
    pub heap_steps: usize,
    /// Whether some heap step crossed an object whose heap context was
    /// merged to the empty context (context collapse, e.g. by introspective
    /// refinement or an insensitive rung).
    pub merged_heap_step: bool,
}

impl Leak {
    /// One-line human-readable summary of the flow.
    pub fn headline(&self, program: &Program) -> String {
        format!(
            "{} -> {} (arg {})",
            program.method_display(self.source_method),
            program.method_display(self.sink_method),
            self.sink_arg
        )
    }
}

/// The output of [`analyze_taint`]: deterministic leak reports plus the
/// sanitizer observations the T-series lints consume.
#[derive(Debug, Clone)]
pub struct TaintResult {
    /// `analysis` name of the underlying points-to run.
    pub analysis: String,
    /// All leaks, sorted by `(source, sink, sink_arg)`; at most one leak
    /// (the shortest) per such triple.
    pub leaks: Vec<Leak>,
    /// Every reachable sanitizer call site, with whether any tainted value
    /// actually reached one of its arguments. Sorted by call site.
    pub sanitizer_calls: Vec<(InvokeId, bool)>,
    /// Source call sites whose taint reached some sanitizer argument,
    /// sorted. A leak from such a source *bypassed* sanitization somewhere.
    pub sanitized_sources: Vec<InvokeId>,
    /// Number of reachable source call sites that seeded a label.
    pub source_sites: usize,
    /// Number of reachable sink call sites with at least one checked
    /// argument.
    pub sink_sites: usize,
}

impl TaintResult {
    /// The context-free projection of the leak set, sorted: `(source call
    /// site, sink call site, argument)`. This is the canonical form the
    /// differential tests compare against the Datalog reference model.
    pub fn leak_set(&self) -> Vec<(InvokeId, InvokeId, u32)> {
        self.leaks
            .iter()
            .map(|l| (l.source, l.sink, l.sink_arg))
            .collect()
    }

    /// Whether a given source label was sanitized somewhere.
    pub fn source_sanitized(&self, source: InvokeId) -> bool {
        self.sanitized_sources.binary_search(&source).is_ok()
    }
}

/// Why taint analysis could not run on a points-to result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintError {
    /// The result carries no context-sensitive dump (`record_contexts` was
    /// off).
    MissingContextDump,
    /// The points-to run did not complete; propagating taint over partial
    /// facts would under-report leaks.
    IncompleteAnalysis(String),
}

impl fmt::Display for TaintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaintError::MissingContextDump => f.write_str(
                "points-to result has no context-sensitive dump (enable record_contexts)",
            ),
            TaintError::IncompleteAnalysis(name) => write!(
                f,
                "points-to run {name:?} is incomplete; refusing to report a partial leak list"
            ),
        }
    }
}

impl std::error::Error for TaintError {}

/// The outcome of running taint under the supervisor's exit contract.
#[derive(Debug, Clone)]
pub enum SupervisedTaint {
    /// Taint ran on a *complete* (possibly degraded-but-sound) rung result.
    Analyzed(TaintResult),
    /// No complete rung result was available; taint was skipped rather than
    /// reporting a partial leak list as if it were complete.
    Skipped {
        /// Human-readable explanation for the report.
        reason: String,
    },
}

impl SupervisedTaint {
    /// The analyzed result, when taint ran.
    pub fn as_analyzed(&self) -> Option<&TaintResult> {
        match self {
            SupervisedTaint::Analyzed(t) => Some(t),
            SupervisedTaint::Skipped { .. } => None,
        }
    }
}

/// Runs taint over the outcome of a supervised ladder run, honoring the
/// degradation contract: a completed rung (even a degraded one) is a sound
/// points-to abstraction and taint runs on it; an exhausted ladder yields
/// [`SupervisedTaint::Skipped`] — salvaged partial facts are never used, a
/// partial leak list must not masquerade as a complete one.
pub fn supervised_taint(
    program: &Program,
    spec: &TaintSpec,
    run: &SupervisedRun,
) -> SupervisedTaint {
    supervised_taint_traced(program, spec, run, &None)
}

/// [`supervised_taint`] with telemetry: wraps the run in a `taint` span and
/// emits a `taint-skipped` instant when the degradation contract forces a
/// skip. Passing `&None` is equivalent to the untraced entry point.
pub fn supervised_taint_traced(
    program: &Program,
    spec: &TaintSpec,
    run: &SupervisedRun,
    tele: &crate::telemetry::TelemetryHandle,
) -> SupervisedTaint {
    let outcome = match &run.result {
        Some(result) => match analyze_taint_traced(program, spec, result, tele) {
            Ok(t) => SupervisedTaint::Analyzed(t),
            Err(e) => SupervisedTaint::Skipped {
                reason: e.to_string(),
            },
        },
        None => SupervisedTaint::Skipped {
            reason: format!(
                "all {} ladder rung(s) exhausted; points-to facts are partial and taint \
                 would under-report leaks",
                run.attempts.len()
            ),
        },
    };
    if let (Some(t), SupervisedTaint::Skipped { reason }) = (tele.as_deref(), &outcome) {
        t.instant("taint-skipped", vec![("reason".into(), reason.clone())]);
    }
    outcome
}

/// Runs the taint client of `spec` over a completed points-to result.
///
/// The result must have been produced with
/// [`record_contexts`](crate::solver::SolverConfig::record_contexts) so the
/// context-sensitive relations are available.
///
/// # Errors
///
/// [`TaintError::MissingContextDump`] without a dump,
/// [`TaintError::IncompleteAnalysis`] when the run was cut short.
pub fn analyze_taint(
    program: &Program,
    spec: &TaintSpec,
    pts: &PointsToResult,
) -> Result<TaintResult, TaintError> {
    analyze_taint_traced(program, spec, pts, &None)
}

/// [`analyze_taint`] with telemetry: the whole client runs under a `taint`
/// span with a nested `taint-bfs` span covering the per-label searches, and
/// the propagation-graph shape plus the leak/sanitizer tallies land in the
/// deterministic counter stream (all are computed from canonicalized ids,
/// so they are engine- and thread-count-invariant). Passing `&None` is
/// equivalent to the untraced entry point.
pub fn analyze_taint_traced(
    program: &Program,
    spec: &TaintSpec,
    pts: &PointsToResult,
    tele: &crate::telemetry::TelemetryHandle,
) -> Result<TaintResult, TaintError> {
    let span = crate::telemetry::span_opt(tele, "taint");
    if let Some(s) = &span {
        s.arg("analysis", &pts.analysis);
    }
    if !pts.outcome.is_complete() {
        return Err(TaintError::IncompleteAnalysis(pts.analysis.clone()));
    }
    let dump = pts.cs_dump.as_ref().ok_or(TaintError::MissingContextDump)?;
    let canon = CtxCanon::build(dump, &pts.tables);

    let mut vpt: FxHashMap<(VarId, CtxId), Vec<(AllocId, HCtxId)>> = FxHashMap::default();
    for &(var, ctx, heap, hctx) in &dump.var_points_to {
        vpt.entry((var, canon.ctx(ctx)))
            .or_default()
            .push((heap, canon.hctx(hctx)));
    }
    for objs in vpt.values_mut() {
        objs.sort_unstable();
        objs.dedup();
    }

    let mut reachable: Vec<(MethodId, CtxId)> = dump
        .reachable
        .iter()
        .map(|&(m, c)| (m, canon.ctx(c)))
        .collect();
    reachable.sort_unstable();
    reachable.dedup();
    let mut call_graph: Vec<(InvokeId, CtxId, MethodId, CtxId)> = dump
        .call_graph
        .iter()
        .map(|&(i, cc, m, ec)| (i, canon.ctx(cc), m, canon.ctx(ec)))
        .collect();
    call_graph.sort_unstable();
    call_graph.dedup();

    let mut graph = GraphBuilder::default();

    // Intra-procedural flows, per reachable (method, context).
    for &(meth, ctx) in &reachable {
        let m = &program.methods[meth];
        for instr in &m.body {
            match *instr {
                Instruction::Move { to, from } | Instruction::Cast { to, from, .. } => {
                    graph.edge(Node::Var(from, ctx), Node::Var(to, ctx));
                }
                Instruction::Return { var } => {
                    if let Some(ret) = m.ret {
                        graph.edge(Node::Var(var, ctx), Node::Var(ret, ctx));
                    }
                }
                Instruction::Load { to, base, field } => {
                    if let Some(objs) = vpt.get(&(base, ctx)) {
                        for &(heap, hctx) in objs {
                            graph.edge(Node::Field(heap, hctx, field), Node::Var(to, ctx));
                        }
                    }
                }
                Instruction::Store { base, field, from } => {
                    if let Some(objs) = vpt.get(&(base, ctx)) {
                        for &(heap, hctx) in objs {
                            graph.edge(Node::Var(from, ctx), Node::Field(heap, hctx, field));
                        }
                    }
                }
                Instruction::LoadGlobal { to, global } => {
                    graph.edge(Node::Global(global), Node::Var(to, ctx));
                }
                Instruction::StoreGlobal { global, from } => {
                    graph.edge(Node::Var(from, ctx), Node::Global(global));
                }
                Instruction::Alloc { .. }
                | Instruction::Call { .. }
                | Instruction::Spawn { .. }
                | Instruction::Join { .. }
                | Instruction::MonitorEnter { .. }
                | Instruction::MonitorExit { .. } => {}
            }
        }
    }

    // Inter-procedural flows plus source/sink/sanitizer registration, per
    // resolved call edge.
    let mut seeds: FxHashMap<InvokeId, Vec<u32>> = FxHashMap::default();
    let mut sink_at: FxHashMap<u32, Vec<(InvokeId, u32, MethodId)>> = FxHashMap::default();
    let mut sanitizer_args: FxHashMap<InvokeId, Vec<u32>> = FxHashMap::default();
    let mut source_sites: FxHashSet<InvokeId> = FxHashSet::default();
    let mut sink_sites: FxHashSet<InvokeId> = FxHashSet::default();

    for &(invo, caller_ctx, meth, callee_ctx) in &call_graph {
        let inv = &program.invokes[invo];
        let m = &program.methods[meth];
        for (&actual, &formal) in inv.args.iter().zip(m.params.iter()) {
            graph.edge(Node::Var(actual, caller_ctx), Node::Var(formal, callee_ctx));
        }
        let base = match inv.kind {
            InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => Some(base),
            InvokeKind::Static { .. } => None,
        };
        if let (Some(base), Some(this)) = (base, m.this) {
            graph.edge(Node::Var(base, caller_ctx), Node::Var(this, callee_ctx));
        }
        if !spec.is_sanitizer(meth) {
            if let (Some(ret), Some(to)) = (m.ret, inv.result) {
                graph.edge(Node::Var(ret, callee_ctx), Node::Var(to, caller_ctx));
            }
        } else {
            let args = sanitizer_args.entry(invo).or_default();
            for &actual in &inv.args {
                args.push(graph.node(Node::Var(actual, caller_ctx)));
            }
        }
        if spec.is_source(meth) {
            if let Some(to) = inv.result {
                source_sites.insert(invo);
                seeds
                    .entry(invo)
                    .or_default()
                    .push(graph.node(Node::Var(to, caller_ctx)));
            }
        }
        for arg in spec.sink_args(meth, m.params.len()) {
            if let Some(&actual) = inv.args.get(arg as usize) {
                sink_sites.insert(invo);
                sink_at
                    .entry(graph.node(Node::Var(actual, caller_ctx)))
                    .or_default()
                    .push((invo, arg, meth));
            }
        }
    }

    let adjacency = graph.adjacency();
    for targets in sink_at.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }

    // One BFS per source label, in label order; parent pointers give the
    // shortest derivation to each sink.
    let mut labels: Vec<InvokeId> = seeds.keys().copied().collect();
    labels.sort_unstable();
    let mut san_calls: Vec<(InvokeId, Vec<u32>)> = sanitizer_args
        .into_iter()
        .map(|(invo, mut args)| {
            args.sort_unstable();
            args.dedup();
            (invo, args)
        })
        .collect();
    san_calls.sort_unstable();

    let mut leaks = Vec::new();
    let mut sanitized_sources = Vec::new();
    let mut san_hit = vec![false; san_calls.len()];

    const UNSEEN: u32 = u32::MAX;
    const SEED: u32 = u32::MAX - 1;
    let mut parent = vec![UNSEEN; graph.nodes.len()];

    let bfs_span = crate::telemetry::span_opt(tele, "taint-bfs");
    if let Some(s) = &bfs_span {
        s.arg("labels", labels.len());
    }
    for &label in &labels {
        parent.iter_mut().for_each(|p| *p = UNSEEN);
        let mut queue: Vec<u32> = seeds[&label].clone();
        queue.sort_unstable();
        queue.dedup();
        for &n in &queue {
            parent[n as usize] = SEED;
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            for &next in &adjacency[n as usize] {
                if parent[next as usize] == UNSEEN {
                    parent[next as usize] = n;
                    queue.push(next);
                }
            }
        }

        // `queue` is now the visitation order (distance-sorted); the first
        // time a (sink, arg) pair appears, its trace is shortest.
        let mut claimed: FxHashSet<(InvokeId, u32)> = FxHashSet::default();
        for &n in &queue {
            if let Some(targets) = sink_at.get(&n) {
                for &(sink, arg, sink_method) in targets {
                    if !claimed.insert((sink, arg)) {
                        continue;
                    }
                    leaks.push(build_leak(
                        program,
                        &pts.tables,
                        &canon,
                        &graph.nodes,
                        &parent,
                        n,
                        label,
                        sink,
                        arg,
                        sink_method,
                        source_method_of(program, &call_graph, label, spec),
                    ));
                }
            }
        }
        let mut sanitized = false;
        for (i, (_, args)) in san_calls.iter().enumerate() {
            if args.iter().any(|&a| parent[a as usize] != UNSEEN) {
                san_hit[i] = true;
                sanitized = true;
            }
        }
        if sanitized {
            sanitized_sources.push(label);
        }
    }

    drop(bfs_span);
    leaks.sort_by_key(|l| (l.source, l.sink, l.sink_arg));
    let sanitizer_calls: Vec<(InvokeId, bool)> = san_calls
        .iter()
        .zip(san_hit)
        .map(|(&(invo, _), hit)| (invo, hit))
        .collect();

    let result = TaintResult {
        analysis: pts.analysis.clone(),
        leaks,
        sanitizer_calls,
        sanitized_sources,
        source_sites: source_sites.len(),
        sink_sites: sink_sites.len(),
    };
    if let Some(t) = tele.as_deref() {
        let edges: usize = adjacency.iter().map(Vec::len).sum();
        t.counter("taint.graph_nodes", graph.nodes.len() as u64);
        t.counter("taint.graph_edges", edges as u64);
        t.counter("taint.labels", labels.len() as u64);
        t.counter("taint.leaks", result.leaks.len() as u64);
        t.counter("taint.source_sites", result.source_sites as u64);
        t.counter("taint.sink_sites", result.sink_sites as u64);
        t.counter("taint.sanitizer_calls", result.sanitizer_calls.len() as u64);
    }
    Ok(result)
}

/// The source method a labeled call site resolves to (for display; any
/// resolved source target of the site, smallest id for determinism).
fn source_method_of(
    program: &Program,
    call_graph: &[(InvokeId, CtxId, MethodId, CtxId)],
    label: InvokeId,
    spec: &TaintSpec,
) -> MethodId {
    call_graph
        .iter()
        .filter(|&&(invo, _, meth, _)| invo == label && spec.is_source(meth))
        .map(|&(_, _, meth, _)| meth)
        .min()
        .unwrap_or(program.invokes[label].method)
}

#[allow(clippy::too_many_arguments)]
fn build_leak(
    program: &Program,
    tables: &CtxTables,
    canon: &CtxCanon,
    nodes: &[Node],
    parent: &[u32],
    end: u32,
    source: InvokeId,
    sink: InvokeId,
    sink_arg: u32,
    sink_method: MethodId,
    source_method: MethodId,
) -> Leak {
    const SEED: u32 = u32::MAX - 1;
    let mut path = vec![end];
    let mut cur = end;
    while parent[cur as usize] != SEED {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();

    let mut heap_steps = 0;
    let mut merged_heap_step = false;
    let trace = path
        .iter()
        .map(|&n| match nodes[n as usize] {
            Node::Var(v, ctx) => {
                format!(
                    "{} {}",
                    program.var_display(v),
                    tables.display_ctx(canon.orig_ctx(ctx), program)
                )
            }
            Node::Field(heap, hctx, fld) => {
                heap_steps += 1;
                let orig = canon.orig_hctx(hctx);
                if tables.hctx_elems(orig).is_empty() {
                    merged_heap_step = true;
                }
                let elems: Vec<String> = tables
                    .hctx_elems(orig)
                    .iter()
                    .map(|e| e.to_string())
                    .collect();
                format!(
                    "new {}.{} [{}]",
                    program.classes[program.allocs[heap].class].name,
                    program.fields[fld].name,
                    elems.join(", ")
                )
            }
            Node::Global(g) => {
                heap_steps += 1;
                format!(
                    "static {}.{}",
                    program.classes[program.globals[g].class].name, program.globals[g].name
                )
            }
        })
        .collect();

    Leak {
        source,
        sink,
        sink_arg,
        source_method,
        sink_method,
        trace,
        heap_steps,
        merged_heap_step,
    }
}

/// Renders a supervised taint outcome as a JSON document for `rudoop
/// taint --format json`.
///
/// The schema is part of the CLI contract and only grows, never changes.
/// The document always carries exactly the keys `analysis`, `skipped`,
/// `source_sites`, `sink_sites`, `leaks`, and `sanitizers`, in that order.
/// When taint was skipped, `analysis` is `null`, `skipped` holds the
/// reason, and both arrays are empty. Each leak object carries `source`,
/// `source_span`, `sink`, `sink_span`, `sink_arg`, `sanitized_source`,
/// `heap_steps`, `merged_heap_step`, and `trace` (the rendered shortest
/// derivation, one string per propagation step); spans are `"line:col"`
/// or `null` for programs without source text. Each sanitizer object
/// carries `caller`, `span`, and `witnessed_taint` — the sanitizer
/// witnesses the T-series lints consume, so scripts can tell a sanitizer
/// that actually intercepted taint from dead sanitization.
pub fn render_json(program: &Program, taint: &SupervisedTaint) -> String {
    let mut out = String::from("{\n");
    match taint {
        SupervisedTaint::Skipped { reason } => {
            out.push_str(&format!(
                "  \"analysis\": null,\n  \"skipped\": \"{}\",\n  \"source_sites\": 0,\n  \
                 \"sink_sites\": 0,\n  \"leaks\": [],\n  \"sanitizers\": []\n",
                json_escape(reason)
            ));
        }
        SupervisedTaint::Analyzed(t) => {
            out.push_str(&format!(
                "  \"analysis\": \"{}\",\n  \"skipped\": null,\n  \"source_sites\": {},\n  \
                 \"sink_sites\": {},\n",
                json_escape(&t.analysis),
                t.source_sites,
                t.sink_sites
            ));
            out.push_str("  \"leaks\": [");
            for (i, leak) in t.leaks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let trace: Vec<String> = leak
                    .trace
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect();
                out.push_str(&format!(
                    "\n    {{\"source\":\"{}\",\"source_span\":{},\"sink\":\"{}\",\
                     \"sink_span\":{},\"sink_arg\":{},\"sanitized_source\":{},\
                     \"heap_steps\":{},\"merged_heap_step\":{},\"trace\":[{}]}}",
                    json_escape(&program.method_display(leak.source_method)),
                    invoke_span_json(program, leak.source),
                    json_escape(&program.method_display(leak.sink_method)),
                    invoke_span_json(program, leak.sink),
                    leak.sink_arg,
                    t.source_sanitized(leak.source),
                    leak.heap_steps,
                    leak.merged_heap_step,
                    trace.join(",")
                ));
            }
            if t.leaks.is_empty() {
                out.push_str("],\n");
            } else {
                out.push_str("\n  ],\n");
            }
            out.push_str("  \"sanitizers\": [");
            for (i, &(invo, hit)) in t.sanitizer_calls.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let caller = program.invokes[invo].method;
                out.push_str(&format!(
                    "\n    {{\"caller\":\"{}\",\"span\":{},\"witnessed_taint\":{}}}",
                    json_escape(&program.method_display(caller)),
                    invoke_span_json(program, invo),
                    hit
                ));
            }
            if t.sanitizer_calls.is_empty() {
                out.push_str("]\n");
            } else {
                out.push_str("\n  ]\n");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a supervised taint run as the human-readable report printed by
/// `rudoop taint` — the summary line, up to twenty leaks with their
/// shortest traces, and the overflow line. The daemon serves this exact
/// string so service responses are byte-identical to batch stdout.
pub fn render_text(program: &Program, taint: &SupervisedTaint) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match taint {
        SupervisedTaint::Analyzed(taint) => {
            let _ = writeln!(
                out,
                "taint ({}): {} source site(s), {} sink site(s), {} sanitizer call(s), \
                 {} leak(s)",
                taint.analysis,
                taint.source_sites,
                taint.sink_sites,
                taint.sanitizer_calls.len(),
                taint.leaks.len(),
            );
            const MAX_LEAKS: usize = 20;
            for leak in taint.leaks.iter().take(MAX_LEAKS) {
                let _ = writeln!(out, "leak: {}", leak.headline(program));
                for step in &leak.trace {
                    let _ = writeln!(out, "    via {step}");
                }
            }
            if taint.leaks.len() > MAX_LEAKS {
                let _ = writeln!(out, "... {} more leak(s)", taint.leaks.len() - MAX_LEAKS);
            }
        }
        SupervisedTaint::Skipped { reason } => {
            let _ = writeln!(out, "taint: SKIPPED — {reason}");
        }
    }
    out
}

/// The source span of a call site as a JSON value: the span of its `call`
/// instruction in the enclosing method body, `null` when unknown.
pub(crate) fn invoke_span_json(program: &Program, invo: InvokeId) -> String {
    let m = &program.methods[program.invokes[invo].method];
    for (i, instr) in m.body.iter().enumerate() {
        if matches!(
            *instr,
            Instruction::Call { invoke } | Instruction::Spawn { invoke } if invoke == invo
        ) {
            let span = m.span_of(i);
            if span.is_known() {
                return format!("\"{span}\"");
            }
            return "null".to_owned();
        }
    }
    "null".to_owned()
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Content-based renumbering of the context ids used by a dump.
///
/// The sharded engine reaches the same fixpoint as the sequential solver
/// but may intern contexts in a different order, so raw [`CtxId`] /
/// [`HCtxId`] values are not stable across engines. Everything
/// order-sensitive in taint — sorting the dump, graph node interning, BFS
/// tie-breaks when several shortest traces exist — runs on canonical ids:
/// contexts ranked by their element sequences, which *are* engine-
/// invariant. Original ids survive only for rendering trace lines.
pub(crate) struct CtxCanon {
    ctx_rank: FxHashMap<CtxId, CtxId>,
    hctx_rank: FxHashMap<HCtxId, HCtxId>,
    ctx_orig: Vec<CtxId>,
    hctx_orig: Vec<HCtxId>,
}

impl CtxCanon {
    pub(crate) fn build(dump: &CsDump, tables: &CtxTables) -> Self {
        let mut ctxs: FxHashSet<CtxId> = FxHashSet::default();
        let mut hctxs: FxHashSet<HCtxId> = FxHashSet::default();
        for &(_, ctx, _, hctx) in &dump.var_points_to {
            ctxs.insert(ctx);
            hctxs.insert(hctx);
        }
        for &(_, caller, _, callee) in &dump.call_graph {
            ctxs.insert(caller);
            ctxs.insert(callee);
        }
        for &(_, ctx) in &dump.reachable {
            ctxs.insert(ctx);
        }

        // Interning deduplicates, so element sequences are unique per id
        // and sorting by contents is a total order.
        let mut ctx_orig: Vec<CtxId> = ctxs.into_iter().collect();
        ctx_orig.sort_unstable_by(|&a, &b| tables.ctx_elems(a).cmp(tables.ctx_elems(b)));
        let mut hctx_orig: Vec<HCtxId> = hctxs.into_iter().collect();
        hctx_orig.sort_unstable_by(|&a, &b| tables.hctx_elems(a).cmp(tables.hctx_elems(b)));

        let ctx_rank = ctx_orig
            .iter()
            .enumerate()
            .map(|(rank, &orig)| (orig, CtxId(rank as u32)))
            .collect();
        let hctx_rank = hctx_orig
            .iter()
            .enumerate()
            .map(|(rank, &orig)| (orig, HCtxId(rank as u32)))
            .collect();
        CtxCanon {
            ctx_rank,
            hctx_rank,
            ctx_orig,
            hctx_orig,
        }
    }

    pub(crate) fn ctx(&self, id: CtxId) -> CtxId {
        self.ctx_rank[&id]
    }

    pub(crate) fn hctx(&self, id: HCtxId) -> HCtxId {
        self.hctx_rank[&id]
    }

    pub(crate) fn orig_ctx(&self, canonical: CtxId) -> CtxId {
        self.ctx_orig[canonical.0 as usize]
    }

    pub(crate) fn orig_hctx(&self, canonical: HCtxId) -> HCtxId {
        self.hctx_orig[canonical.0 as usize]
    }
}

/// Interned propagation graph under construction.
#[derive(Default)]
struct GraphBuilder {
    nodes: Vec<Node>,
    index: FxHashMap<Node, u32>,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    fn node(&mut self, n: Node) -> u32 {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(n);
        self.index.insert(n, i);
        i
    }

    fn edge(&mut self, from: Node, to: Node) {
        let f = self.node(from);
        let t = self.node(to);
        self.edges.push((f, t));
    }

    /// Sorted, deduplicated adjacency lists (deterministic BFS order).
    fn adjacency(&mut self) -> Vec<Vec<u32>> {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(f, t) in &self.edges {
            adj[f as usize].push(t);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Insensitive;
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    fn kit() -> (Program, TaintSpec) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let san = b.method(kit, "clean", &["x"], true);
        let sp = b.param(san, 0);
        b.ret(san, sp);
        let snk = b.method(kit, "exec", &["a"], true);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let c = b.var(main, "c");
        b.scall(main, Some(t), src, &[]);
        b.scall(main, Some(c), san, &[t]);
        b.scall(main, None, snk, &[t]);
        b.scall(main, None, snk, &[c]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sanitizer(san);
        spec.add_sink(snk, Some(0));
        (p, spec)
    }

    fn run(p: &Program, record: bool) -> PointsToResult {
        let h = ClassHierarchy::new(p);
        let config = SolverConfig {
            record_contexts: record,
            ..SolverConfig::default()
        };
        analyze(p, &h, &Insensitive, &config)
    }

    #[test]
    fn direct_flow_leaks_and_sanitized_flow_does_not() {
        let (p, spec) = kit();
        let result = run(&p, true);
        let taint = analyze_taint(&p, &spec, &result).unwrap();
        // Exactly one leak: the unsanitized call. The sanitized value
        // reaches the other sink call but carries no taint.
        assert_eq!(taint.leaks.len(), 1);
        let leak = &taint.leaks[0];
        assert_eq!(leak.sink_arg, 0);
        assert!(!leak.trace.is_empty());
        // The sanitizer saw the tainted value, so the source counts as
        // sanitized and the sanitizer call is live.
        assert_eq!(taint.sanitized_sources, vec![taint.leaks[0].source]);
        assert_eq!(taint.sanitizer_calls.len(), 1);
        assert!(taint.sanitizer_calls[0].1);
    }

    #[test]
    fn missing_dump_is_an_error() {
        let (p, spec) = kit();
        let result = run(&p, false);
        assert_eq!(
            analyze_taint(&p, &spec, &result).unwrap_err(),
            TaintError::MissingContextDump
        );
    }

    #[test]
    fn json_report_has_stable_schema() {
        let (p, spec) = kit();
        let result = run(&p, true);
        let taint = SupervisedTaint::Analyzed(analyze_taint(&p, &spec, &result).unwrap());
        let json = render_json(&p, &taint);
        assert!(json.starts_with("{\n  \"analysis\": \"insens\""));
        assert!(json.contains("\"skipped\": null"));
        assert!(json.contains("\"source\":\"Kit.input/0\""));
        assert!(json.contains("\"sink\":\"Kit.exec/1\""));
        assert!(json.contains("\"sanitized_source\":true"));
        assert!(json.contains("\"witnessed_taint\":true"));
        assert!(json.ends_with("}\n"));

        let skipped = SupervisedTaint::Skipped {
            reason: "say \"why\"".to_owned(),
        };
        let json = render_json(&p, &skipped);
        assert!(json.contains("\"analysis\": null"));
        assert!(json.contains("\"skipped\": \"say \\\"why\\\"\""));
        assert!(json.contains("\"leaks\": []"));
    }

    /// Renumbering the context tables (as a different solver engine might)
    /// must not change leaks, traces, or sanitizer observations: taint
    /// canonicalizes context ids by content before anything order-sensitive.
    #[test]
    fn traces_are_invariant_under_context_renumbering() {
        use crate::context::CtxTables;
        use crate::policy::ObjectSensitive;

        // Two receivers calling the same tainted pipeline, so 2obj creates
        // several non-empty contexts and the BFS has real ties to break.
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let f = b.field(obj, "f");
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let snk = b.method(kit, "exec", &["a"], true);
        let wrap = b.method(kit, "wrap", &["x"], false);
        let wx = b.param(wrap, 0);
        let wb = b.var(wrap, "box");
        let wo = b.var(wrap, "out");
        b.alloc(wrap, wb, obj);
        b.store(wrap, wb, f, wx);
        b.load(wrap, wo, wb, f);
        b.ret(wrap, wo);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let r1 = b.var(main, "r1");
        let r2 = b.var(main, "r2");
        let k1 = b.var(main, "k1");
        let k2 = b.var(main, "k2");
        b.alloc(main, k1, kit);
        b.alloc(main, k2, kit);
        b.scall(main, Some(t), src, &[]);
        b.vcall(main, Some(r1), k1, "wrap", &[t]);
        b.vcall(main, Some(r2), k2, "wrap", &[t]);
        b.scall(main, None, snk, &[r1]);
        b.scall(main, None, snk, &[r2]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sink(snk, None);

        let h = ClassHierarchy::new(&p);
        let config = SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        };
        let result = analyze(&p, &h, &ObjectSensitive::new(2, 1), &config);
        assert!(result.outcome.is_complete());
        let dump = result.cs_dump.as_ref().unwrap();
        assert!(
            dump.reachable.iter().any(|&(_, c)| c != CtxId::EMPTY),
            "fixture must exercise non-empty contexts"
        );

        // Build a permuted twin: intern the same context contents in
        // reverse order, remap every dump tuple accordingly.
        let mut tables = CtxTables::new();
        let mut cmap = vec![CtxId::EMPTY; result.tables.ctx_count()];
        for id in (0..result.tables.ctx_count() as u32).rev() {
            cmap[id as usize] = tables.intern_ctx(result.tables.ctx_elems(CtxId(id)));
        }
        let mut hmap = vec![HCtxId::EMPTY; result.tables.hctx_count()];
        for id in (0..result.tables.hctx_count() as u32).rev() {
            hmap[id as usize] = tables.intern_hctx(result.tables.hctx_elems(HCtxId(id)));
        }
        let mut twin = result.clone();
        twin.tables = tables;
        let d = twin.cs_dump.as_mut().unwrap();
        for t in &mut d.var_points_to {
            t.1 = cmap[t.1 .0 as usize];
            t.3 = hmap[t.3 .0 as usize];
        }
        for t in &mut d.call_graph {
            t.1 = cmap[t.1 .0 as usize];
            t.3 = cmap[t.3 .0 as usize];
        }
        for t in &mut d.reachable {
            t.1 = cmap[t.1 .0 as usize];
        }

        let a = analyze_taint(&p, &spec, &result).unwrap();
        let b = analyze_taint(&p, &spec, &twin).unwrap();
        assert_eq!(a.leak_set(), b.leak_set());
        assert_eq!(a.sanitizer_calls, b.sanitizer_calls);
        for (la, lb) in a.leaks.iter().zip(&b.leaks) {
            assert_eq!(la.trace, lb.trace, "traces must be engine-invariant");
            assert_eq!(la.heap_steps, lb.heap_steps);
            assert_eq!(la.merged_heap_step, lb.merged_heap_step);
        }
    }

    #[test]
    fn heap_flow_is_tracked_with_trace() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let f = b.field(obj, "f");
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let snk = b.method(kit, "exec", &["a"], true);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let bx = b.var(main, "bx");
        let u = b.var(main, "u");
        b.scall(main, Some(t), src, &[]);
        b.alloc(main, bx, obj);
        b.store(main, bx, f, t);
        b.load(main, u, bx, f);
        b.scall(main, None, snk, &[u]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sink(snk, None);
        let result = run(&p, true);
        let taint = analyze_taint(&p, &spec, &result).unwrap();
        assert_eq!(taint.leaks.len(), 1);
        assert_eq!(taint.leaks[0].heap_steps, 1);
        assert!(taint.leaks[0].trace.iter().any(|s| s.contains(".f")));
    }
}
