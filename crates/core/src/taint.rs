//! Context-sensitive taint analysis, layered on the points-to substrate.
//!
//! Taint is labeled reachability over the value flows the solver has
//! already resolved: a *source* call site labels its return value, labels
//! propagate through `move`/`cast`/`return`, across calls with the active
//! context policy (arguments, receivers, returns), through the heap via the
//! context-sensitive field-points-to resolution of `load`/`store` base
//! variables, and through static fields. *Sanitizers* strip taint at their
//! return (values still flow *into* a sanitizer body). A *sink* records a
//! leak when a labeled value reaches one of its checked arguments.
//!
//! Given a fixed points-to result, every taint rule is linear in the
//! `TAINTED*` relations, so the least fixpoint is plain graph reachability.
//! [`analyze_taint`] therefore builds one propagation graph over
//! `(variable, context)`, `(heap object, field)` and global nodes from the
//! solver's context-sensitive dump and runs one breadth-first search per
//! source label — which also yields, for free, a *shortest* derivation
//! trace for each leak. The Datalog reference model in `rudoop-datalog`
//! evaluates the same rules declaratively; the differential suite asserts
//! the two produce byte-identical leak sets.
//!
//! Precision and soundness: a coarser context policy (including one coarsened
//! by introspective refinement) merges contexts and heap contexts, which can
//! only grow the points-to relations and hence the propagation graph — so
//! the leak set is monotone: `leaks(2objH) ⊆ leaks(introspective 2objH) ⊆
//! leaks(insensitive)`. Reported leaks may be false positives; absence of a
//! leak is a guarantee of the abstraction.

use std::fmt;

use rudoop_ir::{
    AllocId, FieldId, GlobalId, Instruction, InvokeId, InvokeKind, MethodId, Program, TaintSpec,
    VarId,
};

use crate::context::{CtxId, CtxTables, HCtxId};
use crate::hash::{FxHashMap, FxHashSet};
use crate::solver::PointsToResult;
use crate::supervisor::SupervisedRun;

/// One taint propagation node: a variable under a calling context, a field
/// of a context-qualified heap object, or a static field slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Var(VarId, CtxId),
    Field(AllocId, HCtxId, FieldId),
    Global(GlobalId),
}

/// One source→sink flow found by [`analyze_taint`].
#[derive(Debug, Clone)]
pub struct Leak {
    /// The source call site whose return value reached the sink.
    pub source: InvokeId,
    /// The sink call site.
    pub sink: InvokeId,
    /// Which argument of the sink received the tainted value.
    pub sink_arg: u32,
    /// The source method the source call resolves to.
    pub source_method: MethodId,
    /// The sink method the sink call resolves to.
    pub sink_method: MethodId,
    /// Shortest derivation: one rendered propagation node per step, from
    /// the source's return value to the sink argument.
    pub trace: Vec<String>,
    /// How many heap steps (field or static-field nodes) the trace crosses.
    pub heap_steps: usize,
    /// Whether some heap step crossed an object whose heap context was
    /// merged to the empty context (context collapse, e.g. by introspective
    /// refinement or an insensitive rung).
    pub merged_heap_step: bool,
}

impl Leak {
    /// One-line human-readable summary of the flow.
    pub fn headline(&self, program: &Program) -> String {
        format!(
            "{} -> {} (arg {})",
            program.method_display(self.source_method),
            program.method_display(self.sink_method),
            self.sink_arg
        )
    }
}

/// The output of [`analyze_taint`]: deterministic leak reports plus the
/// sanitizer observations the T-series lints consume.
#[derive(Debug, Clone)]
pub struct TaintResult {
    /// `analysis` name of the underlying points-to run.
    pub analysis: String,
    /// All leaks, sorted by `(source, sink, sink_arg)`; at most one leak
    /// (the shortest) per such triple.
    pub leaks: Vec<Leak>,
    /// Every reachable sanitizer call site, with whether any tainted value
    /// actually reached one of its arguments. Sorted by call site.
    pub sanitizer_calls: Vec<(InvokeId, bool)>,
    /// Source call sites whose taint reached some sanitizer argument,
    /// sorted. A leak from such a source *bypassed* sanitization somewhere.
    pub sanitized_sources: Vec<InvokeId>,
    /// Number of reachable source call sites that seeded a label.
    pub source_sites: usize,
    /// Number of reachable sink call sites with at least one checked
    /// argument.
    pub sink_sites: usize,
}

impl TaintResult {
    /// The context-free projection of the leak set, sorted: `(source call
    /// site, sink call site, argument)`. This is the canonical form the
    /// differential tests compare against the Datalog reference model.
    pub fn leak_set(&self) -> Vec<(InvokeId, InvokeId, u32)> {
        self.leaks
            .iter()
            .map(|l| (l.source, l.sink, l.sink_arg))
            .collect()
    }

    /// Whether a given source label was sanitized somewhere.
    pub fn source_sanitized(&self, source: InvokeId) -> bool {
        self.sanitized_sources.binary_search(&source).is_ok()
    }
}

/// Why taint analysis could not run on a points-to result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintError {
    /// The result carries no context-sensitive dump (`record_contexts` was
    /// off).
    MissingContextDump,
    /// The points-to run did not complete; propagating taint over partial
    /// facts would under-report leaks.
    IncompleteAnalysis(String),
}

impl fmt::Display for TaintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaintError::MissingContextDump => f.write_str(
                "points-to result has no context-sensitive dump (enable record_contexts)",
            ),
            TaintError::IncompleteAnalysis(name) => write!(
                f,
                "points-to run {name:?} is incomplete; refusing to report a partial leak list"
            ),
        }
    }
}

impl std::error::Error for TaintError {}

/// The outcome of running taint under the supervisor's exit contract.
#[derive(Debug, Clone)]
pub enum SupervisedTaint {
    /// Taint ran on a *complete* (possibly degraded-but-sound) rung result.
    Analyzed(TaintResult),
    /// No complete rung result was available; taint was skipped rather than
    /// reporting a partial leak list as if it were complete.
    Skipped {
        /// Human-readable explanation for the report.
        reason: String,
    },
}

impl SupervisedTaint {
    /// The analyzed result, when taint ran.
    pub fn as_analyzed(&self) -> Option<&TaintResult> {
        match self {
            SupervisedTaint::Analyzed(t) => Some(t),
            SupervisedTaint::Skipped { .. } => None,
        }
    }
}

/// Runs taint over the outcome of a supervised ladder run, honoring the
/// degradation contract: a completed rung (even a degraded one) is a sound
/// points-to abstraction and taint runs on it; an exhausted ladder yields
/// [`SupervisedTaint::Skipped`] — salvaged partial facts are never used, a
/// partial leak list must not masquerade as a complete one.
pub fn supervised_taint(
    program: &Program,
    spec: &TaintSpec,
    run: &SupervisedRun,
) -> SupervisedTaint {
    match &run.result {
        Some(result) => match analyze_taint(program, spec, result) {
            Ok(t) => SupervisedTaint::Analyzed(t),
            Err(e) => SupervisedTaint::Skipped {
                reason: e.to_string(),
            },
        },
        None => SupervisedTaint::Skipped {
            reason: format!(
                "all {} ladder rung(s) exhausted; points-to facts are partial and taint \
                 would under-report leaks",
                run.attempts.len()
            ),
        },
    }
}

/// Runs the taint client of `spec` over a completed points-to result.
///
/// The result must have been produced with
/// [`record_contexts`](crate::solver::SolverConfig::record_contexts) so the
/// context-sensitive relations are available.
///
/// # Errors
///
/// [`TaintError::MissingContextDump`] without a dump,
/// [`TaintError::IncompleteAnalysis`] when the run was cut short.
pub fn analyze_taint(
    program: &Program,
    spec: &TaintSpec,
    pts: &PointsToResult,
) -> Result<TaintResult, TaintError> {
    if !pts.outcome.is_complete() {
        return Err(TaintError::IncompleteAnalysis(pts.analysis.clone()));
    }
    let dump = pts.cs_dump.as_ref().ok_or(TaintError::MissingContextDump)?;
    let vpt = dump.var_pts_index();

    let mut reachable = dump.reachable.clone();
    reachable.sort_unstable();
    reachable.dedup();
    let mut call_graph = dump.call_graph.clone();
    call_graph.sort_unstable();
    call_graph.dedup();

    let mut graph = GraphBuilder::default();

    // Intra-procedural flows, per reachable (method, context).
    for &(meth, ctx) in &reachable {
        let m = &program.methods[meth];
        for instr in &m.body {
            match *instr {
                Instruction::Move { to, from } | Instruction::Cast { to, from, .. } => {
                    graph.edge(Node::Var(from, ctx), Node::Var(to, ctx));
                }
                Instruction::Return { var } => {
                    if let Some(ret) = m.ret {
                        graph.edge(Node::Var(var, ctx), Node::Var(ret, ctx));
                    }
                }
                Instruction::Load { to, base, field } => {
                    if let Some(objs) = vpt.get(&(base, ctx)) {
                        for &(heap, hctx) in objs {
                            graph.edge(Node::Field(heap, hctx, field), Node::Var(to, ctx));
                        }
                    }
                }
                Instruction::Store { base, field, from } => {
                    if let Some(objs) = vpt.get(&(base, ctx)) {
                        for &(heap, hctx) in objs {
                            graph.edge(Node::Var(from, ctx), Node::Field(heap, hctx, field));
                        }
                    }
                }
                Instruction::LoadGlobal { to, global } => {
                    graph.edge(Node::Global(global), Node::Var(to, ctx));
                }
                Instruction::StoreGlobal { global, from } => {
                    graph.edge(Node::Var(from, ctx), Node::Global(global));
                }
                Instruction::Alloc { .. } | Instruction::Call { .. } => {}
            }
        }
    }

    // Inter-procedural flows plus source/sink/sanitizer registration, per
    // resolved call edge.
    let mut seeds: FxHashMap<InvokeId, Vec<u32>> = FxHashMap::default();
    let mut sink_at: FxHashMap<u32, Vec<(InvokeId, u32, MethodId)>> = FxHashMap::default();
    let mut sanitizer_args: FxHashMap<InvokeId, Vec<u32>> = FxHashMap::default();
    let mut source_sites: FxHashSet<InvokeId> = FxHashSet::default();
    let mut sink_sites: FxHashSet<InvokeId> = FxHashSet::default();

    for &(invo, caller_ctx, meth, callee_ctx) in &call_graph {
        let inv = &program.invokes[invo];
        let m = &program.methods[meth];
        for (&actual, &formal) in inv.args.iter().zip(m.params.iter()) {
            graph.edge(Node::Var(actual, caller_ctx), Node::Var(formal, callee_ctx));
        }
        let base = match inv.kind {
            InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => Some(base),
            InvokeKind::Static { .. } => None,
        };
        if let (Some(base), Some(this)) = (base, m.this) {
            graph.edge(Node::Var(base, caller_ctx), Node::Var(this, callee_ctx));
        }
        if !spec.is_sanitizer(meth) {
            if let (Some(ret), Some(to)) = (m.ret, inv.result) {
                graph.edge(Node::Var(ret, callee_ctx), Node::Var(to, caller_ctx));
            }
        } else {
            let args = sanitizer_args.entry(invo).or_default();
            for &actual in &inv.args {
                args.push(graph.node(Node::Var(actual, caller_ctx)));
            }
        }
        if spec.is_source(meth) {
            if let Some(to) = inv.result {
                source_sites.insert(invo);
                seeds
                    .entry(invo)
                    .or_default()
                    .push(graph.node(Node::Var(to, caller_ctx)));
            }
        }
        for arg in spec.sink_args(meth, m.params.len()) {
            if let Some(&actual) = inv.args.get(arg as usize) {
                sink_sites.insert(invo);
                sink_at
                    .entry(graph.node(Node::Var(actual, caller_ctx)))
                    .or_default()
                    .push((invo, arg, meth));
            }
        }
    }

    let adjacency = graph.adjacency();
    for targets in sink_at.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }

    // One BFS per source label, in label order; parent pointers give the
    // shortest derivation to each sink.
    let mut labels: Vec<InvokeId> = seeds.keys().copied().collect();
    labels.sort_unstable();
    let mut san_calls: Vec<(InvokeId, Vec<u32>)> = sanitizer_args
        .into_iter()
        .map(|(invo, mut args)| {
            args.sort_unstable();
            args.dedup();
            (invo, args)
        })
        .collect();
    san_calls.sort_unstable();

    let mut leaks = Vec::new();
    let mut sanitized_sources = Vec::new();
    let mut san_hit = vec![false; san_calls.len()];

    const UNSEEN: u32 = u32::MAX;
    const SEED: u32 = u32::MAX - 1;
    let mut parent = vec![UNSEEN; graph.nodes.len()];

    for &label in &labels {
        parent.iter_mut().for_each(|p| *p = UNSEEN);
        let mut queue: Vec<u32> = seeds[&label].clone();
        queue.sort_unstable();
        queue.dedup();
        for &n in &queue {
            parent[n as usize] = SEED;
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            for &next in &adjacency[n as usize] {
                if parent[next as usize] == UNSEEN {
                    parent[next as usize] = n;
                    queue.push(next);
                }
            }
        }

        // `queue` is now the visitation order (distance-sorted); the first
        // time a (sink, arg) pair appears, its trace is shortest.
        let mut claimed: FxHashSet<(InvokeId, u32)> = FxHashSet::default();
        for &n in &queue {
            if let Some(targets) = sink_at.get(&n) {
                for &(sink, arg, sink_method) in targets {
                    if !claimed.insert((sink, arg)) {
                        continue;
                    }
                    leaks.push(build_leak(
                        program,
                        &pts.tables,
                        &graph.nodes,
                        &parent,
                        n,
                        label,
                        sink,
                        arg,
                        sink_method,
                        source_method_of(program, &call_graph, label, spec),
                    ));
                }
            }
        }
        let mut sanitized = false;
        for (i, (_, args)) in san_calls.iter().enumerate() {
            if args.iter().any(|&a| parent[a as usize] != UNSEEN) {
                san_hit[i] = true;
                sanitized = true;
            }
        }
        if sanitized {
            sanitized_sources.push(label);
        }
    }

    leaks.sort_by_key(|l| (l.source, l.sink, l.sink_arg));
    let sanitizer_calls = san_calls
        .iter()
        .zip(san_hit)
        .map(|(&(invo, _), hit)| (invo, hit))
        .collect();

    Ok(TaintResult {
        analysis: pts.analysis.clone(),
        leaks,
        sanitizer_calls,
        sanitized_sources,
        source_sites: source_sites.len(),
        sink_sites: sink_sites.len(),
    })
}

/// The source method a labeled call site resolves to (for display; any
/// resolved source target of the site, smallest id for determinism).
fn source_method_of(
    program: &Program,
    call_graph: &[(InvokeId, CtxId, MethodId, CtxId)],
    label: InvokeId,
    spec: &TaintSpec,
) -> MethodId {
    call_graph
        .iter()
        .filter(|&&(invo, _, meth, _)| invo == label && spec.is_source(meth))
        .map(|&(_, _, meth, _)| meth)
        .min()
        .unwrap_or(program.invokes[label].method)
}

#[allow(clippy::too_many_arguments)]
fn build_leak(
    program: &Program,
    tables: &CtxTables,
    nodes: &[Node],
    parent: &[u32],
    end: u32,
    source: InvokeId,
    sink: InvokeId,
    sink_arg: u32,
    sink_method: MethodId,
    source_method: MethodId,
) -> Leak {
    const SEED: u32 = u32::MAX - 1;
    let mut path = vec![end];
    let mut cur = end;
    while parent[cur as usize] != SEED {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();

    let mut heap_steps = 0;
    let mut merged_heap_step = false;
    let trace = path
        .iter()
        .map(|&n| match nodes[n as usize] {
            Node::Var(v, ctx) => {
                format!(
                    "{} {}",
                    program.var_display(v),
                    tables.display_ctx(ctx, program)
                )
            }
            Node::Field(heap, hctx, fld) => {
                heap_steps += 1;
                if tables.hctx_elems(hctx).is_empty() {
                    merged_heap_step = true;
                }
                let elems: Vec<String> = tables
                    .hctx_elems(hctx)
                    .iter()
                    .map(|e| e.to_string())
                    .collect();
                format!(
                    "new {}.{} [{}]",
                    program.classes[program.allocs[heap].class].name,
                    program.fields[fld].name,
                    elems.join(", ")
                )
            }
            Node::Global(g) => {
                heap_steps += 1;
                format!(
                    "static {}.{}",
                    program.classes[program.globals[g].class].name, program.globals[g].name
                )
            }
        })
        .collect();

    Leak {
        source,
        sink,
        sink_arg,
        source_method,
        sink_method,
        trace,
        heap_steps,
        merged_heap_step,
    }
}

/// Interned propagation graph under construction.
#[derive(Default)]
struct GraphBuilder {
    nodes: Vec<Node>,
    index: FxHashMap<Node, u32>,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    fn node(&mut self, n: Node) -> u32 {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(n);
        self.index.insert(n, i);
        i
    }

    fn edge(&mut self, from: Node, to: Node) {
        let f = self.node(from);
        let t = self.node(to);
        self.edges.push((f, t));
    }

    /// Sorted, deduplicated adjacency lists (deterministic BFS order).
    fn adjacency(&mut self) -> Vec<Vec<u32>> {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(f, t) in &self.edges {
            adj[f as usize].push(t);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Insensitive;
    use crate::solver::{analyze, SolverConfig};
    use rudoop_ir::{ClassHierarchy, ProgramBuilder};

    fn kit() -> (Program, TaintSpec) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let san = b.method(kit, "clean", &["x"], true);
        let sp = b.param(san, 0);
        b.ret(san, sp);
        let snk = b.method(kit, "exec", &["a"], true);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let c = b.var(main, "c");
        b.scall(main, Some(t), src, &[]);
        b.scall(main, Some(c), san, &[t]);
        b.scall(main, None, snk, &[t]);
        b.scall(main, None, snk, &[c]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sanitizer(san);
        spec.add_sink(snk, Some(0));
        (p, spec)
    }

    fn run(p: &Program, record: bool) -> PointsToResult {
        let h = ClassHierarchy::new(p);
        let config = SolverConfig {
            record_contexts: record,
            ..SolverConfig::default()
        };
        analyze(p, &h, &Insensitive, &config)
    }

    #[test]
    fn direct_flow_leaks_and_sanitized_flow_does_not() {
        let (p, spec) = kit();
        let result = run(&p, true);
        let taint = analyze_taint(&p, &spec, &result).unwrap();
        // Exactly one leak: the unsanitized call. The sanitized value
        // reaches the other sink call but carries no taint.
        assert_eq!(taint.leaks.len(), 1);
        let leak = &taint.leaks[0];
        assert_eq!(leak.sink_arg, 0);
        assert!(!leak.trace.is_empty());
        // The sanitizer saw the tainted value, so the source counts as
        // sanitized and the sanitizer call is live.
        assert_eq!(taint.sanitized_sources, vec![taint.leaks[0].source]);
        assert_eq!(taint.sanitizer_calls.len(), 1);
        assert!(taint.sanitizer_calls[0].1);
    }

    #[test]
    fn missing_dump_is_an_error() {
        let (p, spec) = kit();
        let result = run(&p, false);
        assert_eq!(
            analyze_taint(&p, &spec, &result).unwrap_err(),
            TaintError::MissingContextDump
        );
    }

    #[test]
    fn heap_flow_is_tracked_with_trace() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let f = b.field(obj, "f");
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let snk = b.method(kit, "exec", &["a"], true);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let bx = b.var(main, "bx");
        let u = b.var(main, "u");
        b.scall(main, Some(t), src, &[]);
        b.alloc(main, bx, obj);
        b.store(main, bx, f, t);
        b.load(main, u, bx, f);
        b.scall(main, None, snk, &[u]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sink(snk, None);
        let result = run(&p, true);
        let taint = analyze_taint(&p, &spec, &result).unwrap();
        assert_eq!(taint.leaks.len(), 1);
        assert_eq!(taint.leaks[0].heap_steps, 1);
        assert!(taint.leaks[0].trace.iter().any(|s| s.contains(".f")));
    }
}
