//! Supervisor integration tests: the degradation ladder end to end.
//!
//! The scenario mirrors the paper's evaluation shape in miniature: a
//! program on which full `2objH` blows past the budget (a hub method
//! called on many distinct receiver objects, each context replicating a
//! large points-to set), while introspective refinement — which analyzes
//! exactly the hub insensitively — completes comfortably.

use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, Budget, CancelToken, ExhaustionCause, Outcome, SolverConfig};
use rudoop_core::supervisor::{
    supervise, LadderSpec, RungKind, SupervisionVerdict, SupervisorConfig,
};
use rudoop_ir::{ClassHierarchy, Program, ProgramBuilder};

/// A hub/fan-out program: `mixer` aggregates `objs` allocation sites and
/// is fed to `consume` on `receivers` distinct receiver objects. Under
/// `2objH` each receiver context replicates the mixer's points-to set
/// (`receivers × objs` tuples); insensitively it exists once. The mixer's
/// set exceeds Heuristic A's `method_max_var_field_pts` cutoff (200), so
/// introspective-A analyzes `consume` insensitively and stays cheap.
fn hub_program(receivers: usize, objs: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let hub = b.class("Hub", Some(obj));
    let f = b.field(hub, "f");
    let consume = b.method(hub, "consume", &["x"], false);
    {
        let this = b.this(consume);
        let x = b.param(consume, 0);
        let y = b.var(consume, "y");
        b.store(consume, this, f, x);
        b.load(consume, y, this, f);
        b.ret(consume, y);
    }
    let main = b.method(obj, "main", &[], true);
    let mixer = b.var(main, "mixer");
    for i in 0..objs {
        let v = b.var(main, &format!("o{i}"));
        b.alloc(main, v, obj);
        b.mov(main, mixer, v);
    }
    for i in 0..receivers {
        let r = b.var(main, &format!("r{i}"));
        b.alloc(main, r, hub);
        b.vcall(main, None, r, "consume", &[mixer]);
    }
    b.entry(main);
    b.finish()
}

/// A budget between the introspective-A cost and the full `2objH` cost of
/// [`hub_program`]`(100, 250)`, established by the cost asserts in
/// [`ladder_degrades_to_introspective`].
const LADDER_BUDGET: u64 = 60_000;

#[test]
fn ladder_degrades_to_introspective() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);

    // Sanity-check the scenario itself: full 2objH must cost more than
    // the budget, the insensitive pass far less.
    let unbounded = SolverConfig::default();
    let full = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &unbounded);
    assert!(
        full.stats.derivations > LADDER_BUDGET,
        "2objH too cheap for the scenario: {}",
        full.stats.derivations
    );
    let insens = analyze(&program, &hierarchy, &Insensitive, &unbounded);
    assert!(
        insens.stats.derivations < LADDER_BUDGET * 3 / 4,
        "insens too costly for the scenario: {}",
        insens.stats.derivations
    );

    let cfg = SupervisorConfig {
        ladder: LadderSpec::default_for(Flavor::OBJ2H),
        budget: Budget::derivations(LADDER_BUDGET),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);

    // Rung 0 (2objH) exhausts; a later introspective rung completes.
    assert_eq!(run.attempts[0].rung.spec(), "2objH");
    assert_eq!(run.attempts[0].outcome, Outcome::BudgetExhausted);
    assert_eq!(
        run.attempts[0].exhaustion,
        Some(ExhaustionCause::Derivations)
    );
    assert_eq!(run.verdict, SupervisionVerdict::Degraded);
    let completed = run.completed_rung.expect("a rung completed");
    assert!(completed > 0);
    assert!(matches!(
        run.attempts[completed].rung.kind,
        RungKind::Introspective { .. }
    ));
    assert_eq!(run.attempts[completed].outcome, Outcome::Complete);
    assert!(run.result.is_some());
    assert_eq!(run.exit_code(), 3);

    // The insensitive first pass ran exactly once, shared across the
    // introspective rungs, and matches an independent insensitive run's
    // derivation count.
    assert_eq!(run.first_pass_runs, 1);
    let fp_stats = run.first_pass_stats.as_ref().expect("first pass ran");
    assert_eq!(fp_stats.derivations, insens.stats.derivations);
    let first_pass_rungs: Vec<usize> = run
        .attempts
        .iter()
        .enumerate()
        .filter(|(_, a)| a.ran_first_pass)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        first_pass_rungs,
        vec![1],
        "only rung 1 computes the first pass"
    );

    // Exhausted rungs still salvage facts.
    assert!(run.attempts[0].salvaged.vars_with_facts > 0);
    assert!(run.attempts[0].salvaged.reachable_methods > 0);
}

#[test]
fn supervised_run_is_reproducible() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = SupervisorConfig {
        ladder: LadderSpec::default_for(Flavor::OBJ2H),
        budget: Budget::derivations(LADDER_BUDGET),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let a = supervise(&program, &hierarchy, &cfg);
    let b = supervise(&program, &hierarchy, &cfg);

    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.completed_rung, b.completed_rung);
    assert_eq!(a.final_analysis(), b.final_analysis());
    assert_eq!(a.attempts.len(), b.attempts.len());
    for (x, y) in a.attempts.iter().zip(&b.attempts) {
        assert_eq!(x.rung.spec(), y.rung.spec());
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.exhaustion, y.exhaustion);
        assert_eq!(x.stats.canonical(), y.stats.canonical());
        assert_eq!(x.salvaged, y.salvaged);
    }
    let (ra, rb) = (a.result.unwrap(), b.result.unwrap());
    assert_eq!(ra.var_pts, rb.var_pts);
    assert_eq!(ra.call_targets, rb.call_targets);
}

#[test]
fn exhausted_partial_results_are_deterministic() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        budget: Budget::derivations(10_000),
        ..SolverConfig::default()
    };
    let a = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    let b = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert_eq!(a.outcome, Outcome::BudgetExhausted);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.exhaustion, b.exhaustion);
    assert_eq!(a.stats.canonical(), b.stats.canonical());
    assert_eq!(a.var_pts, b.var_pts, "identical partial var-points-to");
}

#[test]
fn all_rungs_exhausted_salvages_best_partial() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = SupervisorConfig {
        ladder: LadderSpec::default_for(Flavor::OBJ2H),
        // Too small even for the insensitive pass.
        budget: Budget::derivations(200),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    assert_eq!(run.verdict, SupervisionVerdict::Exhausted);
    assert_eq!(run.exit_code(), 4);
    assert!(run.result.is_none());
    assert_eq!(run.attempts.len(), 5, "every rung was attempted");
    let salvaged = run.salvaged.expect("best partial kept");
    assert!(salvaged.outcome.is_partial());
    // Even the first pass only runs once when it exhausts.
    assert_eq!(run.first_pass_runs, 1);
}

#[test]
fn complete_first_rung_is_verdict_complete() {
    let program = hub_program(4, 4);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = SupervisorConfig {
        ladder: LadderSpec::default_for(Flavor::OBJ2H),
        budget: Budget::unlimited(),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    assert_eq!(run.verdict, SupervisionVerdict::Complete);
    assert_eq!(run.completed_rung, Some(0));
    assert_eq!(run.exit_code(), 0);
    assert_eq!(run.first_pass_runs, 0, "no introspective rung ever ran");
    assert_eq!(run.attempts.len(), 1);
}

#[test]
fn tiny_node_capacity_degrades_instead_of_panicking() {
    let program = hub_program(20, 20);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        max_nodes: Some(10),
        ..SolverConfig::default()
    };
    let r = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert_eq!(r.outcome, Outcome::CapacityExceeded);
    assert_eq!(r.exhaustion, Some(ExhaustionCause::NodeTable));
}

#[test]
fn tiny_context_capacity_degrades_instead_of_panicking() {
    let program = hub_program(20, 20);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        max_contexts: Some(3),
        ..SolverConfig::default()
    };
    let r = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert_eq!(r.outcome, Outcome::CapacityExceeded);
    assert_eq!(r.exhaustion, Some(ExhaustionCause::ContextTable));
}

#[test]
fn ladder_recovers_from_capacity_exceeded() {
    let program = hub_program(20, 20);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = SupervisorConfig {
        ladder: LadderSpec::parse("2objH,insens").unwrap(),
        budget: Budget::unlimited(),
        solver: SolverConfig {
            max_contexts: Some(3),
            ..SolverConfig::default()
        },
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    // 2objH trips the context cap; insens needs no new contexts and
    // completes under the same cap.
    assert_eq!(run.attempts[0].outcome, Outcome::CapacityExceeded);
    assert_eq!(run.verdict, SupervisionVerdict::Degraded);
    assert_eq!(run.final_analysis(), Some("insens"));
}

#[test]
fn memory_budget_stops_the_solver() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig {
        budget: Budget::bytes(100_000),
        ..SolverConfig::default()
    };
    let r = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert_eq!(r.outcome, Outcome::BudgetExhausted);
    assert_eq!(r.exhaustion, Some(ExhaustionCause::Memory));
    let unbounded = analyze_flavor(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &SolverConfig::default(),
    );
    assert!(r.stats.bytes_estimate() < unbounded.stats.bytes_estimate());
}

#[test]
fn pre_cancelled_token_stops_immediately() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let token = CancelToken::new();
    token.cancel();
    let config = SolverConfig {
        cancel: Some(token),
        ..SolverConfig::default()
    };
    let r = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    assert_eq!(r.outcome, Outcome::BudgetExhausted);
    assert_eq!(r.exhaustion, Some(ExhaustionCause::Cancelled));
    assert!(r.stats.derivations < 100, "stopped at the first check");
}

#[test]
fn watchdog_enforces_wall_clock_deadline() {
    let program = hub_program(120, 400);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = SupervisorConfig {
        ladder: LadderSpec::parse("2objH").unwrap(),
        budget: Budget::duration(std::time::Duration::from_millis(30)),
        solver: SolverConfig::default(),
        watchdog: true,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    // Either the in-loop wall-clock check or the watchdog stops the rung;
    // both surface as a structured exhaustion, never a hang.
    assert_eq!(run.verdict, SupervisionVerdict::Exhausted);
    assert!(matches!(
        run.attempts[0].exhaustion,
        Some(ExhaustionCause::WallClock | ExhaustionCause::Cancelled)
    ));
}

#[test]
fn external_cancellation_skips_remaining_rungs() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let token = CancelToken::new();
    token.cancel();
    let cfg = SupervisorConfig {
        ladder: LadderSpec::default_for(Flavor::OBJ2H),
        budget: Budget::unlimited(),
        solver: SolverConfig {
            cancel: Some(token),
            ..SolverConfig::default()
        },
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    assert_eq!(run.verdict, SupervisionVerdict::Exhausted);
    assert!(
        run.attempts.is_empty(),
        "no rung started after cancellation"
    );
}

#[test]
fn ladder_spec_parses_and_round_trips() {
    let ladder = LadderSpec::parse("2objH, introB:2objH ,introA:2objH,insens").unwrap();
    assert_eq!(ladder.spec(), "2objH,introB:2objH,introA:2objH,insens");

    // `default` and the canonical expansion of a lone introspective rung.
    // The default ladder lands on cutshortcut before the insensitive
    // floor: near-insens cost, strictly better precision when cuts exist.
    assert_eq!(
        LadderSpec::parse("default").unwrap().spec(),
        "2objH,introB:2objH,introA:2objH,cutshortcut,insens"
    );
    assert_eq!(
        LadderSpec::parse("introspectiveB:2objH").unwrap().spec(),
        "2objH,introB:2objH,insens"
    );

    assert!(LadderSpec::parse("").is_err());
    assert!(LadderSpec::parse("3frob").is_err());
    assert!(LadderSpec::parse("introC:2objH").is_err());
    assert!(LadderSpec::parse("introA").is_err());
}

/// A resident service's warm insensitive pass substitutes for the shared
/// first pass: no first-pass run happens, and the outcome is identical to
/// a cold run's.
#[test]
fn warm_first_pass_is_reused_when_budget_admits_it() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let warm = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
    assert!(warm.outcome.is_complete());
    assert!(warm.stats.derivations < LADDER_BUDGET);

    let cfg = |warm_first_pass| SupervisorConfig {
        ladder: LadderSpec::parse("introA:2objH,insens").unwrap(),
        budget: Budget::derivations(LADDER_BUDGET),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass,
        warm_summaries: None,
    };
    let warm_run = supervise(&program, &hierarchy, &cfg(Some(std::sync::Arc::new(warm))));
    let cold_run = supervise(&program, &hierarchy, &cfg(None));

    assert_eq!(warm_run.first_pass_runs, 0, "the warm pass was reused");
    assert_eq!(cold_run.first_pass_runs, 1, "the cold run computed its own");
    assert_eq!(warm_run.verdict, cold_run.verdict);
    assert_eq!(warm_run.completed_rung, cold_run.completed_rung);
    let (w, c) = (
        warm_run.result.expect("warm run completed"),
        cold_run.result.expect("cold run completed"),
    );
    assert_eq!(w.analysis, c.analysis);
    assert_eq!(
        w.stats.canonical(),
        c.stats.canonical(),
        "warm reuse must not change the result"
    );
    assert_eq!(w.var_pts, c.var_pts, "projections identical");
}

/// A warm pass whose recorded cost exceeds this run's budget is *not*
/// admitted: the run recomputes (and exhausts) exactly where a cold run
/// would, keeping warm and cold byte-identical under any budget.
#[test]
fn warm_first_pass_is_rejected_when_budget_would_not_admit_it() {
    let program = hub_program(100, 250);
    let hierarchy = ClassHierarchy::new(&program);
    let warm = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
    assert!(warm.outcome.is_complete());
    let tight = warm.stats.derivations - 1;

    let cfg = |warm_first_pass| SupervisorConfig {
        ladder: LadderSpec::parse("introA:2objH,insens").unwrap(),
        budget: Budget::derivations(tight),
        solver: SolverConfig::default(),
        watchdog: false,
        warm_first_pass,
        warm_summaries: None,
    };
    let warm_run = supervise(&program, &hierarchy, &cfg(Some(std::sync::Arc::new(warm))));
    let cold_run = supervise(&program, &hierarchy, &cfg(None));

    assert_eq!(
        warm_run.first_pass_runs, 1,
        "an inadmissible warm pass must not be reused"
    );
    assert_eq!(cold_run.first_pass_runs, 1);
    assert_eq!(warm_run.verdict, cold_run.verdict);
    assert_eq!(warm_run.attempts.len(), cold_run.attempts.len());
    for (w, c) in warm_run.attempts.iter().zip(&cold_run.attempts) {
        assert_eq!(w.outcome, c.outcome);
        assert_eq!(w.exhaustion, c.exhaustion);
    }
}
