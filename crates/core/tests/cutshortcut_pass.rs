//! Pass-in-isolation tests for the cut-shortcut pre-analysis: the pass is
//! a pure function of the IL, so its rendered summary is pinned to golden
//! text on two seeded programs, and determinism is asserted directly —
//! two independent runs (traced or not) must render byte-identically.

use rudoop_core::cutshortcut::CutSummary;
use rudoop_core::solver::SolverConfig;
use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::{Program, ProgramBuilder};

/// Seed 1: a box class whose accessors all match a cut pattern — static
/// identity, virtual setter, virtual getter — plus a `main` that wires
/// them together.
fn accessors_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let box_c = b.class("Box", Some(obj));
    let f = b.field(box_c, "val");
    let id_m = b.method(obj, "id", &["x"], true);
    let xp = b.param(id_m, 0);
    b.ret(id_m, xp);
    let set_m = b.method(box_c, "set", &["v"], false);
    let st = b.this(set_m);
    let sv = b.param(set_m, 0);
    b.store(set_m, st, f, sv);
    let get_m = b.method(box_c, "get", &[], false);
    let gt = b.this(get_m);
    let gr = b.var(get_m, "r");
    b.load(get_m, gr, gt, f);
    b.ret(get_m, gr);
    let main = b.method(obj, "main", &[], true);
    let bx = b.var(main, "bx");
    let item = b.var(main, "item");
    let same = b.var(main, "same");
    let out = b.var(main, "out");
    b.alloc(main, bx, box_c);
    b.alloc(main, item, obj);
    b.scall(main, Some(same), id_m, &[item]);
    b.vcall(main, None, bx, "set", &[same]);
    b.vcall(main, Some(out), bx, "get", &[]);
    b.entry(main);
    b.finish()
}

/// Seed 2: one cuttable identity next to two near-misses — a parameter
/// that escapes into a foreign field, and an identity whose result is
/// never reachable from the parameter (dead-end, must be rejected).
fn near_miss_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let holder = b.class("Holder", Some(obj));
    let f = b.field(holder, "held");
    let id_m = b.method(obj, "pass", &["x"], true);
    let xp = b.param(id_m, 0);
    b.ret(id_m, xp);
    let keep_m = b.method(obj, "keep", &["x"], true);
    let kx = b.param(keep_m, 0);
    let kh = b.var(keep_m, "h");
    b.alloc(keep_m, kh, holder);
    b.store(keep_m, kh, f, kx);
    b.ret(keep_m, kh);
    let fresh_m = b.method(obj, "fresh", &["x"], true);
    let _fx = b.param(fresh_m, 0);
    let fr = b.var(fresh_m, "r");
    b.alloc(fresh_m, fr, obj);
    b.ret(fresh_m, fr);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    let r3 = b.var(main, "r3");
    b.alloc(main, a, obj);
    b.scall(main, Some(r1), id_m, &[a]);
    b.scall(main, Some(r2), keep_m, &[a]);
    b.scall(main, Some(r3), fresh_m, &[a]);
    b.entry(main);
    b.finish()
}

#[test]
fn golden_summary_for_the_accessors_program() {
    let program = accessors_program();
    let summary = CutSummary::compute(&program);
    assert_eq!(
        summary.render(&program),
        "cut Object.id/1#arg0 (Object.id/1::x): identity; shortcut arg -> result\n\
         cut Box.set/1#arg0 (Box.set/1::v): setter of .val; shortcut arg -> receiver.val\n\
         cut Box.get/0#ret: getter of .val; shortcut receiver.val -> result\n\
         stats: methods=4 with_cuts=3 identity=1 setter=1 getter=1 \
         flow_copy_edges=2 flow_uses=7\n"
    );
}

#[test]
fn golden_summary_for_the_near_miss_program() {
    let program = near_miss_program();
    let summary = CutSummary::compute(&program);
    // `keep` (escaping parameter) and `fresh` (dead-end parameter) must
    // both be rejected; only `pass` survives.
    assert_eq!(
        summary.render(&program),
        "cut Object.pass/1#arg0 (Object.pass/1::x): identity; shortcut arg -> result\n\
         stats: methods=4 with_cuts=1 identity=1 setter=0 getter=0 \
         flow_copy_edges=3 flow_uses=5\n"
    );
}

#[test]
fn pass_is_deterministic_on_seeded_programs() {
    let shape = ProgramShape::default();
    let mut with_cuts = 0usize;
    for seed in 0..12u64 {
        let program = generate(&shape, seed);
        let first = CutSummary::compute(&program).render(&program);
        let second = CutSummary::compute(&program).render(&program);
        assert_eq!(first, second, "seed {seed}: two runs disagree");
        // The traced entry point (what the flavor driver calls) must be
        // the same pure function, telemetry aside.
        let cfg = SolverConfig::default();
        let traced = CutSummary::compute_traced(&program, &cfg.telemetry).render(&program);
        assert_eq!(first, traced, "seed {seed}: traced run disagrees");
        if !CutSummary::compute(&program).is_empty() {
            with_cuts += 1;
        }
    }
    // The battery must not be vacuous: the generator's accessor shapes
    // give most seeds at least one cut.
    assert!(with_cuts >= 1, "no seeded program had any cuts");
}
