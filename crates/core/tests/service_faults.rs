//! Fault-injection end-to-end tests for the resident analysis service.
//!
//! Every test spawns a real in-process [`Server`] on a loopback port and
//! talks to it over actual TCP — the same code path `rudoopd` runs. The
//! faults come from the deterministic `--inject` plan, so each scenario
//! reproduces exactly: a flaky fault test is worse than no fault test.
//!
//! The robustness claims pinned here:
//!
//! - a malformed or truncated frame poisons only its own connection,
//! - protocol fuzz (seeded) never takes the listener down,
//! - a mid-rung cancellation still salvages partial facts,
//! - a shed-then-retried request gets a response byte-identical to an
//!   uncontended one,
//! - garbage and truncated response frames are retried by the client,
//! - client disconnect cancels the in-flight analysis,
//! - tight budgets degrade down the ladder with the 0/3/4 contract.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rudoop_core::service::client::{query_with_retry, send_once, RetryPolicy};
use rudoop_core::service::faults::FaultPlan;
use rudoop_core::service::protocol::{
    self, BudgetSpec, FrameError, QueryRequest, Request, Response, MAX_RESPONSE_FRAME,
};
use rudoop_core::service::server::{Server, ServerHandle};
use rudoop_core::service::{ServiceConfig, ServiceState};
use rudoop_ir::rng::SplitMix64;
use rudoop_workloads::dacapo;

/// Spawns a server over `benchmark`, returning the handle plus the shared
/// state (tests poll its admission gate and counters).
fn service(benchmark: &str, config: ServiceConfig) -> (ServerHandle, Arc<ServiceState>, String) {
    let program = dacapo::by_name(benchmark).expect("known benchmark").build();
    let state = Arc::new(ServiceState::new(program, config));
    let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").expect("bind loopback");
    let handle = server.spawn().expect("spawn server thread");
    let addr = handle.addr().to_string();
    (handle, state, addr)
}

/// A fast query: insensitive stats (the insensitive rung completes in
/// milliseconds on the small benchmarks).
fn quick_stats() -> Request {
    Request::Query(QueryRequest {
        kind: "stats".to_owned(),
        ladder: Some("insens".to_owned()),
        ..QueryRequest::default()
    })
}

/// A slow query: the full `2objH` rung, which runs long enough on
/// `hsqldb` for cancellation to land mid-rung.
fn slow_stats() -> Request {
    Request::Query(QueryRequest {
        kind: "stats".to_owned(),
        ladder: Some("2objH".to_owned()),
        ..QueryRequest::default()
    })
}

fn expect_doc(response: Response) -> (String, u8, String) {
    match response {
        Response::Doc {
            status,
            exit_code,
            doc,
            ..
        } => (status, exit_code, doc),
        other => panic!("expected a doc response, got {other:?}"),
    }
}

#[test]
fn malformed_frame_poisons_only_its_own_connection() {
    let (handle, _state, addr) = service("antlr", ServiceConfig::default());

    // A healthy connection, opened first.
    let mut healthy = TcpStream::connect(&addr).expect("connect");
    protocol::write_frame(&mut healthy, Request::Ping.render().as_bytes()).unwrap();
    let payload = protocol::read_frame(&mut healthy, MAX_RESPONSE_FRAME).unwrap();
    assert_eq!(Response::parse(&payload).unwrap(), Response::Ok);

    // A hostile connection: a length prefix far over the request cap.
    let mut hostile = TcpStream::connect(&addr).expect("connect");
    hostile.write_all(&u32::MAX.to_be_bytes()).unwrap();
    hostile.flush().unwrap();
    let payload = protocol::read_frame(&mut hostile, MAX_RESPONSE_FRAME).unwrap();
    match Response::parse(&payload).unwrap() {
        Response::Error { message } => {
            assert!(message.contains("oversized frame"), "got: {message}")
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The hostile connection is dropped: framing is no longer trusted.
    assert_eq!(
        protocol::read_frame(&mut hostile, MAX_RESPONSE_FRAME),
        Err(FrameError::Closed)
    );

    // The healthy connection — and fresh ones — keep serving.
    protocol::write_frame(&mut healthy, quick_stats().render().as_bytes()).unwrap();
    let payload = protocol::read_frame(&mut healthy, MAX_RESPONSE_FRAME).unwrap();
    let (status, exit_code, doc) = expect_doc(Response::parse(&payload).unwrap());
    assert_eq!((status.as_str(), exit_code), ("complete", 0));
    assert!(!doc.is_empty());
    let fresh = send_once(&addr, &Request::Ping).expect("fresh connection");
    assert_eq!(fresh, Response::Ok);
    handle.stop();
}

#[test]
fn truncated_frame_gets_a_typed_error() {
    let (handle, _state, addr) = service("antlr", ServiceConfig::default());
    let mut stream = TcpStream::connect(&addr).expect("connect");
    // Promise 100 payload bytes, deliver 10, then half-close.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 10]).unwrap();
    stream.flush().unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let payload = protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME).unwrap();
    match Response::parse(&payload).unwrap() {
        Response::Error { message } => assert!(
            message.contains("truncated frame: got 10 of 100 byte(s)"),
            "got: {message}"
        ),
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert_eq!(
        protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME),
        Err(FrameError::Closed)
    );
    handle.stop();
}

/// Seeded protocol fuzz: well-framed garbage payloads. Framing stays
/// intact, so the server must answer each with a typed error and keep
/// the connection — and the listener — alive throughout.
#[test]
fn seeded_protocol_fuzz_leaves_the_daemon_serving() {
    let (handle, _state, addr) = service("antlr", ServiceConfig::default());
    let mut rng = SplitMix64::new(0xF422_F422);
    for round in 0..40 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let len = rng.below(48);
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        protocol::write_frame(&mut stream, &garbage).unwrap();
        let payload = protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME)
            .unwrap_or_else(|e| panic!("round {round}: no response to fuzz frame: {e}"));
        assert!(
            matches!(Response::parse(&payload), Ok(Response::Error { .. })),
            "round {round}: fuzz frame must yield a typed error"
        );
        // Intact framing means the connection survives its bad payload.
        protocol::write_frame(&mut stream, Request::Ping.render().as_bytes()).unwrap();
        let payload = protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME).unwrap();
        assert_eq!(Response::parse(&payload).unwrap(), Response::Ok);
    }
    // After the storm the daemon still runs real queries.
    let response = send_once(&addr, &quick_stats()).expect("query after fuzz");
    let (status, _, doc) = expect_doc(response);
    assert_eq!(status, "complete");
    assert!(!doc.is_empty());
    handle.stop();
}

#[test]
fn mid_rung_cancel_salvages_partial_facts() {
    let config = ServiceConfig {
        faults: FaultPlan::parse(&["cancel-mid-rung@req=1".to_owned()]).unwrap(),
        ..ServiceConfig::default()
    };
    let (handle, _state, addr) = service("hsqldb", config);
    let response = send_once(&addr, &slow_stats()).expect("cancelled query still answers");
    let (status, exit_code, doc) = expect_doc(response);
    assert_eq!(
        (status.as_str(), exit_code),
        ("exhausted", 4),
        "a lone cancelled rung must report exhaustion"
    );
    assert!(
        !doc.is_empty(),
        "the stats document must render over the salvaged partial facts"
    );
    // The fault targeted request 1 only: request 2 completes normally.
    let response = send_once(&addr, &quick_stats()).expect("follow-up query");
    assert_eq!(expect_doc(response).0, "complete");
    handle.stop();
}

/// The headline robustness property: a request shed under load and
/// retried by the client returns a response byte-identical to the same
/// query served with no contention at all.
#[test]
fn shed_then_retry_returns_byte_identical_response() {
    let config = ServiceConfig {
        workers: 1,
        queue: 0,
        faults: FaultPlan::parse(&["stall-ms=400@req=1".to_owned()]).unwrap(),
        ..ServiceConfig::default()
    };
    let (handle, state, addr) = service("antlr", config);

    // Occupy the only worker slot: the stalled request holds it for
    // 400ms before its (fast) analysis even starts.
    let mut blocker = TcpStream::connect(&addr).expect("connect");
    protocol::write_frame(&mut blocker, quick_stats().render().as_bytes()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while state.admission().occupancy().0 == 0 {
        assert!(Instant::now() < deadline, "blocker was never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The contended request: shed at least once, then retried to success.
    let policy = RetryPolicy {
        retries: 5,
        base_ms: 400,
        cap_ms: 2_000,
        seed: 9,
    };
    let outcome = query_with_retry(&addr, &quick_stats(), &policy, &None).expect("retry succeeds");
    assert!(outcome.attempts >= 2, "the first attempt must be shed");
    assert_eq!(outcome.delays_ms.len() as u32, outcome.attempts - 1);
    for (i, d) in outcome.delays_ms.iter().enumerate() {
        assert!(
            *d >= 25,
            "delay {i} ({d}ms) ignored the retry_after_ms floor"
        );
    }
    assert!(state.counters.shed.load(Ordering::Relaxed) >= 1);

    // Drain the blocker, then fetch the uncontended reference response.
    let payload = protocol::read_frame(&mut blocker, MAX_RESPONSE_FRAME).unwrap();
    assert_eq!(expect_doc(Response::parse(&payload).unwrap()).0, "complete");
    let reference = send_once(&addr, &quick_stats()).expect("uncontended query");
    assert_eq!(
        outcome.response.render(),
        reference.render(),
        "shed-then-retried response must be byte-identical to the uncontended one"
    );
    handle.stop();
}

#[test]
fn garbage_response_frame_is_retried_to_success() {
    let config = ServiceConfig {
        faults: FaultPlan::parse(&["garbage-frame@req=1".to_owned()]).unwrap(),
        ..ServiceConfig::default()
    };
    let (handle, _state, addr) = service("antlr", config);
    let policy = RetryPolicy {
        retries: 3,
        base_ms: 10,
        cap_ms: 50,
        seed: 3,
    };
    let outcome = query_with_retry(&addr, &quick_stats(), &policy, &None)
        .expect("garbage frame must be survivable");
    assert_eq!(
        outcome.attempts, 2,
        "exactly the garbled attempt is retried"
    );
    assert_eq!(expect_doc(outcome.response).0, "complete");
    handle.stop();
}

#[test]
fn truncated_response_poisons_only_that_connection() {
    let config = ServiceConfig {
        faults: FaultPlan::parse(&["drop-after-bytes=6@req=1".to_owned()]).unwrap(),
        ..ServiceConfig::default()
    };
    let (handle, _state, addr) = service("antlr", config);

    // Request 1: the response frame dies 6 bytes in (4 header + 2 payload).
    let mut stream = TcpStream::connect(&addr).expect("connect");
    protocol::write_frame(&mut stream, quick_stats().render().as_bytes()).unwrap();
    match protocol::read_frame(&mut stream, MAX_RESPONSE_FRAME) {
        Err(FrameError::Truncated { got: 2, .. }) => {}
        other => panic!("expected a 2-byte truncated payload, got {other:?}"),
    }

    // Request 2, fresh connection: untouched. And the client-side retry
    // loop handles the whole exchange on its own.
    let response = send_once(&addr, &quick_stats()).expect("fresh connection");
    assert_eq!(expect_doc(response).0, "complete");
    handle.stop();
}

#[test]
fn client_disconnect_cancels_the_inflight_request() {
    let config = ServiceConfig {
        workers: 1,
        queue: 0,
        ..ServiceConfig::default()
    };
    let (handle, state, addr) = service("hsqldb", config);

    // Send a slow query, wait for admission, then hang up.
    let stream = TcpStream::connect(&addr).expect("connect");
    {
        let mut stream = &stream;
        protocol::write_frame(&mut stream, slow_stats().render().as_bytes()).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.admission().occupancy().0 == 0 {
        assert!(Instant::now() < deadline, "query was never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(stream);

    // The disconnect monitor cancels the token; the supervised run winds
    // down as non-complete, which the degraded counter records. Without
    // cancellation a full 2objH on hsqldb would hold the slot far longer.
    let deadline = Instant::now() + Duration::from_secs(60);
    while state.counters.degraded.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the in-flight request"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The worker slot came back: a fresh query is admitted and served.
    let response = send_once(&addr, &quick_stats()).expect("slot was released");
    assert_eq!(expect_doc(response).0, "complete");
    handle.stop();
}

/// Per-request budgets degrade down the ladder: a derivation cap sized
/// for the insensitive rung but far below `2objH` yields the degraded
/// verdict (exit 3) with the insensitive rung's document.
#[test]
fn tight_budget_degrades_down_the_ladder() {
    let (handle, state, addr) = service("hsqldb", ServiceConfig::default());
    let warm = state.warm_first_pass().expect("warm pass completed");
    let request = Request::Query(QueryRequest {
        kind: "stats".to_owned(),
        ladder: Some("2objH,insens".to_owned()),
        budget: BudgetSpec {
            derivations: Some(warm.stats.derivations * 4),
            ..BudgetSpec::default()
        },
        ..QueryRequest::default()
    });
    let response = send_once(&addr, &request).expect("budgeted query");
    match response {
        Response::Doc {
            status,
            exit_code,
            analysis,
            doc,
        } => {
            assert_eq!((status.as_str(), exit_code), ("degraded", 3));
            assert_eq!(analysis.as_deref(), Some("insens"));
            assert!(!doc.is_empty());
        }
        other => panic!("expected a degraded doc, got {other:?}"),
    }
    handle.stop();
}

/// The warm summary cache: the first `summaries` query computes the
/// bottom-up table (one miss), every later one reuses it (hits) — the
/// daemon's first *context-sensitive* warm artifact. The table is a pure
/// function of the resident program, so warm responses are byte-identical
/// to the cold one, and non-summaries queries never touch the cache.
#[test]
fn warm_summary_cache_serves_repeated_queries() {
    let (handle, state, addr) = service("antlr", ServiceConfig::default());

    // A non-summaries query leaves the cache untouched.
    let response = send_once(&addr, &quick_stats()).expect("insens query");
    assert_eq!(expect_doc(response).0, "complete");
    assert_eq!(state.counters.summary_cache_hits.load(Ordering::SeqCst), 0);
    assert_eq!(
        state.counters.summary_cache_misses.load(Ordering::SeqCst),
        0
    );

    let summaries_stats = || {
        Request::Query(QueryRequest {
            kind: "stats".to_owned(),
            ladder: Some("summaries".to_owned()),
            ..QueryRequest::default()
        })
    };

    // Cold: the table is computed and cached — exactly one miss.
    let cold = send_once(&addr, &summaries_stats()).expect("cold summaries query");
    let (status, exit_code, cold_doc) = expect_doc(cold);
    assert_eq!((status.as_str(), exit_code), ("complete", 0));
    assert_eq!(state.counters.summary_cache_hits.load(Ordering::SeqCst), 0);
    assert_eq!(
        state.counters.summary_cache_misses.load(Ordering::SeqCst),
        1
    );

    // Warm: served from the cached table, byte-identical documents.
    for round in 1..=2u64 {
        let warm = send_once(&addr, &summaries_stats()).expect("warm summaries query");
        let (status, exit_code, warm_doc) = expect_doc(warm);
        assert_eq!((status.as_str(), exit_code), ("complete", 0));
        assert_eq!(
            warm_doc, cold_doc,
            "warm summaries run must reproduce the cold document byte for byte"
        );
        assert_eq!(
            state.counters.summary_cache_hits.load(Ordering::SeqCst),
            round
        );
        assert_eq!(
            state.counters.summary_cache_misses.load(Ordering::SeqCst),
            1,
            "the table is computed at most once per resident program"
        );
    }
    handle.stop();
}
