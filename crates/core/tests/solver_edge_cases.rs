//! Solver edge cases beyond the unit suite: special calls, dead dispatch,
//! argument-arity clamping, duration budgets, heap-context depth, and the
//! interaction of introspective policies with special/static calls.

use std::time::Duration;

use rudoop_core::policy::{
    CallSiteSensitive, ContextPolicy, Insensitive, Introspective, ObjectSensitive, RefinementSet,
};
use rudoop_core::solver::{analyze, Budget, SolverConfig};
use rudoop_core::{CtxTables, HCtxId};
use rudoop_ir::{ClassHierarchy, Program, ProgramBuilder};

fn run(p: &Program, policy: &dyn ContextPolicy) -> rudoop_core::PointsToResult {
    let h = ClassHierarchy::new(p);
    analyze(p, &h, policy, &SolverConfig::default())
}

/// Special (constructor-style) calls bind `this` and flow arguments.
#[test]
fn special_calls_bind_this_and_arguments() {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let node = b.class("Node", Some(obj));
    let f = b.field(node, "next");
    let init = b.method(node, "init", &["n"], false);
    {
        let this = b.this(init);
        let n = b.param(init, 0);
        b.store(init, this, f, n);
    }
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let out = b.var(main, "out");
    b.alloc(main, a, node);
    let hc = b.alloc(main, c, node);
    b.specialcall(main, None, a, init, &[c]);
    b.load(main, out, a, f);
    b.entry(main);
    let p = b.finish();
    let r = run(&p, &Insensitive);
    assert_eq!(r.points_to(out), &[hc]);
}

/// A virtual call whose receiver class has no matching method is dead
/// dispatch: no edge, no crash, no reachability.
#[test]
fn dead_dispatch_is_silently_dropped() {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let a = b.class("A", Some(obj));
    let other = b.class("Other", Some(obj));
    let m = b.method(other, "only_on_other", &[], false);
    let main = b.method(obj, "main", &[], true);
    let x = b.var(main, "x");
    b.alloc(main, x, a);
    b.vcall(main, None, x, "only_on_other", &[]);
    b.entry(main);
    let p = b.finish();
    let r = run(&p, &Insensitive);
    assert!(r.outcome.is_complete());
    assert!(!r.reachable_methods.contains(m));
}

/// Wall-clock budgets terminate runs (can't assert exhaustion on a fast
/// machine, but the configuration path must work and complete programs
/// must still complete).
#[test]
fn duration_budget_is_accepted() {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let main = b.method(obj, "main", &[], true);
    let x = b.var(main, "x");
    b.alloc(main, x, obj);
    b.entry(main);
    let p = b.finish();
    let h = ClassHierarchy::new(&p);
    let config = SolverConfig {
        budget: Budget::duration(Duration::from_secs(60)),
        ..SolverConfig::default()
    };
    let r = analyze(&p, &h, &Insensitive, &config);
    assert!(r.outcome.is_complete());
}

/// Heap-context depth beyond 1 separates objects allocated by the same
/// site under different allocator contexts.
#[test]
fn deep_heap_contexts_distinguish_allocator_chains() {
    // wrapper.make() allocates an Inner; wrappers come from two sites.
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let wrapper = b.class("Wrapper", Some(obj));
    let inner = b.class("Inner", Some(obj));
    let make = b.method(wrapper, "make", &[], false);
    {
        let r = b.var(make, "r");
        b.alloc(make, r, inner);
        b.ret(make, r);
    }
    let main = b.method(obj, "main", &[], true);
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    let i1 = b.var(main, "i1");
    let i2 = b.var(main, "i2");
    b.alloc(main, w1, wrapper);
    b.alloc(main, w2, wrapper);
    b.vcall(main, Some(i1), w1, "make", &[]);
    b.vcall(main, Some(i2), w2, "make", &[]);
    b.entry(main);
    let p = b.finish();
    let h = ClassHierarchy::new(&p);
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let r = analyze(&p, &h, &ObjectSensitive::new(1, 1), &config);
    // The Inner allocations should carry two distinct heap contexts (one
    // per wrapper), visible in the context-sensitive dump.
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let inner_hctxs: std::collections::BTreeSet<HCtxId> = dump
        .var_points_to
        .iter()
        .filter(|&&(v, _, _, _)| v == i1 || v == i2)
        .map(|&(_, _, _, hc)| hc)
        .collect();
    assert_eq!(inner_hctxs.len(), 2, "one heap context per wrapper");
}

/// Introspective refinement decisions apply to special and static calls
/// exactly as to virtual ones.
#[test]
fn introspective_exclusion_covers_special_and_static_calls() {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let helper = b.method(obj, "helper", &["x"], true);
    {
        let x = b.param(helper, 0);
        b.ret(helper, x);
    }
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    let h1 = b.alloc(main, a, obj);
    let h2 = b.alloc(main, c, obj);
    b.scall(main, Some(r1), helper, &[a]);
    b.scall(main, Some(r2), helper, &[c]);
    b.entry(main);
    let p = b.finish();

    // Excluding the helper method collapses both call sites even under a
    // call-site-sensitive refined policy.
    let mut refinement = RefinementSet::refine_all(&p);
    refinement.no_refine_methods.insert(helper);
    let policy = Introspective::new(Insensitive, CallSiteSensitive::new(2, 1), refinement, "t");
    let r = run(&p, &policy);
    assert_eq!(r.points_to(r1), &[h1, h2], "collapsed like insens");
    assert_eq!(r.points_to(r2), &[h1, h2]);

    // With everything refined, the two sites separate.
    let policy = Introspective::new(
        Insensitive,
        CallSiteSensitive::new(2, 1),
        RefinementSet::refine_all(&p),
        "t",
    );
    let r = run(&p, &policy);
    assert_eq!(r.points_to(r1), &[h1]);
    assert_eq!(r.points_to(r2), &[h2]);
}

/// Context tables deduplicate across policies sharing a run.
#[test]
fn context_tables_shared_between_default_and_refined() {
    let mut tables = CtxTables::new();
    let refined = CallSiteSensitive::new(2, 1);
    let c1 = refined.merge_static(
        &mut tables,
        rudoop_ir::InvokeId(3),
        rudoop_ir::MethodId(0),
        rudoop_core::CtxId::EMPTY,
    );
    let c2 = refined.merge_static(
        &mut tables,
        rudoop_ir::InvokeId(3),
        rudoop_ir::MethodId(0),
        rudoop_core::CtxId::EMPTY,
    );
    assert_eq!(c1, c2);
    assert_eq!(tables.ctx_count(), 2); // empty + one interned
}

/// Self-move and self-edges are harmless.
#[test]
fn self_moves_do_not_loop() {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let main = b.method(obj, "main", &[], true);
    let x = b.var(main, "x");
    b.mov(main, x, x);
    b.alloc(main, x, obj);
    b.mov(main, x, x);
    b.entry(main);
    let p = b.finish();
    let r = run(&p, &Insensitive);
    assert!(r.outcome.is_complete());
    assert_eq!(r.points_to(x).len(), 1);
}
