//! Parse ↔ render round-trip property for ladder specs.
//!
//! `LadderSpec::spec` documents itself as "accepted back by parse", so
//! that contract gets a seeded property test: generated specs survive a
//! `parse → spec` round trip byte-for-byte, and a second `parse` of the
//! rendered form is a fixpoint. Duplicate and conflicting `@tN` thread
//! overrides must be rejected with an error naming both character
//! spans — never resolved last-wins, which would silently mask a typo.

use rudoop_core::driver::Flavor;
use rudoop_core::supervisor::{LadderSpec, RungSpec};
use rudoop_ir::rng::SplitMix64;

const FLAVORS: [&str; 9] = [
    "insens",
    "cutshortcut",
    "summaries",
    "1call",
    "2callH",
    "1objH",
    "2objH",
    "2typeH",
    "S2objH",
];

/// One random rung spec string (flavor, optional heuristic, optional
/// thread override) in its canonical rendering.
fn gen_rung(rng: &mut SplitMix64) -> String {
    let flavor = FLAVORS[rng.below(FLAVORS.len())];
    // The three context-free rungs never take an introspective prefix:
    // there is nothing for a heuristic to refine.
    let context_free = matches!(flavor, "insens" | "cutshortcut" | "summaries");
    let mut spec = if !context_free && rng.ratio(1, 2) {
        let letter = if rng.ratio(1, 2) { 'A' } else { 'B' };
        format!("intro{letter}:{flavor}")
    } else {
        flavor.to_owned()
    };
    if rng.ratio(3, 10) {
        spec.push_str(&format!("@t{}", rng.range(1, 17)));
    }
    spec
}

#[test]
fn seeded_specs_round_trip_through_parse_and_render() {
    let mut rng = SplitMix64::new(0x1adde5);
    for case in 0..500 {
        // Two or more rungs: a lone introspective rung deliberately
        // expands to the canonical ladder, which is not a round trip.
        let n = rng.range(2, 6);
        let spec = (0..n)
            .map(|_| gen_rung(&mut rng))
            .collect::<Vec<_>>()
            .join(",");
        let parsed = LadderSpec::parse(&spec)
            .unwrap_or_else(|e| panic!("case {case}: {spec:?} failed to parse: {e}"));
        assert_eq!(
            parsed.spec(),
            spec,
            "case {case}: round trip changed the spec"
        );
        let again = LadderSpec::parse(&parsed.spec()).expect("rendered spec parses");
        assert_eq!(
            again.spec(),
            spec,
            "case {case}: parse∘spec is not a fixpoint"
        );
    }
}

#[test]
fn single_rungs_round_trip() {
    let mut rng = SplitMix64::new(0x5eed);
    for _ in 0..200 {
        let spec = gen_rung(&mut rng);
        let parsed = RungSpec::parse(&spec).expect("generated rung parses");
        assert_eq!(parsed.spec(), spec);
    }
}

#[test]
fn whitespace_and_canonical_ladders_still_parse() {
    let parsed = LadderSpec::parse(" 2objH , introB:2objH@t4 ,insens").expect("parses");
    assert_eq!(parsed.spec(), "2objH,introB:2objH@t4,insens");
    assert_eq!(
        LadderSpec::parse("default").expect("default parses").spec(),
        LadderSpec::default_for(Flavor::OBJ2H).spec()
    );
}

#[test]
fn duplicate_thread_override_is_a_spanned_error() {
    let err = RungSpec::parse("2objH@t4@t4").expect_err("duplicate must not parse");
    assert!(
        err.contains("duplicate thread override \"@t4\" at chars 8..11"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("already set at chars 5..8"),
        "error does not name the first suffix: {err}"
    );
}

#[test]
fn conflicting_thread_override_is_a_spanned_error() {
    let err = RungSpec::parse("2objH@t4@t8").expect_err("conflict must not parse");
    assert!(
        err.contains("conflicting thread override \"@t8\" at chars 8..11"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("conflicts with \"@t4\" at chars 5..8"),
        "error does not name the first suffix: {err}"
    );
}

#[test]
fn malformed_thread_override_is_a_spanned_error() {
    let err = RungSpec::parse("2objH@x4").expect_err("malformed must not parse");
    assert!(
        err.contains("malformed thread override \"@x4\" at chars 5..8"),
        "unexpected error: {err}"
    );
    let err = RungSpec::parse("2objH@t0").expect_err("zero threads must not parse");
    assert!(err.contains("@t0"), "unexpected error: {err}");
}

#[test]
fn ladder_errors_carry_absolute_offsets() {
    let err = LadderSpec::parse("2objH, insens@t2@t3 ,1objH").expect_err("conflict inside");
    assert!(
        err.starts_with("rung 1 at chars 7..19 of ladder spec:"),
        "unexpected error: {err}"
    );
    assert!(err.contains("conflicting thread override"), "{err}");
}

#[test]
fn cutshortcut_rungs_round_trip_with_thread_overrides() {
    let parsed = LadderSpec::parse("2objH,cutshortcut@t2,insens").expect("parses");
    assert_eq!(parsed.spec(), "2objH,cutshortcut@t2,insens");
    let rung = RungSpec::parse("cutshortcut").expect("bare rung parses");
    assert_eq!(rung.spec(), "cutshortcut");
}

#[test]
fn cutshortcut_thread_override_errors_are_spanned() {
    let err = RungSpec::parse("cutshortcut@t2@t2").expect_err("duplicate must not parse");
    assert!(
        err.contains("duplicate thread override \"@t2\" at chars 14..17"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("already set at chars 11..14"),
        "error does not name the first suffix: {err}"
    );
    let err = RungSpec::parse("cutshortcut@t2@t5").expect_err("conflict must not parse");
    assert!(
        err.contains("conflicting thread override \"@t5\" at chars 14..17"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("conflicts with \"@t2\" at chars 11..14"),
        "error does not name the first suffix: {err}"
    );
}

#[test]
fn summaries_rungs_round_trip_with_thread_overrides() {
    let parsed = LadderSpec::parse("2objH,summaries@t4,insens").expect("parses");
    assert_eq!(parsed.spec(), "2objH,summaries@t4,insens");
    let rung = RungSpec::parse("summaries").expect("bare rung parses");
    assert_eq!(rung.spec(), "summaries");
}

#[test]
fn summaries_thread_override_errors_are_spanned() {
    let err = RungSpec::parse("summaries@t2@t2").expect_err("duplicate must not parse");
    assert!(
        err.contains("duplicate thread override \"@t2\" at chars 12..15"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("already set at chars 9..12"),
        "error does not name the first suffix: {err}"
    );
    let err = RungSpec::parse("summaries@t2@t5").expect_err("conflict must not parse");
    assert!(
        err.contains("conflicting thread override \"@t5\" at chars 12..15"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("conflicts with \"@t2\" at chars 9..12"),
        "error does not name the first suffix: {err}"
    );
}

#[test]
fn unknown_rung_flavor_error_lists_valid_names() {
    // A typo'd rung gets the same teaching error as a typo'd
    // `--analysis`: the full flavor grammar, all six named families.
    let err = RungSpec::parse("cutshort").expect_err("typo must not parse");
    assert!(err.contains("unknown flavor \"cutshort\""), "{err}");
    assert!(
        err.contains("valid flavors are insens, cutshortcut, summaries"),
        "{err}"
    );
}
