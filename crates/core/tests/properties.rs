//! Property-style tests for the solver's semantic invariants on seeded
//! randomly generated programs:
//!
//! - every context-sensitive analysis is at least as precise as the
//!   insensitive one (projected relations are subsets),
//! - analysis is deterministic,
//! - the introspective extremes coincide with the full and insensitive
//!   analyses respectively,
//! - budget exhaustion yields an under-approximation of the fixpoint.

use rudoop_core::policy::{
    CallSiteSensitive, ContextPolicy, Insensitive, Introspective, ObjectSensitive, RefinementSet,
    TypeSensitive,
};
use rudoop_core::solver::{analyze, Budget, SolverConfig};
use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::{ClassHierarchy, Program};

const CASES: u64 = 48;

fn run(p: &Program, policy: &dyn ContextPolicy) -> rudoop_core::PointsToResult {
    let h = ClassHierarchy::new(p);
    analyze(p, &h, policy, &SolverConfig::default())
}

fn assert_subset_of(
    seed: u64,
    p: &Program,
    fine: &rudoop_core::PointsToResult,
    coarse: &rudoop_core::PointsToResult,
) {
    for v in p.vars.ids() {
        for h in fine.points_to(v) {
            assert!(
                coarse.points_to(v).contains(h),
                "seed {seed}: var {v:?} points to {h:?} under the finer analysis only"
            );
        }
    }
    for (invoke, targets) in &fine.call_targets {
        let coarse_targets = coarse.call_targets.get(invoke);
        for t in targets {
            assert!(
                coarse_targets.is_some_and(|ct| ct.contains(t)),
                "seed {seed}: call edge {invoke:?} -> {t:?} under the finer analysis only"
            );
        }
    }
    for m in p.methods.ids() {
        if fine.reachable_methods.contains(m) {
            assert!(coarse.reachable_methods.contains(m), "seed {seed}");
        }
    }
}

/// Context-sensitivity only removes (never adds) projected facts.
#[test]
fn context_refines_insensitive() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let insens = run(&p, &Insensitive);
        assert!(insens.outcome.is_complete(), "seed {seed}");
        let policies: Vec<Box<dyn ContextPolicy>> = vec![
            Box::new(CallSiteSensitive::new(1, 0)),
            Box::new(CallSiteSensitive::new(2, 1)),
            Box::new(ObjectSensitive::new(1, 1)),
            Box::new(ObjectSensitive::new(2, 1)),
            Box::new(TypeSensitive::new(2, 1, &p)),
        ];
        for policy in &policies {
            let cs = run(&p, policy.as_ref());
            assert!(cs.outcome.is_complete(), "seed {seed}");
            assert_subset_of(seed, &p, &cs, &insens);
        }
    }
}

/// Two runs of the same analysis agree exactly.
#[test]
fn analysis_is_deterministic() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let a = run(&p, &ObjectSensitive::new(2, 1));
        let b = run(&p, &ObjectSensitive::new(2, 1));
        for v in p.vars.ids() {
            assert_eq!(a.points_to(v), b.points_to(v), "seed {seed}");
        }
        assert_eq!(a.stats.derivations, b.stats.derivations, "seed {seed}");
        assert_eq!(a.stats.contexts, b.stats.contexts, "seed {seed}");
    }
}

/// Introspective with everything refined equals the full analysis; with
/// everything excluded it equals the insensitive analysis.
#[test]
fn introspective_extremes() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let full = run(&p, &CallSiteSensitive::new(2, 1));
        let all = Introspective::new(
            Insensitive,
            CallSiteSensitive::new(2, 1),
            RefinementSet::refine_all(&p),
            "all",
        );
        let intro_all = run(&p, &all);
        for v in p.vars.ids() {
            assert_eq!(full.points_to(v), intro_all.points_to(v), "seed {seed}");
        }

        let mut nothing = RefinementSet::refine_all(&p);
        for a in p.allocs.ids() {
            nothing.no_refine_objects.insert(a);
        }
        for m in p.methods.ids() {
            nothing.no_refine_methods.insert(m);
        }
        let none = Introspective::new(Insensitive, CallSiteSensitive::new(2, 1), nothing, "none");
        let intro_none = run(&p, &none);
        let insens = run(&p, &Insensitive);
        for v in p.vars.ids() {
            assert_eq!(insens.points_to(v), intro_none.points_to(v), "seed {seed}");
        }
    }
}

/// A budgeted run derives a subset of the fixpoint (sound partiality).
#[test]
fn budget_yields_underapproximation() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let h = ClassHierarchy::new(&p);
        let full = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let cut = analyze(
            &p,
            &h,
            &Insensitive,
            &SolverConfig {
                budget: Budget::derivations(20),
                ..SolverConfig::default()
            },
        );
        assert_subset_of(seed, &p, &cut, &full);
        assert!(
            cut.stats.derivations <= full.stats.derivations,
            "seed {seed}"
        );
    }
}

/// An introspective analysis sits between insensitive and full in cost
/// terms: its context count never exceeds the full analysis's.
#[test]
fn introspective_context_count_bounded() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let full = run(&p, &ObjectSensitive::new(2, 1));
        let mut some = RefinementSet::refine_all(&p);
        for (i, a) in p.allocs.ids().enumerate() {
            if i % 2 == 0 {
                some.no_refine_objects.insert(a);
            }
        }
        let intro = Introspective::new(Insensitive, ObjectSensitive::new(2, 1), some, "half");
        let mixed = run(&p, &intro);
        assert!(mixed.stats.contexts <= full.stats.contexts, "seed {seed}");
    }
}
